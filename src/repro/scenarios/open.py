"""Open-system scenarios: declarative specs and sweeps over offered load.

The open-system counterpart of the spec/runner/sweep stack: an
:class:`OpenScenarioSpec` names a protocol (registry id), a streaming
arrival process (:data:`repro.opensys.arrivals.ARRIVAL_FAMILIES`), a
channel, and the open-run knobs (rounds, warmup, capacity, timeout,
seed); :func:`run_open_scenario` resolves and executes it through the
open-loop driver (:func:`repro.opensys.driver.run_open`), and
:class:`OpenSweep` expands dotted-path grids - most usefully over
``arrivals.params.rate`` - into the load -> latency curves that are the
whole point of the subsystem.

The same design rules as the closed layer apply: specs are pure
JSON-native data (``from_json(to_json())`` is the identity), a spec plus
its seed fully determines the result, and grid overrides re-validate
through ``from_dict`` so a sweep can never build a point that would not
load from JSON.
"""

from __future__ import annotations

import copy
import itertools
import json
import math
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, fields
from typing import Any

from ..channel.channel import Channel
from ..core.protocol import UniformProtocol
from ..opensys.arrivals import ArrivalProcess, arrival_process_from_dict
from ..opensys.driver import run_open, select_open_engine
from ..opensys.latency import LatencyStore, LatencySummary
from ..opensys.policies import (
    AdmissionPolicy,
    RetryPolicy,
    admission_policy_from_dict,
    retry_policy_from_dict,
)
from .registry import PLAYER, BuildContext, build_protocol, get_protocol
from .spec import (
    ChannelSpec,
    PredictionSpec,
    ProtocolSpec,
    ScenarioError,
    _check_known_keys,
    _require_mapping,
)
from .workloads import resolve_prediction

__all__ = [
    "ArrivalSpec",
    "RetrySpec",
    "AdmissionSpec",
    "OpenScenarioSpec",
    "OpenScenarioResult",
    "ResolvedOpenScenario",
    "resolve_open_scenario",
    "run_open_scenario",
    "OpenSweep",
    "OpenSweepResult",
    "run_open_sweep",
]


@dataclass(frozen=True)
class ArrivalSpec:
    """A streaming arrival process: family name plus parameters.

    Families are the :data:`repro.opensys.arrivals.ARRIVAL_FAMILIES`
    registry (``poisson``, ``zipf-hotspot``, ``bursty``, ``trace``).
    Validated eagerly - the process is built and discarded at
    construction - so malformed specs fail before any simulation runs.
    """

    family: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.family:
            raise ScenarioError("arrival spec needs a non-empty family")
        try:
            self.build()
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"arrival spec: {exc}") from exc

    def build(self) -> ArrivalProcess:
        """The resolved :class:`~repro.opensys.arrivals.ArrivalProcess`."""
        return arrival_process_from_dict(
            {"family": self.family, **copy.deepcopy(self.params)}
        )

    def to_dict(self) -> dict:
        return {"family": self.family, "params": copy.deepcopy(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping | str) -> "ArrivalSpec":
        if isinstance(data, str):  # shorthand: bare family, no params
            return cls(family=data)
        data = _require_mapping(data, "arrival spec")
        _check_known_keys(data, {"family", "params"}, "arrival spec")
        return cls(
            family=str(data.get("family", "")),
            params=copy.deepcopy(
                _require_mapping(data.get("params", {}), "arrival params")
            ),
        )


@dataclass(frozen=True)
class RetrySpec:
    """A retry policy: registry kind plus parameters.

    Kinds are the :data:`repro.opensys.policies.RETRY_POLICIES` registry
    (``give-up``, ``immediate``, ``backoff``).  Validated eagerly, like
    :class:`ArrivalSpec`; a bare kind string is accepted as shorthand in
    ``from_dict``.
    """

    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind:
            raise ScenarioError("retry spec needs a non-empty kind")
        try:
            self.build()
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"retry spec: {exc}") from exc

    def build(self) -> RetryPolicy:
        """The resolved :class:`~repro.opensys.policies.RetryPolicy`."""
        return retry_policy_from_dict(
            {"kind": self.kind, **copy.deepcopy(self.params)}
        )

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": copy.deepcopy(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping | str) -> "RetrySpec":
        if isinstance(data, str):  # shorthand: bare kind, no params
            return cls(kind=data)
        data = _require_mapping(data, "retry spec")
        _check_known_keys(data, {"kind", "params"}, "retry spec")
        return cls(
            kind=str(data.get("kind", "")),
            params=copy.deepcopy(
                _require_mapping(data.get("params", {}), "retry params")
            ),
        )


@dataclass(frozen=True)
class AdmissionSpec:
    """An admission policy: registry kind plus parameters.

    Kinds are the :data:`repro.opensys.policies.ADMISSION_POLICIES`
    registry (``capacity``, ``token-bucket``, ``shed``); same eager
    validation and string shorthand as :class:`RetrySpec`.
    """

    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind:
            raise ScenarioError("admission spec needs a non-empty kind")
        try:
            self.build()
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"admission spec: {exc}") from exc

    def build(self) -> AdmissionPolicy:
        """The resolved :class:`~repro.opensys.policies.AdmissionPolicy`."""
        return admission_policy_from_dict(
            {"kind": self.kind, **copy.deepcopy(self.params)}
        )

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": copy.deepcopy(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping | str) -> "AdmissionSpec":
        if isinstance(data, str):  # shorthand: bare kind, no params
            return cls(kind=data)
        data = _require_mapping(data, "admission spec")
        _check_known_keys(data, {"kind", "params"}, "admission spec")
        return cls(
            kind=str(data.get("kind", "")),
            params=copy.deepcopy(
                _require_mapping(data.get("params", {}), "admission params")
            ),
        )


@dataclass(frozen=True)
class OpenScenarioSpec:
    """One open-system simulation, ready to serialize or run.

    Attributes
    ----------
    protocol:
        Registry reference of the (uniform) protocol under test.
    arrivals:
        Streaming request source.
    channel:
        Collision-detection capability plus optional fault model.
    n:
        Network-size context handed to protocol construction (board size
        for prediction protocols); the live population is emergent.
    trials:
        Independent open channels to simulate.
    rounds:
        Rounds each channel is observed for.
    warmup:
        Completions of requests arriving in rounds ``1..warmup`` are not
        measured (transient before the backlog reaches steady state).
    capacity:
        Maximum pending requests per channel; overflow arrivals drop.
    timeout:
        Optional per-request round budget - a request abandons (counted,
        not measured) after this many rounds in the system.
    retry:
        What a refused or timed-out request does next (default
        ``give-up``: it dies, exactly the pre-policy behaviour).
    admission:
        Gate in front of the service buffer (default ``capacity``: the
        hard buffer limit is the only gate).
    seed / batch / prediction / name:
        As in :class:`~repro.scenarios.spec.ScenarioSpec`; prediction
        source ``"truth"`` is rejected (an open scenario has no workload
        distribution to be clairvoyant about - use ``"distribution"``).
    """

    protocol: ProtocolSpec
    arrivals: ArrivalSpec
    channel: ChannelSpec
    n: int
    trials: int
    rounds: int
    warmup: int = 0
    capacity: int = 256
    timeout: int | None = None
    retry: RetrySpec = field(default_factory=lambda: RetrySpec(kind="give-up"))
    admission: AdmissionSpec = field(
        default_factory=lambda: AdmissionSpec(kind="capacity")
    )
    seed: int = 2021
    batch: bool | None = None
    prediction: PredictionSpec | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ScenarioError(f"n must be >= 2, got {self.n}")
        if self.trials < 1:
            raise ScenarioError(f"trials must be >= 1, got {self.trials}")
        if self.rounds < 1:
            raise ScenarioError(f"rounds must be >= 1, got {self.rounds}")
        if not 0 <= self.warmup < self.rounds:
            raise ScenarioError(
                f"warmup must be in [0, rounds), got {self.warmup} of "
                f"{self.rounds}"
            )
        if self.capacity < 1:
            raise ScenarioError(f"capacity must be >= 1, got {self.capacity}")
        if self.timeout is not None and self.timeout < 1:
            raise ScenarioError(
                f"timeout must be >= 1 or None, got {self.timeout}"
            )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-native dict; ``from_dict`` inverts it exactly."""
        return {
            "protocol": self.protocol.to_dict(),
            "arrivals": self.arrivals.to_dict(),
            "channel": self.channel.to_dict(),
            "n": self.n,
            "trials": self.trials,
            "rounds": self.rounds,
            "warmup": self.warmup,
            "capacity": self.capacity,
            "timeout": self.timeout,
            "retry": self.retry.to_dict(),
            "admission": self.admission.to_dict(),
            "seed": self.seed,
            "batch": self.batch,
            "prediction": self.prediction.to_dict() if self.prediction else None,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "OpenScenarioSpec":
        data = _require_mapping(data, "open scenario spec")
        allowed = {f.name for f in fields(cls)}
        _check_known_keys(data, allowed, "open scenario spec")
        for required in ("protocol", "arrivals", "channel", "n", "trials", "rounds"):
            if required not in data:
                raise ScenarioError(f"open scenario spec needs {required!r}")
        batch = data.get("batch")
        if batch is not None:
            batch = bool(batch)
        timeout = data.get("timeout")
        prediction = data.get("prediction")
        return cls(
            protocol=ProtocolSpec.from_dict(data["protocol"]),
            arrivals=ArrivalSpec.from_dict(data["arrivals"]),
            channel=ChannelSpec.from_dict(data["channel"]),
            n=int(data["n"]),
            trials=int(data["trials"]),
            rounds=int(data["rounds"]),
            warmup=int(data.get("warmup", 0)),
            capacity=int(data.get("capacity", 256)),
            timeout=int(timeout) if timeout is not None else None,
            retry=RetrySpec.from_dict(data.get("retry", "give-up")),
            admission=AdmissionSpec.from_dict(data.get("admission", "capacity")),
            seed=int(data.get("seed", 2021)),
            batch=batch,
            prediction=(
                PredictionSpec.from_dict(prediction)
                if prediction is not None
                else None
            ),
            name=str(data.get("name", "")),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "OpenScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError(f"invalid open scenario JSON: {error}") from None
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def override(self, overrides: Mapping[str, Any]) -> "OpenScenarioSpec":
        """A new spec with dotted-path fields replaced (re-validated).

        Same contract as :meth:`ScenarioSpec.override`: paths index into
        :meth:`to_dict` (``"trials"``, ``"arrivals.params.rate"``,
        ``"channel.model.params.budget"``) and the result re-loads
        through :meth:`from_dict`.
        """
        data = self.to_dict()
        for path, value in overrides.items():
            parts = path.split(".")
            node = data
            for part in parts[:-1]:
                child = node.get(part)
                if not isinstance(child, dict):
                    child = {}
                    node[part] = child
                node = child
            node[parts[-1]] = copy.deepcopy(value)
        return type(self).from_dict(data)

    def label(self) -> str:
        """Short human-readable identity for tables and progress lines."""
        return self.name or f"{self.protocol.id}/{self.arrivals.family}"


@dataclass
class ResolvedOpenScenario:
    """An open spec resolved into runnable objects, not yet executed."""

    spec: OpenScenarioSpec
    channel: Channel
    protocol: UniformProtocol
    arrivals: ArrivalProcess
    retry: RetryPolicy
    admission: AdmissionPolicy
    engine: str

    def metadata(self) -> dict:
        offered = self.arrivals.offered_load
        return {
            "protocol": self.protocol.name,
            "kind": "uniform",
            "channel": self.channel.kind,
            "channel_model": self.channel.model_label(),
            "arrivals": self.arrivals.name,
            "offered_load": None if math.isnan(offered) else offered,
            "retry": self.retry.name,
            "admission": self.admission.name,
            "engine": self.engine,
            "batch_requested": self.spec.batch,
        }


def resolve_open_scenario(spec: OpenScenarioSpec) -> ResolvedOpenScenario:
    """Resolve an open spec, raising :class:`ScenarioError` where a run would.

    Rejects player protocols (an open channel serves anonymous uniform
    epochs; per-player identity has no meaning there), clairvoyant
    ``"truth"`` predictions, and fault models the open driver cannot
    express - all before any randomness is consumed.
    """
    try:
        model = spec.channel.build_model()
    except ValueError as exc:
        raise ScenarioError(f"channel model spec: {exc}") from exc
    channel = Channel(
        collision_detection=spec.channel.collision_detection, model=model
    )

    entry = get_protocol(spec.protocol.id)
    if entry.kind == PLAYER:
        raise ScenarioError(
            f"open scenarios run uniform protocols only; "
            f"{spec.protocol.id!r} is a player protocol"
        )
    if spec.prediction is not None and spec.prediction.source == "truth":
        raise ScenarioError(
            "open scenarios have no workload distribution for prediction "
            "source 'truth'; supply an explicit source 'distribution'"
        )
    prediction = resolve_prediction(spec.prediction, None, spec.n)
    protocol = build_protocol(
        spec.protocol, BuildContext(n=spec.n, prediction=prediction)
    )
    assert isinstance(protocol, UniformProtocol)
    try:
        engine = select_open_engine(
            protocol, spec.batch, model=channel.active_model
        )
    except ValueError as exc:
        raise ScenarioError(str(exc)) from exc
    return ResolvedOpenScenario(
        spec=spec,
        channel=channel,
        protocol=protocol,
        arrivals=spec.arrivals.build(),
        retry=spec.retry.build(),
        admission=spec.admission.build(),
        engine=engine,
    )


@dataclass
class OpenScenarioResult:
    """Outcome of one open-system run, ready to serialize.

    Carries the full :class:`~repro.opensys.latency.LatencyStore` (not
    just its summary) so results merge: two shards of the same spec run
    at different ``trial_offset``\\ s combine with ``store.merge`` into
    exactly the unsharded result's store.
    """

    spec: OpenScenarioSpec
    engine: str
    store: LatencyStore
    metadata: dict = field(default_factory=dict)
    elapsed_seconds: float = field(default=0.0, compare=False)

    @property
    def summary(self) -> LatencySummary:
        return self.store.summary()

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "engine": self.engine,
            "store": self.store.to_dict(),
            "summary": self.store.summary().to_dict(),
            "metadata": dict(self.metadata),
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "OpenScenarioResult":
        return cls(
            spec=OpenScenarioSpec.from_dict(data["spec"]),
            engine=str(data["engine"]),
            store=LatencyStore.from_dict(
                _require_mapping(data["store"], "latency store")
            ),
            metadata=dict(data.get("metadata", {})),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "OpenScenarioResult":
        return cls.from_dict(json.loads(text))

    def render(self) -> str:
        """Human-readable report for the CLI."""
        summary = self.summary
        offered = self.metadata.get("offered_load")
        load = "n/a" if offered is None else f"{offered:.4g} req/round"
        lines = [
            f"open scenario: {self.spec.label()}",
            f"  protocol: {self.metadata.get('protocol', self.spec.protocol.id)}"
            f"    channel: {self.metadata.get('channel', self.spec.channel.kind)}"
            f" ({self.metadata.get('channel_model', 'faithful')})",
            f"  arrivals: {self.metadata.get('arrivals', self.spec.arrivals.family)}"
            f"    offered load: {load}",
            f"  policies: retry={self.metadata.get('retry', self.spec.retry.kind)}"
            f"    admission="
            f"{self.metadata.get('admission', self.spec.admission.kind)}",
            f"  engine:   {self.engine}    trials: {self.spec.trials}"
            f"    rounds: {self.spec.rounds} (warmup {self.spec.warmup})"
            f"    seed: {self.spec.seed}",
            f"  latency:  {summary.render()}",
            f"  elapsed:  {self.elapsed_seconds:.3f}s",
        ]
        return "\n".join(lines)


def run_open_scenario(spec: OpenScenarioSpec) -> OpenScenarioResult:
    """Execute one open scenario and return its serializable result."""
    started = time.perf_counter()
    resolved = resolve_open_scenario(spec)
    outcome = run_open(
        resolved.protocol,
        resolved.arrivals,
        channel=resolved.channel,
        trials=spec.trials,
        rounds=spec.rounds,
        warmup=spec.warmup,
        capacity=spec.capacity,
        timeout=spec.timeout,
        retry=resolved.retry,
        admission=resolved.admission,
        seed=spec.seed,
        batch=spec.batch,
    )
    metadata = resolved.metadata()
    metadata["engine"] = outcome.engine
    return OpenScenarioResult(
        spec=spec,
        engine=outcome.engine,
        store=outcome.store,
        metadata=metadata,
        elapsed_seconds=time.perf_counter() - started,
    )


@dataclass(frozen=True)
class OpenSweep:
    """A grid of open-scenario variations around a base spec.

    The load -> latency curve is the canonical use: sweep
    ``arrivals.params.rate`` and read p50/p99 against offered load.  As
    with the closed :class:`~repro.scenarios.sweep.Sweep`, points expand
    in row-major grid order and - with ``vary_seed`` (default) - each
    point's seed is a :func:`~repro.scenarios.sweep.derive_point_seeds`
    child of the base seed, recorded in the point's own spec so any
    point re-runs identically from its serialized form.
    """

    base: OpenScenarioSpec
    grid: dict = field(default_factory=dict)
    vary_seed: bool = True

    def __post_init__(self) -> None:
        for path, values in self.grid.items():
            if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
                raise ScenarioError(
                    f"grid values for {path!r} must be a list, got "
                    f"{type(values).__name__}"
                )
            if len(values) == 0:
                raise ScenarioError(f"grid values for {path!r} must be non-empty")

    def points(self) -> list[OpenScenarioSpec]:
        """The expanded open specs, in deterministic grid order."""
        from .sweep import derive_point_seeds

        paths = list(self.grid)
        combos = list(itertools.product(*(self.grid[path] for path in paths)))
        seeds = (
            derive_point_seeds(self.base.seed, len(combos))
            if self.vary_seed and "seed" not in paths
            else None
        )
        specs: list[OpenScenarioSpec] = []
        for index, combo in enumerate(combos):
            overrides = dict(zip(paths, combo))
            if seeds is not None:
                overrides["seed"] = seeds[index]
            if "name" not in overrides:
                overrides["name"] = (
                    f"{self.base.name}[{index}]"
                    if self.base.name
                    else f"point-{index}"
                )
            specs.append(self.base.override(overrides))
        return specs

    def to_dict(self) -> dict:
        return {
            "base": self.base.to_dict(),
            "grid": {path: list(values) for path, values in self.grid.items()},
            "vary_seed": self.vary_seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "OpenSweep":
        data = _require_mapping(data, "open sweep spec")
        _check_known_keys(data, {"base", "grid", "vary_seed"}, "open sweep spec")
        if "base" not in data:
            raise ScenarioError("open sweep spec needs a 'base' scenario")
        grid = data.get("grid", {})
        if not isinstance(grid, Mapping):
            raise ScenarioError("open sweep 'grid' must be a mapping")
        return cls(
            base=OpenScenarioSpec.from_dict(data["base"]),
            grid={str(path): list(values) for path, values in grid.items()},
            vary_seed=bool(data.get("vary_seed", True)),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "OpenSweep":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError(f"invalid open sweep JSON: {error}") from None
        return cls.from_dict(data)


@dataclass
class OpenSweepResult:
    """All point results of one open sweep execution.

    ``resumed`` and ``cache_hits`` count points restored from a
    checkpoint journal / the content-addressed store instead of executed
    (see :func:`~repro.scenarios.sweep.run_sweep` - same durability
    layer, same provenance-not-identity equality rule).
    """

    results: list[OpenScenarioResult]
    elapsed_seconds: float = field(default=0.0, compare=False)
    resumed: int = field(default=0, compare=False)
    cache_hits: int = field(default=0, compare=False)

    def __len__(self) -> int:
        return len(self.results)

    def to_dict(self) -> dict:
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "resumed": self.resumed,
            "cache_hits": self.cache_hits,
            "results": [result.to_dict() for result in self.results],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "OpenSweepResult":
        return cls(
            results=[
                OpenScenarioResult.from_dict(row) for row in data["results"]
            ],
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            resumed=int(data.get("resumed", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """The load -> latency curve as a plain-text table."""
        from ..analysis.tables import render_table

        headers = [
            "point", "engine", "load", "p50", "p90", "p99",
            "throughput", "dropped", "timed-out", "retried", "abandoned",
        ]
        rows: list[list[object]] = []
        for result in self.results:
            summary = result.summary
            offered = result.metadata.get("offered_load")
            rows.append(
                [
                    result.spec.label(),
                    result.engine,
                    float("nan") if offered is None else offered,
                    summary.p50,
                    summary.p90,
                    summary.p99,
                    summary.throughput,
                    summary.dropped,
                    summary.timed_out,
                    summary.retried,
                    summary.abandoned,
                ]
            )
        table = render_table(headers, rows, precision=3)
        return (
            f"open sweep: {len(self.results)} point(s), "
            f"wall {self.elapsed_seconds:.3f}s, resumed={self.resumed}, "
            f"cache_hits={self.cache_hits}\n{table}"
        )


def run_open_sweep(
    sweep: OpenSweep | Sequence[OpenScenarioSpec],
    *,
    resume: "str | os.PathLike | None" = None,
    cache: "ResultStore | str | os.PathLike | None" = None,
) -> OpenSweepResult:
    """Execute an open sweep (or explicit point list), serially, in order.

    ``resume=`` and ``cache=`` are the closed sweep's durability layer
    (:mod:`repro.scenarios.store`): a checkpoint journal replayed before
    execution and appended per completed point, and a content-addressed
    result store consulted before running anything.  Open and closed
    specs hash to disjoint key spaces, so one cache directory can serve
    both sweep families.
    """
    from .store import ResultStore, SweepJournal, spec_key, sweep_key

    points = sweep.points() if isinstance(sweep, OpenSweep) else list(sweep)
    if not points:
        raise ScenarioError("open sweep expanded to zero points")
    started = time.perf_counter()
    total = len(points)
    slots: list[OpenScenarioResult | None] = [None] * total
    resumed = 0
    cache_hits = 0
    keys: list[str] | None = None
    if resume is not None or cache is not None:
        keys = [spec_key(point) for point in points]
    store = ResultStore.coerce(cache)
    journal: SweepJournal | None = None
    try:
        if resume is not None:
            assert keys is not None
            journal = SweepJournal(
                resume,
                sweep=sweep_key(keys),
                points=total,
                point_keys=keys,
                result_from_dict=OpenScenarioResult.from_dict,
            )
            for index, result in journal.replayed.items():
                slots[index] = result
                if store is not None:
                    assert keys is not None
                    store.put(points[index], result, key=keys[index])
            resumed = len(journal.replayed)
        for index in range(total):
            if slots[index] is not None:
                continue
            if store is not None:
                assert keys is not None
                hit = store.get(points[index], key=keys[index])
                if hit is not None:
                    slots[index] = hit
                    cache_hits += 1
                    if journal is not None:
                        journal.append([(index, hit.to_dict())])
                    continue
            result = run_open_scenario(points[index])
            slots[index] = result
            if journal is not None:
                journal.append([(index, result.to_dict())])
            if store is not None:
                assert keys is not None
                store.put(points[index], result, key=keys[index])
    finally:
        if journal is not None:
            journal.close()
    return OpenSweepResult(
        results=[slot for slot in slots if slot is not None],
        elapsed_seconds=time.perf_counter() - started,
        resumed=resumed,
        cache_hits=cache_hits,
    )
