"""The single simulation entry point: resolve a spec, route, execute.

:func:`run_scenario` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
into a :class:`ScenarioResult`: it resolves the workload, prediction,
advice and protocol, then routes to the right execution engine through
the existing capability hooks - the vectorized batch-schedule,
history-indexed (trie-memoized CD) or batch-player engines, or the
scalar uniform / per-player reference loops - and records which engine actually ran in
the result metadata.  Experiments, the CLI and the sweep executors all call this
one facade, so a scenario behaves identically however it is launched.

Results are JSON-round-trippable (:meth:`ScenarioResult.to_dict` /
``from_dict``), and a spec plus its seed fully determines the result:
re-loading a serialized spec and re-running reproduces the tables
bit-for-bit.  The durability layer leans on both halves of that
contract: the content-addressed result store
(:func:`~repro.scenarios.store.spec_key`) uses the canonical spec JSON
as the *complete* identity of a result, journal resume replays
serialized results in place of re-execution, and the supervised
executor detects corrupted worker replies by checking the spec embedded
in the deserialized result against the point it dispatched.
"""

from __future__ import annotations

import math
import time
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from ..analysis.metrics import ProportionEstimate, Summary
from ..analysis.montecarlo import (
    estimate_player_rounds,
    estimate_uniform_rounds,
    select_player_engine,
    select_uniform_engine,
)
from ..channel.channel import Channel
from ..channel.network import (
    Adversary,
    ClusteredAdversary,
    PrefixAdversary,
    RandomAdversary,
    SpreadAdversary,
    SuffixAdversary,
)
from ..core.advice import (
    AdviceFunction,
    FullIdAdvice,
    MinIdPrefixAdvice,
    NullAdvice,
    RangeBlockAdvice,
)
from ..core.faulty_advice import AdversarialAdvice, BitFlipAdvice
from ..core.protocol import PlayerProtocol
from .registry import PLAYER, BuildContext, build_protocol, get_protocol
from .spec import AdviceSpec, ScenarioError, ScenarioSpec
from .workloads import resolve_prediction, resolve_workload, workload_label

__all__ = [
    "ScenarioResult",
    "ResolvedScenario",
    "run_scenario",
    "resolve_scenario",
    "package_result",
    "ADVERSARIES",
]

#: Adversary name -> constructor, for player scenarios.
ADVERSARIES: dict[str, type[Adversary]] = {
    "random": RandomAdversary,
    "prefix": PrefixAdversary,
    "suffix": SuffixAdversary,
    "spread": SpreadAdversary,
    "clustered": ClusteredAdversary,
}


def _nan_to_none(value: float) -> float | None:
    return None if isinstance(value, float) and math.isnan(value) else value


def _none_to_nan(value) -> float:
    return float("nan") if value is None else float(value)


def _summary_to_dict(summary: Summary) -> dict:
    return {
        "count": summary.count,
        "mean": _nan_to_none(summary.mean),
        "std": _nan_to_none(summary.std),
        "minimum": _nan_to_none(summary.minimum),
        "maximum": _nan_to_none(summary.maximum),
        "median": _nan_to_none(summary.median),
        "p90": _nan_to_none(summary.p90),
    }


def _summary_from_dict(data: Mapping) -> Summary:
    return Summary(
        count=int(data["count"]),
        mean=_none_to_nan(data["mean"]),
        std=_none_to_nan(data["std"]),
        minimum=_none_to_nan(data["minimum"]),
        maximum=_none_to_nan(data["maximum"]),
        median=_none_to_nan(data["median"]),
        p90=_none_to_nan(data["p90"]),
    )


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one scenario run, ready to serialize.

    Attributes
    ----------
    spec:
        The exact spec that produced this result (round-trips with it).
    engine:
        Which execution engine ran - one of the
        :mod:`repro.analysis.montecarlo` engine labels.
    rounds:
        Solving-round summary over successful trials.
    success:
        Solved-within-budget proportion with its Wilson interval.
    metadata:
        Resolution details: protocol name and kind, channel kind,
        workload label, requested batch mode.
    elapsed_seconds:
        Wall-clock execution time (excluded from equality - two runs of
        the same spec are equal results even if one machine was slower).
    """

    spec: ScenarioSpec
    engine: str
    rounds: Summary
    success: ProportionEstimate
    metadata: dict = field(default_factory=dict)
    elapsed_seconds: float = field(default=0.0, compare=False)

    @property
    def mean_rounds(self) -> float:
        return self.rounds.mean

    @property
    def success_rate(self) -> float:
        return self.success.rate

    @property
    def any_successes(self) -> bool:
        return self.rounds.count > 0

    def to_dict(self) -> dict:
        """JSON-native dict (NaN statistics encode as ``null``)."""
        return {
            "spec": self.spec.to_dict(),
            "engine": self.engine,
            "rounds": _summary_to_dict(self.rounds),
            "success": {
                "successes": self.success.successes,
                "trials": self.success.trials,
            },
            "metadata": dict(self.metadata),
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioResult":
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            engine=str(data["engine"]),
            rounds=_summary_from_dict(data["rounds"]),
            success=ProportionEstimate(
                successes=int(data["success"]["successes"]),
                trials=int(data["success"]["trials"]),
            ),
            metadata=dict(data.get("metadata", {})),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioResult":
        import json

        return cls.from_dict(json.loads(text))

    def render(self) -> str:
        """Human-readable report for the CLI."""
        lines = [
            f"scenario: {self.spec.label()}",
            f"  protocol: {self.metadata.get('protocol', self.spec.protocol.id)}"
            f" ({self.metadata.get('kind', '?')})",
            f"  channel:  {self.metadata.get('channel', self.spec.channel.kind)}"
            f"    workload: {self.metadata.get('workload', self.spec.workload.kind)}",
            f"  engine:   {self.engine}    trials: {self.success.trials}"
            f"    budget: {self.spec.max_rounds} rounds    seed: {self.spec.seed}",
            f"  success:  {self.success.rate:.4f} "
            f"(Wilson 95% [{self.success.lower:.4f}, {self.success.upper:.4f}])",
        ]
        if self.any_successes:
            lines.append(
                f"  rounds:   mean {self.rounds.mean:.3f}  median "
                f"{self.rounds.median:.1f}  p90 {self.rounds.p90:.1f}  "
                f"max {self.rounds.maximum:.0f}"
            )
        else:
            lines.append("  rounds:   n/a (no trial solved within the budget)")
        lines.append(f"  elapsed:  {self.elapsed_seconds:.3f}s")
        return "\n".join(lines)


def _resolve_advice(
    spec: AdviceSpec | None, n: int, rng: np.random.Generator
) -> AdviceFunction | None:
    if spec is None:
        return None
    if spec.function == "null":
        base: AdviceFunction = NullAdvice()
    elif spec.function == "min-id-prefix":
        base = MinIdPrefixAdvice(spec.bits)
    elif spec.function == "range-block":
        base = RangeBlockAdvice(spec.bits)
    elif spec.function == "full-id":
        base = FullIdAdvice(n)
    else:
        raise ScenarioError(
            f"unknown advice function {spec.function!r}; "
            "known: null, min-id-prefix, range-block, full-id"
        )
    if spec.corruption is None:
        return base
    corruption = dict(spec.corruption)
    model = corruption.pop("model", None)
    probability = corruption.pop("probability", None)
    if corruption:
        raise ScenarioError(
            f"unknown advice corruption field(s): {', '.join(sorted(corruption))}"
        )
    if probability is None:
        raise ScenarioError("advice corruption needs a 'probability'")
    try:
        if model == "bit-flip":
            return BitFlipAdvice(base, float(probability), rng)
        if model == "adversarial":
            return AdversarialAdvice(base, float(probability), rng)
    except (TypeError, ValueError) as error:
        raise ScenarioError(f"bad advice corruption parameters: {error}") from None
    raise ScenarioError(
        f"unknown advice corruption model {model!r}; known: bit-flip, adversarial"
    )


def _resolve_adversary(name: str) -> Adversary:
    try:
        return ADVERSARIES[name]()
    except KeyError:
        raise ScenarioError(
            f"unknown adversary {name!r}; known: {', '.join(sorted(ADVERSARIES))}"
        ) from None


@dataclass
class ResolvedScenario:
    """A spec resolved into runnable objects, not yet executed.

    The preparation half of :func:`run_scenario`, split out so the fused
    sweep executor can resolve every point, group compatible ones, and
    execute whole groups through the stacked engines.  Resolution never
    consumes from ``rng`` (corruption wrappers are merely *bound* to it),
    so resolving all points up front leaves each point's stream exactly
    where a solo :func:`run_scenario` would start drawing.
    """

    spec: ScenarioSpec
    rng: np.random.Generator
    channel: Channel
    kind: str  # registry kind: "uniform" or "player"
    protocol: object  # UniformProtocol | PlayerProtocol
    engine: str  # the per-point engine select_*_engine chose
    size_source: object  # int | SupportsSampleMany | callable
    advice: AdviceFunction | None = None
    adversary: object | None = None

    def participant_source(self):
        """Per-trial participant draw (player scenarios only)."""
        adversary, n, k = self.adversary, self.spec.n, self.size_source

        def draw(generator: np.random.Generator) -> frozenset[int]:
            return adversary.checked_select(n, k, generator)

        return draw

    def metadata(self) -> dict:
        base = {
            "protocol": self.protocol.name,
            "kind": self.kind,
            "channel": self.channel.kind,
            "channel_model": self.channel.model_label(),
            "workload": workload_label(self.size_source),
            "engine": self.engine,
            "batch_requested": self.spec.batch,
        }
        if self.kind == PLAYER:
            base["adversary"] = self.adversary.name
            base["advice_bits"] = getattr(self.advice, "bits", 0)
        return base


def resolve_scenario(
    spec: ScenarioSpec, *, rng: np.random.Generator | None = None
) -> ResolvedScenario:
    """Resolve a spec into the objects :func:`run_scenario` would execute.

    Raises :class:`ScenarioError` for anything a run would reject -
    unknown ids, missing predictions, advice on uniform protocols - so
    callers (the fused executor, validation tooling) fail before any
    point has consumed randomness.
    """
    if rng is None:
        rng = np.random.default_rng(spec.seed)
    try:
        model = spec.channel.build_model()
    except ValueError as exc:
        raise ScenarioError(f"channel model spec: {exc}") from exc
    channel = Channel(
        collision_detection=spec.channel.collision_detection, model=model
    )
    size_source = resolve_workload(spec.workload, spec.n)
    prediction = resolve_prediction(spec.prediction, size_source, spec.n)
    entry = get_protocol(spec.protocol.id)
    context = BuildContext(n=spec.n, prediction=prediction)
    protocol = build_protocol(spec.protocol, context)

    if entry.kind == PLAYER:
        assert isinstance(protocol, PlayerProtocol)
        if not isinstance(size_source, int):
            raise ScenarioError(
                f"player protocol {spec.protocol.id!r} needs a 'fixed' "
                f"workload (the adversary picks *which* k ids participate); "
                f"got workload kind {spec.workload.kind!r}"
            )
        return ResolvedScenario(
            spec=spec,
            rng=rng,
            channel=channel,
            kind=entry.kind,
            protocol=protocol,
            engine=select_player_engine(
                protocol, spec.batch, model=channel.active_model
            ),
            size_source=size_source,
            advice=_resolve_advice(spec.advice, spec.n, rng),
            adversary=_resolve_adversary(spec.adversary),
        )
    if spec.advice is not None:
        raise ScenarioError(
            f"uniform protocol {spec.protocol.id!r} takes no advice spec "
            "(advice is a player-protocol input)"
        )
    return ResolvedScenario(
        spec=spec,
        rng=rng,
        channel=channel,
        kind=entry.kind,
        protocol=protocol,
        engine=select_uniform_engine(
            protocol, spec.batch, model=channel.active_model
        ),
        size_source=size_source,
    )


def package_result(
    resolved: ResolvedScenario,
    estimate,
    *,
    engine: str | None = None,
    elapsed_seconds: float = 0.0,
) -> ScenarioResult:
    """Wrap an estimate into the :class:`ScenarioResult` a run returns.

    ``engine`` overrides the recorded label (the fused executor stamps
    ``fused-schedule`` / ``fused-player`` over the per-point routing
    label); statistics and spec are untouched either way.
    """
    metadata = resolved.metadata()
    label = engine if engine is not None else resolved.engine
    metadata["engine"] = label
    return ScenarioResult(
        spec=resolved.spec,
        engine=label,
        rounds=estimate.rounds,
        success=estimate.success,
        metadata=metadata,
        elapsed_seconds=elapsed_seconds,
    )


def run_scenario(
    spec: ScenarioSpec, *, rng: np.random.Generator | None = None
) -> ScenarioResult:
    """Execute one scenario and return its serializable result.

    ``rng`` defaults to a fresh generator seeded from ``spec.seed`` - the
    standalone, reproducible-from-JSON mode.  Experiments composing many
    scenarios into one measurement pass their shared generator instead,
    which keeps the RNG stream (and hence every table) identical to
    hand-wired estimator calls in the same order.
    """
    started = time.perf_counter()
    resolved = resolve_scenario(spec, rng=rng)

    if resolved.kind == PLAYER:
        estimate = estimate_player_rounds(
            resolved.protocol,
            resolved.participant_source(),
            spec.n,
            resolved.rng,
            channel=resolved.channel,
            advice_function=resolved.advice,
            trials=spec.trials,
            max_rounds=spec.max_rounds,
            batch=spec.batch,
        )
    else:
        estimate = estimate_uniform_rounds(
            resolved.protocol,
            resolved.size_source,
            resolved.rng,
            channel=resolved.channel,
            trials=spec.trials,
            max_rounds=spec.max_rounds,
            batch=spec.batch,
        )
    return package_result(
        resolved,
        estimate,
        elapsed_seconds=time.perf_counter() - started,
    )
