"""Resolving workload and prediction specs into runnable size sources.

The bridge between the declarative layer (:mod:`repro.scenarios.spec`)
and the concrete workload objects the estimators consume:

* ``"fixed"`` workloads resolve to a plain ``int`` (the estimators'
  fast path for a constant participant count);
* ``"distribution"`` workloads resolve through
  :data:`DISTRIBUTION_FAMILIES` - a name -> constructor registry over
  the :class:`~repro.infotheory.distributions.SizeDistribution`
  families (every public constructor is registered);
* ``"bursty"`` workloads build the Markov-modulated arrival model of
  :mod:`repro.channel.arrivals` - the correlated-across-trials process
  an i.i.d. distribution cannot express;
* ``"trace"`` workloads replay explicit count sequences;
* ``"poisson"`` / ``"zipf-hotspot"`` workloads reuse the open-system
  arrival families (:mod:`repro.opensys.arrivals`) as batch-size
  sources, clamped into the valid contender range - the closed-world
  view of the same traffic the open driver streams.

Prediction specs resolve to :class:`~repro.core.predictions.Prediction`
objects here too, since "the truth" - the most common prediction source -
is the resolved workload distribution itself.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Mapping

from ..channel.arrivals import MarkovBurstArrivals, TraceArrivals
from ..core.predictions import Prediction
from ..infotheory.distributions import SizeDistribution
from ..infotheory.perturb import floor_support, mix_with_uniform, shift_ranges
from .spec import PredictionSpec, ScenarioError, WorkloadSpec

__all__ = [
    "DISTRIBUTION_FAMILIES",
    "register_distribution_family",
    "resolve_distribution",
    "resolve_workload",
    "resolve_prediction",
    "workload_label",
]

def _perturbed(
    n: int,
    *,
    base: Mapping,
    mix: float | None = None,
    shift: int | None = None,
    floor: float | None = None,
) -> SizeDistribution:
    """Prediction-error pipeline over a nested base family.

    Declarative access to :mod:`repro.infotheory.perturb`: resolve the
    ``base`` family spec, then optionally epsilon-contaminate
    (``mix``), systematically bias by ``shift`` ranges, and support-floor
    (``floor``) so the divergence against the base stays finite - the
    transforms the divergence experiments dial predictions with, applied
    in that order.
    """
    distribution = resolve_distribution(n, base)
    if mix is not None:
        distribution = mix_with_uniform(distribution, float(mix))
    if shift is not None:
        distribution = shift_ranges(distribution, int(shift))
    if floor is not None:
        distribution = floor_support(distribution, float(floor))
    return distribution


#: Distribution family name -> constructor ``(n, **params) -> SizeDistribution``.
DISTRIBUTION_FAMILIES: dict[str, Callable[..., SizeDistribution]] = {
    "point": SizeDistribution.point,
    "uniform": SizeDistribution.uniform,
    "range_uniform": SizeDistribution.range_uniform,
    "range_uniform_subset": SizeDistribution.range_uniform_subset,
    "interpolated_entropy": SizeDistribution.interpolated_entropy,
    "geometric": SizeDistribution.geometric,
    "zipf": SizeDistribution.zipf,
    "bimodal": SizeDistribution.bimodal,
    "pliam": SizeDistribution.pliam,
    "perturbed": _perturbed,
}


def register_distribution_family(
    name: str, constructor: Callable[..., SizeDistribution]
) -> None:
    """Register a custom distribution family for workload/prediction specs."""
    if name in DISTRIBUTION_FAMILIES:
        raise ScenarioError(f"distribution family {name!r} already registered")
    DISTRIBUTION_FAMILIES[name] = constructor


# A sweep cycles through a handful of distinct distributions; keep the
# cache small (FIFO-evicted) - full-board entries hold 65k-atom pmfs plus
# lazily built sampler/condensation state, so a large cache would pin
# real memory.
_DISTRIBUTION_CACHE: dict[tuple[int, str, str], SizeDistribution] = {}
_DISTRIBUTION_CACHE_MAX = 32


def resolve_distribution(n: int, params: Mapping) -> SizeDistribution:
    """Build the distribution a ``{"family": ..., **kwargs}`` mapping names.

    Results are memoized on ``(n, family, params)``: a sweep re-resolves
    the same handful of workload and prediction distributions for every
    grid point, and full-board construction (pmf validation plus
    condensation) is the dominant resolution cost.  Distributions are
    immutable apart from internal caches, so sharing one instance across
    points is safe - the solo runner already reuses one instance across
    all trials of a scenario.  The constructor always receives the
    caller's *original* params; only parameter sets that survive a JSON
    round-trip unchanged are cached (custom families registered with
    e.g. tuple values or int-keyed dicts simply bypass the memo rather
    than being handed transformed arguments or colliding on a lossy
    key).
    """
    params = dict(params)
    family = params.pop("family", None)
    if not family:
        raise ScenarioError("distribution params need a 'family' name")
    family = str(family)
    try:
        encoded = json.dumps(params, sort_keys=True)
        cacheable = json.loads(encoded) == params
    except TypeError:
        cacheable = False
    if not cacheable:
        return _build_distribution(n, family, **params)
    key = (n, family, encoded)
    hit = _DISTRIBUTION_CACHE.get(key)
    if hit is None:
        hit = _build_distribution(n, family, **params)
        if len(_DISTRIBUTION_CACHE) >= _DISTRIBUTION_CACHE_MAX:
            _DISTRIBUTION_CACHE.pop(next(iter(_DISTRIBUTION_CACHE)))
        _DISTRIBUTION_CACHE[key] = hit
    return hit


def _build_distribution(n: int, family: str, **params) -> SizeDistribution:
    try:
        constructor = DISTRIBUTION_FAMILIES[family]
    except KeyError:
        raise ScenarioError(
            f"unknown distribution family {family!r}; known: "
            f"{', '.join(sorted(DISTRIBUTION_FAMILIES))}"
        ) from None
    try:
        return constructor(n, **params)
    except (TypeError, ValueError) as error:
        # Bad names *and* bad values both surface as spec errors, so the
        # CLI reports them cleanly instead of leaking a traceback.
        raise ScenarioError(
            f"bad parameters for distribution family {family!r}: {error}"
        ) from None


def resolve_workload(spec: WorkloadSpec, n: int):
    """The runnable size source a workload spec describes.

    Returns an ``int`` (fixed workloads) or an object with
    ``sample`` / ``sample_many`` - exactly the estimators'
    ``SizeSource`` protocol.
    """
    params = dict(spec.params)
    if spec.kind == "fixed":
        k = params.pop("k", None)
        _reject_extras(params, "fixed workload")
        if not isinstance(k, int) or k < 1:
            raise ScenarioError(f"fixed workload needs an integer k >= 1, got {k!r}")
        if k > n:
            raise ScenarioError(f"fixed workload k={k} exceeds n={n}")
        return k
    if spec.kind == "distribution":
        return resolve_distribution(n, params)
    if spec.kind == "bursty":
        try:
            return MarkovBurstArrivals(n, **params)
        except (TypeError, ValueError) as error:
            raise ScenarioError(f"bad bursty workload parameters: {error}") from None
    if spec.kind == "trace":
        ks = params.pop("ks", None)
        name = params.pop("name", "trace")
        _reject_extras(params, "trace workload")
        if not ks:
            raise ScenarioError("trace workload needs a non-empty 'ks' list")
        try:
            return TraceArrivals(ks, name=name)
        except (TypeError, ValueError) as error:
            raise ScenarioError(f"bad trace workload parameters: {error}") from None
    if spec.kind in ("poisson", "zipf-hotspot"):
        # Open-system arrival families doubling as closed batch-size
        # sources: each trial's contender count is one round's arrival
        # draw, clamped into [MIN_COUNT, n] like the bursty/trace kinds.
        from ..opensys.arrivals import (
            ClampedArrivalSizeSource,
            arrival_process_from_dict,
        )

        try:
            process = arrival_process_from_dict({"family": spec.kind, **params})
            return ClampedArrivalSizeSource(process, n)
        except (TypeError, ValueError) as error:
            raise ScenarioError(
                f"bad {spec.kind} workload parameters: {error}"
            ) from None
    raise ScenarioError(
        f"unknown workload kind {spec.kind!r}; "
        "known: fixed, distribution, bursty, trace, poisson, zipf-hotspot"
    )


def workload_label(source) -> str:
    """Human-readable workload identity for result metadata."""
    if isinstance(source, int):
        return f"fixed(k={source})"
    return getattr(source, "name", type(source).__name__)


def resolve_prediction(
    spec: PredictionSpec | None, workload_source, n: int
) -> Prediction | None:
    """The prediction a spec describes, given the resolved workload.

    ``source="truth"`` wraps the workload's own distribution (requires a
    distribution workload - there is no "true distribution" for fixed,
    bursty or trace workloads); ``source="distribution"`` builds an
    explicit predicted distribution, whose divergence from the workload
    is then the scenario's prediction-quality knob.
    """
    if spec is None:
        return None
    if spec.source == "truth":
        if not isinstance(workload_source, SizeDistribution):
            raise ScenarioError(
                "prediction source 'truth' needs a 'distribution' workload; "
                f"got workload {workload_label(workload_source)!r}"
            )
        return Prediction(workload_source)
    if spec.source == "distribution":
        return Prediction(resolve_distribution(n, spec.params))
    raise ScenarioError(
        f"unknown prediction source {spec.source!r}; known: truth, distribution"
    )


def _reject_extras(params: dict, what: str) -> None:
    if params:
        raise ScenarioError(
            f"unknown {what} parameter(s): {', '.join(sorted(params))}"
        )
