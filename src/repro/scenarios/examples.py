"""Ready-to-run example payloads that are library data, not CLI strings.

Example specs consumed beyond the CLI live here, next to the spec/sweep
machinery they describe, so benchmarks and tooling can import them
without dragging in the argparse entry point - the CLI imports *from*
the library, never the other way around.
"""

from __future__ import annotations

import copy

__all__ = [
    "EXAMPLE_CD_SWEEP",
    "EXAMPLE_ADVERSARY_SWEEP",
    "EXAMPLE_FAULT_PLAN",
    "EXAMPLE_OPEN_SCENARIO",
    "EXAMPLE_OPEN_SWEEP",
    "EXAMPLE_OPEN_RETRY_SWEEP",
]

#: The dense CD sweep: the collision-detection arm of the robustness /
#: crossover experiments as one declarative grid.  Willard (the classical
#: CD baseline, at two vote repetitions) and cycling code search (the
#: Section 2.6 prediction algorithm) are feedback-driven, so their points
#: run on the history engine and stack into a single fused-history run;
#: the decay points ride along as one fused-schedule group.  The
#: prediction axis dials clean ("truth") against systematically faulty
#: (range-shifted) predictions - only code search consumes it, which is
#: the point: the baselines are the yardstick the prediction algorithm is
#: measured against on every workload.  Printed by ``repro scenario
#: example --cd-grid``; ``benchmarks/sweep_workload.py`` builds its
#: fused-CD benchmark grid from this same definition.
EXAMPLE_CD_SWEEP: dict = {
    "base": {
        "name": "cd-grid",
        "protocol": {"id": "willard", "params": {}},
        "workload": {
            "kind": "distribution",
            "params": {"family": "range_uniform_subset", "ranges": [2, 5, 8]},
        },
        "channel": "cd",
        "prediction": "truth",
        "n": 2**10,
        "trials": 192,
        "max_rounds": 512,
        "seed": 2021,
    },
    "grid": {
        "protocol": [
            {"id": "willard", "params": {}},
            {"id": "willard", "params": {"repetitions": 7}},
            {"id": "decay", "params": {}},
            {"id": "code-search", "params": {"one_shot": False, "repetitions": 5}},
        ],
        "prediction": [
            "truth",
            {
                "source": "distribution",
                "params": {
                    "family": "perturbed",
                    "base": {"family": "range_uniform_subset", "ranges": [2, 5, 8]},
                    "shift": 3,
                    "floor": 1e-6,
                },
            },
        ],
        "workload.params.ranges": [
            [2, 5, 8],
            [3, 6, 9],
            [2, 4, 6, 8],
            [2, 3, 5, 7, 9],
        ],
    },
    "vary_seed": True,
}

#: The adversary robustness grid: rounds-to-success versus jamming budget
#: for the CD protocols under clean ("truth") and range-shifted
#: predictions.  The budget axis overrides
#: ``channel.model.params.budget`` in place, so every point carries the
#: full channel-model spec and the fused executor groups points *by
#: model*: same-budget points stack into fused-history runs, points with
#: different budgets (different adversaries) never share an engine run.
#: Budget 0 is the faithful channel (the null jammer reduces to no model
#: at all), anchoring each curve's clean baseline; the oblivious jammer
#: forces collisions from round 1, so mean rounds degrade monotonically
#: in the budget - the robustness curve the JAM-ROBUST experiment pins.
#: Printed by ``repro scenario example --adversary``.
#: One open-system point: decay serving a Poisson request stream on the
#: no-CD channel - the canonical latency-under-load measurement.  Offered
#: load 0.2 requests/round sits comfortably below decay's service
#: capacity, so the backlog stays stable and the sojourn percentiles are
#: finite; warmup 64 discards the empty-system transient.  Printed by
#: ``repro scenario open example``.
EXAMPLE_OPEN_SCENARIO: dict = {
    "name": "open-decay-poisson",
    "protocol": {"id": "decay", "params": {}},
    "arrivals": {"family": "poisson", "params": {"rate": 0.2}},
    "channel": "nocd",
    "n": 256,
    "trials": 64,
    "rounds": 512,
    "warmup": 64,
    "capacity": 128,
    "seed": 2021,
}

#: The load -> latency curve: the open-decay point swept over a 4-point
#: offered-load grid.  p50/p99 sojourn rise monotonically with load as
#: the live population (hence per-epoch contention) grows - the
#: open-system tail-latency story in one table.  Printed by ``repro
#: scenario open example --sweep``; the CI smoke and
#: ``benchmarks/opensys_workload.py`` reuse this grid shape.
EXAMPLE_OPEN_SWEEP: dict = {
    "base": copy.deepcopy(EXAMPLE_OPEN_SCENARIO),
    "grid": {"arrivals.params.rate": [0.05, 0.1, 0.2, 0.35]},
    "vary_seed": True,
}

#: The graceful-degradation grid: a small open point with a tight buffer
#: and timeout, swept over retry kind x offered load.  At the overload
#: rates the ``immediate`` column shows the retry storm (attempts and
#: retried explode, goodput sags) while ``backoff`` keeps the orbit
#: drained and the ``give-up`` row is the PR 7 baseline.  Printed by
#: ``repro scenario open example --retry``; the CI smoke runs exactly
#: this sweep and greps the retried/abandoned counters.
EXAMPLE_OPEN_RETRY_SWEEP: dict = {
    "base": {
        "name": "open-decay-retry",
        "protocol": {"id": "decay", "params": {}},
        "arrivals": {"family": "poisson", "params": {"rate": 0.2}},
        "channel": "nocd",
        "n": 64,
        "trials": 16,
        "rounds": 256,
        "warmup": 32,
        "capacity": 16,
        "timeout": 24,
        # params stay empty so the grid can swap 'kind' freely: a dotted
        # override of retry.kind keeps the base params, and give-up /
        # immediate reject backoff-only knobs.
        "retry": {"kind": "backoff", "params": {}},
        "admission": {"kind": "shed", "params": {"threshold": 0.5}},
        "seed": 2021,
    },
    "grid": {
        "retry.kind": ["give-up", "immediate", "backoff"],
        "arrivals.params.rate": [0.15, 0.45],
    },
    "vary_seed": True,
}

#: The jamming robustness grid: protocol x prediction quality x channel
#: model x budget.  The model axis climbs the adversary information
#: hierarchy - the oblivious prefix jammer plus two adaptive-strategy
#: rows (greedy success-suppression and the back-loaded scheduler); the
#: fused sweep executor groups the oblivious rows by model and runs each
#: adaptive row as a serial singleton (adaptive state is deliberately
#: unfusable).  Printed by ``repro scenario example --adversary``.
EXAMPLE_ADVERSARY_SWEEP: dict = {
    "base": {
        "name": "adversary-grid",
        "protocol": {"id": "willard", "params": {}},
        "workload": {
            "kind": "distribution",
            "params": {"family": "range_uniform_subset", "ranges": [2, 4, 6]},
        },
        "channel": {
            "collision_detection": True,
            "model": {
                "name": "jam-oblivious",
                "params": {"budget": 0, "start": 1, "period": 1},
            },
        },
        "prediction": "truth",
        "n": 2**10,
        "trials": 160,
        "max_rounds": 512,
        "seed": 2021,
    },
    "grid": {
        "protocol": [
            {"id": "willard", "params": {}},
            {"id": "decay", "params": {}},
            {"id": "sorted-probing", "params": {"one_shot": False}},
        ],
        "prediction": [
            "truth",
            {
                "source": "distribution",
                "params": {
                    "family": "perturbed",
                    "base": {"family": "range_uniform_subset", "ranges": [2, 4, 6]},
                    "shift": 3,
                    "floor": 1e-6,
                },
            },
        ],
        # The model axis climbs the information hierarchy; it is listed
        # BEFORE the budget axis so the dotted budget override patches
        # into whichever model the row selected (overrides apply in grid
        # order).  The budget placeholders here are overwritten.
        "channel.model": [
            {
                "name": "jam-oblivious",
                "params": {"budget": 0, "start": 1, "period": 1},
            },
            {
                "name": "jam-adaptive",
                "params": {"budget": 0, "strategy": "greedy"},
            },
            {
                "name": "jam-adaptive",
                "params": {"budget": 0, "strategy": "scheduler", "mode": "back"},
            },
        ],
        "channel.model.params.budget": [0, 8, 16, 32],
    },
    "vary_seed": True,
}

#: The fault-injection demo plan for ``scenario sweep --inject-faults``:
#: point 0's first attempt is killed, point 1's first result comes back
#: corrupted, point 2's first attempt hangs (the supervisor's timeout
#: reclaims it), and the *driver* itself crashes after 4 checkpointed
#: points - re-running with the same ``--resume`` journal replays those 4
#: and finishes bit-identically.  Worker faults (crash/hang/corrupt) need
#: ``--executor supervised``; ``crash_driver_after`` works everywhere.
#: ``tests/scenarios/test_supervised.py`` exercises every directive.
EXAMPLE_FAULT_PLAN: dict = {
    "crash": {"0": 1},
    "corrupt": {"1": 1},
    "hang": {"2": 1},
    "hang_seconds": 600,
    "crash_driver_after": 4,
}
