"""The supervised sweep executor: timeouts, bounded retry, degradation.

The built-in process pool (``executor="process"``) assumes workers are
well-behaved: a worker that wedges stalls the sweep forever, and a
worker that dies takes the pool down with a bare traceback.  The
supervised executor assumes the opposite - workers may crash, hang, or
return corrupted results (exactly the faults
:class:`~repro.scenarios.faults.FaultPlan` scripts) - and wraps each
point in its own supervised process:

* **per-point timeout** - a worker past its deadline is terminated and
  the attempt counts as failed;
* **bounded retry with backoff** - each point gets ``retries`` extra
  attempts, separated by exponentially growing sleeps;
* **result validation** - a returned result whose embedded spec does not
  match the point's spec is rejected as corrupt (the result crossed the
  process boundary as JSON; a mismatch means the worker answered the
  wrong question);
* **graceful degradation** - a point that exhausts its attempts is
  recorded in a structured failure manifest and the sweep *continues*;
  :func:`~repro.scenarios.sweep.run_sweep` returns the points that did
  complete plus the manifest instead of raising.

Because every point still runs :func:`~repro.scenarios.runner.run_scenario`
from its own serialized spec, supervised results are bit-identical to
the serial executor's - supervision changes what happens on failure,
never what a success computes.

Importing this module registers the executor as ``"supervised"`` with
library defaults; the CLI re-registers it (``replace=True``) with
user-configured timeout/retry settings.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Callable, Sequence
from multiprocessing.connection import wait as _wait_connections

from .faults import FaultPlan
from .runner import ScenarioResult, run_scenario
from .spec import ScenarioError, ScenarioSpec
from .sweep import _pool_context, register_executor

__all__ = [
    "make_supervised_executor",
]

#: Exit status of a fault-injected worker crash - distinctive on purpose,
#: so a supervisor test failure names the injected death, not a generic 1.
CRASH_EXIT_CODE = 173


def _supervised_point_worker(
    conn, spec_data: dict, directive: str | None, hang_seconds: float
) -> None:
    """Worker entry: run one point, honoring an injected fault directive."""
    try:
        if directive == "crash":
            os._exit(CRASH_EXIT_CODE)
        if directive == "hang":
            # Never answer; the supervisor's deadline is the only way out.
            time.sleep(hang_seconds)
            os._exit(CRASH_EXIT_CODE)
        result = run_scenario(ScenarioSpec.from_dict(spec_data)).to_dict()
        if directive == "corrupt":
            # A wrong-question answer: the embedded spec no longer
            # matches the point, which validation must catch.
            result["spec"]["seed"] = int(result["spec"]["seed"]) + 1
        conn.send({"ok": True, "result": result})
    except Exception as error:  # pragma: no cover - crosses processes
        try:
            conn.send({"ok": False, "error": f"{type(error).__name__}: {error}"})
        except Exception:
            pass
    finally:
        conn.close()


class _Attempt:
    """One live supervised attempt at one point."""

    __slots__ = ("index", "number", "process", "conn", "deadline")

    def __init__(self, index, number, process, conn, deadline):
        self.index = index
        self.number = number
        self.process = process
        self.conn = conn
        self.deadline = deadline

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join()
        self.conn.close()


def make_supervised_executor(
    *,
    timeout: float = 60.0,
    retries: int = 2,
    backoff: float = 0.05,
) -> Callable:
    """Build a supervised executor with the given failure policy.

    ``timeout`` is the per-attempt wall-clock budget in seconds;
    ``retries`` is how many *extra* attempts a failed point gets (so a
    point runs at most ``retries + 1`` times); ``backoff`` seeds the
    exponential sleep before retry ``a`` (``backoff * 2**(a-1)``).
    The returned callable fits the executor registry and accepts the
    checkpoint-aware keywords ``checkpoint`` and ``fault_plan``.
    """
    if timeout <= 0:
        raise ScenarioError(f"timeout must be > 0, got {timeout}")
    if retries < 0:
        raise ScenarioError(f"retries must be >= 0, got {retries}")
    if backoff < 0:
        raise ScenarioError(f"backoff must be >= 0, got {backoff}")

    def supervised(
        points: Sequence[ScenarioSpec],
        max_workers: int | None,
        *,
        checkpoint: Callable | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        if max_workers is None:
            max_workers = min(len(points), multiprocessing.cpu_count())
        max_workers = max(1, max_workers)
        context = _pool_context()
        plan = fault_plan if fault_plan is not None else FaultPlan()

        results: list[ScenarioResult | None] = [None] * len(points)
        failures: list[dict] = []
        waiting: list[tuple[int, int]] = [(i, 0) for i in range(len(points))]
        active: list[_Attempt] = []

        def launch(index: int, number: int) -> None:
            if number > 0 and backoff > 0:
                time.sleep(backoff * (2 ** (number - 1)))
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_supervised_point_worker,
                args=(
                    child_conn,
                    points[index].to_dict(),
                    plan.directive(index, number),
                    plan.hang_seconds,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            active.append(
                _Attempt(
                    index,
                    number,
                    process,
                    parent_conn,
                    time.monotonic() + timeout,
                )
            )

        def attempt_failed(attempt: _Attempt, error: str) -> None:
            attempt.kill()
            active.remove(attempt)
            if attempt.number < retries:
                waiting.append((attempt.index, attempt.number + 1))
            else:
                failures.append(
                    {
                        "index": attempt.index,
                        "error": error,
                        "attempts": attempt.number + 1,
                    }
                )

        def attempt_succeeded(attempt: _Attempt, payload: dict) -> None:
            result = ScenarioResult.from_dict(payload)
            if result.spec != points[attempt.index]:
                attempt_failed(
                    attempt,
                    "corrupted result: embedded spec does not match the "
                    "point spec",
                )
                return
            attempt.kill()
            active.remove(attempt)
            results[attempt.index] = result
            # Outside any try: a checkpoint-raised SimulatedCrash (or
            # journal error) must unwind, not count as a point failure.
            if checkpoint is not None:
                checkpoint([attempt.index], [result])

        try:
            while waiting or active:
                while waiting and len(active) < max_workers:
                    index, number = waiting.pop(0)
                    launch(index, number)
                deadline = min(attempt.deadline for attempt in active)
                poll = max(0.0, deadline - time.monotonic())
                ready = _wait_connections(
                    [attempt.conn for attempt in active], timeout=poll
                )
                by_conn = {attempt.conn: attempt for attempt in active}
                for conn in ready:
                    attempt = by_conn[conn]
                    try:
                        message = conn.recv()
                    except EOFError:
                        attempt.process.join()
                        code = attempt.process.exitcode
                        attempt_failed(
                            attempt,
                            f"worker died without answering (exit code {code})",
                        )
                        continue
                    if message.get("ok"):
                        attempt_succeeded(attempt, message["result"])
                    else:
                        attempt_failed(
                            attempt,
                            f"worker error: {message.get('error', 'unknown')}",
                        )
                now = time.monotonic()
                for attempt in list(active):
                    if now >= attempt.deadline:
                        attempt_failed(
                            attempt, f"timed out after {timeout:.6g}s"
                        )
        finally:
            for attempt in list(active):
                attempt.kill()

        return results, failures

    supervised.executor_name = "supervised"
    return supervised


register_executor("supervised", make_supervised_executor(), replace=True)
