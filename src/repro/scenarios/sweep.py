"""Sweeps: expand a spec grid and run the points through an executor.

A :class:`Sweep` is a base :class:`~repro.scenarios.spec.ScenarioSpec`
plus a grid of dotted-path overrides; :meth:`Sweep.points` expands the
cartesian product into concrete specs, and :func:`run_sweep` executes
them through a pluggable executor:

* ``"serial"`` - run points in-process, in order (the reference);
* ``"process"`` - fan points out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Points are
  independent scenarios with their own seeds, so the two executors
  produce *identical* results - the pool only changes wall-clock time,
  scaling the lockstep batch engine across cores (the axis it cannot
  use by itself);
* ``"fused"`` - partition the points into compatibility groups
  (:func:`fusion_key`) and advance each group through one *stacked*
  engine run (:mod:`repro.channel.batch` /
  :mod:`repro.channel.batch_players`): the single-core counterpart of
  the process pool, amortizing the per-round engine work across a whole
  grid instead of across cores.  Every point draws from its own
  seed-derived generator in exactly the order a solo run would, so the
  fused statistics are bit-identical to the serial executor's; only the
  recorded engine label differs (``fused-schedule`` / ``fused-history``
  / ``fused-player`` says what actually executed).  Incompatible
  points - and singleton groups, where stacking buys nothing -
  transparently fall back to serial in-place runs.

A fourth executor, ``"supervised"`` (:mod:`repro.scenarios.supervised`),
wraps a worker pool with per-point timeouts, bounded retry with backoff
and graceful degradation - on exhausted retries the sweep returns the
points that did complete plus a structured failure manifest instead of
raising.

Specs and results cross the process boundary as JSON-native dicts, so
the pool never pickles protocol objects or RNG state - workers rebuild
everything from the spec, exactly as a fresh process loading the JSON
would.

:func:`run_sweep` also owns the durability layer
(:mod:`repro.scenarios.store`): ``resume=`` checkpoints every completed
point (whole fused groups atomically) to an append-only journal and
replays it on the next run, ``cache=`` consults a content-addressed
result store before executing anything, and ``fault_plan=``
(:mod:`repro.scenarios.faults`) injects scripted crashes so those
recovery paths stay tested.
"""

from __future__ import annotations

import inspect
import itertools
import json
import multiprocessing
import os
import time
from collections.abc import Callable, Mapping, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

import numpy as np

from ..analysis.montecarlo import (
    ENGINE_BATCH_HISTORY,
    ENGINE_BATCH_PLAYER,
    ENGINE_BATCH_SCHEDULE,
    ENGINE_FUSED_HISTORY,
    ENGINE_FUSED_PLAYER,
    ENGINE_FUSED_SCHEDULE,
    estimate_player_rounds_many,
    estimate_uniform_rounds_many,
)
from .faults import FaultPlan, SimulatedCrash
from .runner import (
    ResolvedScenario,
    ScenarioResult,
    package_result,
    resolve_scenario,
    run_scenario,
)
from .spec import ScenarioError, ScenarioSpec
from .store import ResultStore, SweepJournal, spec_key, sweep_key

__all__ = [
    "Sweep",
    "SweepResult",
    "SweepPointError",
    "run_sweep",
    "derive_point_seeds",
    "fusion_key",
    "fusion_groups",
    "EXECUTORS",
    "register_executor",
    "unregister_executor",
]


class SweepPointError(ScenarioError):
    """A sweep point failed, with the point named instead of a bare trace.

    Raised by the raising executors (serial / process / fused) in place
    of whatever the point's execution raised, so a failure 900 points
    into a grid says *which* point and *which* grid overrides produced
    it.  The original exception is chained as ``__cause__`` and kept on
    :attr:`cause`; the supervised executor records the same information
    in its failure manifest instead of raising at all.
    """

    def __init__(
        self,
        index: int,
        spec: ScenarioSpec,
        cause: BaseException,
        overrides: Mapping | None = None,
    ) -> None:
        self.index = index
        self.spec = spec
        self.cause = cause
        self.overrides = dict(overrides) if overrides else {}
        parts = [f"sweep point {index} ({spec.label()}) failed: {cause}"]
        if self.overrides:
            parts.append(f"grid overrides: {json.dumps(self.overrides)}")
        parts.append(f"point spec: {json.dumps(spec.to_dict())}")
        super().__init__("; ".join(parts))


def derive_point_seeds(base_seed: int, count: int) -> list[int]:
    """Independent per-point seeds derived from one base seed.

    ``np.random.SeedSequence(base_seed).spawn(count)`` children, each
    collapsed to a 64-bit integer so it serializes into the point's spec
    (a re-run from the serialized point reproduces identically).  Unlike
    the old ``base_seed + index`` derivation, adjacent points get
    unrelated PCG64 streams instead of trivially correlated ones.
    """
    children = np.random.SeedSequence(base_seed).spawn(count)
    return [
        int(child.generate_state(1, dtype=np.uint64)[0]) for child in children
    ]


@dataclass(frozen=True)
class Sweep:
    """A grid of scenario variations around a base spec.

    ``grid`` maps dotted override paths (see
    :meth:`ScenarioSpec.override`) to value lists; points are the
    cartesian product in row-major order (last key varies fastest).
    With ``vary_seed`` (default), each point's seed is offset by its
    index unless the grid itself sweeps ``seed`` - the derived seed is
    *part of the point's spec*, so a point re-run from its serialized
    form reproduces identically.
    """

    base: ScenarioSpec
    grid: dict = field(default_factory=dict)
    vary_seed: bool = True

    def __post_init__(self) -> None:
        for path, values in self.grid.items():
            if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
                raise ScenarioError(
                    f"grid values for {path!r} must be a list, got "
                    f"{type(values).__name__}"
                )
            if len(values) == 0:
                raise ScenarioError(f"grid values for {path!r} must be non-empty")

    def _expanded(self) -> list[tuple[dict, ScenarioSpec]]:
        """Grid expansion: ``(grid_overrides, spec)`` per point, in order."""
        paths = list(self.grid)
        combos = list(itertools.product(*(self.grid[path] for path in paths)))
        seeds = (
            derive_point_seeds(self.base.seed, len(combos))
            if self.vary_seed and "seed" not in paths
            else None
        )
        expanded: list[tuple[dict, ScenarioSpec]] = []
        for index, combo in enumerate(combos):
            grid_overrides = dict(zip(paths, combo))
            overrides = dict(grid_overrides)
            if seeds is not None:
                overrides["seed"] = seeds[index]
            if "name" not in overrides:
                overrides["name"] = (
                    f"{self.base.name}[{index}]" if self.base.name else f"point-{index}"
                )
            expanded.append((grid_overrides, self.base.override(overrides)))
        return expanded

    def points(self) -> list[ScenarioSpec]:
        """The expanded scenario specs, in deterministic grid order."""
        return [spec for _, spec in self._expanded()]

    def point_overrides(self) -> list[dict]:
        """Each point's grid overrides (derived seed/name excluded), in order.

        Aligned with :meth:`points`; error messages and failure manifests
        use these to name the grid cell a failing point came from.
        """
        return [overrides for overrides, _ in self._expanded()]

    def to_dict(self) -> dict:
        return {
            "base": self.base.to_dict(),
            "grid": {path: list(values) for path, values in self.grid.items()},
            "vary_seed": self.vary_seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Sweep":
        if not isinstance(data, Mapping):
            raise ScenarioError("sweep spec must be a mapping")
        unknown = sorted(set(data) - {"base", "grid", "vary_seed"})
        if unknown:
            raise ScenarioError(
                f"unknown sweep field(s): {', '.join(map(repr, unknown))}"
            )
        if "base" not in data:
            raise ScenarioError("sweep spec needs a 'base' scenario")
        grid = data.get("grid", {})
        if not isinstance(grid, Mapping):
            raise ScenarioError("sweep 'grid' must be a mapping")
        return cls(
            base=ScenarioSpec.from_dict(data["base"]),
            grid={str(path): list(values) for path, values in grid.items()},
            vary_seed=bool(data.get("vary_seed", True)),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Sweep":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError(f"invalid sweep JSON: {error}") from None
        return cls.from_dict(data)


@dataclass
class SweepResult:
    """All point results of one sweep execution.

    ``resumed`` and ``cache_hits`` count points restored from a
    checkpoint journal or the content-addressed store instead of
    executed; like wall clock they are provenance, not identity, so they
    are excluded from equality.  ``failures`` is the structured failure
    manifest of a degraded run (supervised executor with exhausted
    retries): one mapping per missing point naming its index, label,
    grid overrides, spec and last error.  A degraded result is *not*
    equal to a complete one, so failures do participate in equality.
    """

    results: list[ScenarioResult]
    executor: str
    elapsed_seconds: float = field(default=0.0, compare=False)
    resumed: int = field(default=0, compare=False)
    cache_hits: int = field(default=0, compare=False)
    failures: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def to_dict(self) -> dict:
        return {
            "executor": self.executor,
            "elapsed_seconds": self.elapsed_seconds,
            "resumed": self.resumed,
            "cache_hits": self.cache_hits,
            "failures": [dict(failure) for failure in self.failures],
            "results": [result.to_dict() for result in self.results],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepResult":
        return cls(
            results=[ScenarioResult.from_dict(row) for row in data["results"]],
            executor=str(data.get("executor", "serial")),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            resumed=int(data.get("resumed", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            failures=[dict(row) for row in data.get("failures", [])],
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Plain-text sweep table for the CLI."""
        from ..analysis.tables import render_table

        headers = ["point", "engine", "trials", "success", "mean rounds", "p90"]
        rows: list[list[object]] = []
        for result in self.results:
            rows.append(
                [
                    result.spec.label(),
                    result.engine,
                    result.success.trials,
                    result.success.rate,
                    result.rounds.mean if result.any_successes else float("nan"),
                    result.rounds.p90 if result.any_successes else float("nan"),
                ]
            )
        table = render_table(headers, rows, precision=3)
        lines = [
            f"sweep: {len(self.results)} point(s), executor={self.executor}, "
            f"wall {self.elapsed_seconds:.3f}s, resumed={self.resumed}, "
            f"cache_hits={self.cache_hits}, failures={len(self.failures)}",
            table,
        ]
        if self.failures:
            lines.append("failed points (see the structured manifest in --json):")
            for failure in self.failures:
                lines.append(
                    f"  - point {failure.get('index')} "
                    f"({failure.get('name', '?')}): {failure.get('error', '?')} "
                    f"after {failure.get('attempts', '?')} attempt(s)"
                )
        return "\n".join(lines)


def _run_point_payload(spec_data: dict) -> dict:
    """Worker entry: spec dict in, result dict out (picklable both ways)."""
    return run_scenario(ScenarioSpec.from_dict(spec_data)).to_dict()


def _run_serial(
    points: Sequence[ScenarioSpec],
    max_workers: int | None,
    *,
    checkpoint: Callable | None = None,
) -> list[ScenarioResult]:
    del max_workers
    results: list[ScenarioResult] = []
    for index, point in enumerate(points):
        try:
            result = run_scenario(point)
        except Exception as error:
            raise SweepPointError(index, point, error) from error
        results.append(result)
        # Outside the try: a checkpoint-injected SimulatedCrash must
        # unwind like a real crash, not get repackaged as a point error.
        if checkpoint is not None:
            checkpoint([index], [result])
    return results


def _pool_context():
    """Prefer fork where available: no re-import cost per worker."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _run_process_pool(
    points: Sequence[ScenarioSpec],
    max_workers: int | None,
    *,
    checkpoint: Callable | None = None,
) -> list[ScenarioResult]:
    if max_workers is None:
        max_workers = min(len(points), multiprocessing.cpu_count())
    max_workers = max(1, max_workers)
    results: list[ScenarioResult | None] = [None] * len(points)
    with ProcessPoolExecutor(
        max_workers=max_workers, mp_context=_pool_context()
    ) as pool:
        futures = {
            pool.submit(_run_point_payload, point.to_dict()): index
            for index, point in enumerate(points)
        }
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            # Checkpoint completions in index order within each wave so
            # a crash-and-resume journal has a deterministic shape.
            for future in sorted(done, key=futures.__getitem__):
                index = futures[future]
                try:
                    payload = future.result()
                except Exception as error:
                    for leftover in pending:
                        leftover.cancel()
                    raise SweepPointError(
                        index, points[index], error
                    ) from error
                result = ScenarioResult.from_dict(payload)
                results[index] = result
                if checkpoint is not None:
                    try:
                        checkpoint([index], [result])
                    except BaseException:
                        # Driver crash (or journal error): don't block on
                        # points the journal will never see.
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise
    return results  # type: ignore[return-value]


def fusion_key(resolved: ResolvedScenario) -> tuple | None:
    """The compatibility class of a resolved point, or ``None``.

    Points sharing a key can be stacked into one engine run with
    bit-identical per-point results; ``None`` marks points the fused
    executor must run serially.  Three fusable shapes exist:

    * **schedule points** - uniform protocols routed to the batch
      schedule engine.  The stacked engine takes per-point schedules and
      size batches, so swept protocol parameters (``p``, prediction
      quality, window base) and workloads fuse freely; only the trial
      count, round budget and channel must agree (the engine advances
      one shared round loop over a rectangular trial block).
    * **history points** - uniform protocols routed to the batch history
      engine (feedback-driven, deterministic sessions: Willard, code
      search, phased search, history policies).  The stacked engine
      keeps per-point protocols and a shared history-trie arena, so
      protocol params, workloads, predictions and seeds all sweep
      freely; as for schedule points, only trials, round budget and
      channel must agree.  Points with equal
      :meth:`~repro.core.protocol.UniformProtocol.history_signature`\\ s
      additionally share one memoized trie inside the run.
    * **player points** - player protocols routed to the batch player
      engine whose sessions are randomness-free
      (:meth:`~repro.core.protocol.PlayerProtocol.supports_fused_sessions`).
      The whole group executes through *one* protocol object, so
      everything protocol construction consumes must match: the protocol
      spec, ``n``, and the prediction spec (no in-repo player protocol
      takes a prediction, but registration is open); adversary, advice
      quality and seed sweep freely - exactly the robustness-curve axis.

    The shared key includes the resolved channel *model* (the fault
    adversary), so points under different adversaries - or under an
    adversary and the faithful channel - are **never** stacked into one
    run: the fault state is per-engine-run, and mixing models would
    silently perturb the wrong points.  Models that opt out of stacking
    entirely (:attr:`~repro.channel.models.ChannelModel.fusable` is
    False - the adaptive adversaries, whose per-point state is kept
    solo so the "one adversary per execution" reading of a stress curve
    stays unambiguous) return ``None`` and run serially.  Player points
    additionally require a model that draws no per-round fault
    randomness (the stacked player engine runs without a generator);
    random models (noise, crash) return ``None`` and degrade to the
    serial path, with the point's recorded engine label saying so.
    """
    spec = resolved.spec
    model = resolved.channel.active_model
    if model is not None and not model.fusable:
        return None
    shared = (
        spec.trials,
        spec.max_rounds,
        spec.channel.collision_detection,
        json.dumps(model.to_dict(), sort_keys=True)
        if model is not None
        else None,
    )
    if resolved.engine == ENGINE_BATCH_SCHEDULE:
        return ("schedule",) + shared
    if resolved.engine == ENGINE_BATCH_HISTORY:
        return ("history",) + shared
    if (
        resolved.engine == ENGINE_BATCH_PLAYER
        and resolved.protocol.supports_fused_sessions()
        and (model is None or not model.needs_fault_draws)
    ):
        return (
            ("player",)
            + shared
            + (
                spec.n,
                json.dumps(spec.protocol.to_dict(), sort_keys=True),
                json.dumps(
                    spec.prediction.to_dict() if spec.prediction else None,
                    sort_keys=True,
                ),
            )
        )
    return None


def fusion_groups(
    resolved_points: Sequence[ResolvedScenario],
) -> list[list[int]]:
    """Partition point indices into stackable groups, in first-seen order.

    Unfusable points come back as singleton groups; fusable points group
    by :func:`fusion_key`.  Grouping never reorders results - indices map
    back into the sweep's point order.
    """
    groups: dict[object, list[int]] = {}
    order: list[list[int]] = []
    for index, resolved in enumerate(resolved_points):
        key = fusion_key(resolved)
        if key is None:
            order.append([index])
            continue
        if key not in groups:
            groups[key] = []
            order.append(groups[key])
        groups[key].append(index)
    return order


def _run_fused_group(
    members: Sequence[ResolvedScenario],
) -> list[ScenarioResult]:
    """Execute one compatibility group through the stacked engines."""
    first = members[0]
    spec = first.spec
    started = time.perf_counter()
    if first.kind == "player":
        estimates = estimate_player_rounds_many(
            first.protocol,
            [resolved.participant_source() for resolved in members],
            spec.n,
            [resolved.rng for resolved in members],
            channel=first.channel,
            advice_functions=[resolved.advice for resolved in members],
            trials=spec.trials,
            max_rounds=spec.max_rounds,
        )
        label = ENGINE_FUSED_PLAYER
    else:
        estimates = estimate_uniform_rounds_many(
            [resolved.protocol for resolved in members],
            [resolved.size_source for resolved in members],
            [resolved.rng for resolved in members],
            channel=first.channel,
            trials=spec.trials,
            max_rounds=spec.max_rounds,
        )
        label = (
            ENGINE_FUSED_HISTORY
            if first.engine == ENGINE_BATCH_HISTORY
            else ENGINE_FUSED_SCHEDULE
        )
    # One stacked run has no meaningful per-point wall clock; record the
    # group's amortized share so sweep totals still add up.
    share = (time.perf_counter() - started) / len(members)
    return [
        package_result(resolved, estimate, engine=label, elapsed_seconds=share)
        for resolved, estimate in zip(members, estimates)
    ]


def _run_fused(
    points: Sequence[ScenarioSpec],
    max_workers: int | None,
    *,
    checkpoint: Callable | None = None,
) -> list[ScenarioResult]:
    """The fused executor: stack compatible points, serial-run the rest.

    Checkpoint granularity is the fusion *group*: a stacked run either
    lands whole or not at all, so a resumed sweep re-fuses exactly the
    still-missing groups and every point keeps its stacked engine label.
    """
    del max_workers
    resolved_points: list[ResolvedScenario] = []
    for index, point in enumerate(points):
        try:
            resolved_points.append(resolve_scenario(point))
        except Exception as error:
            raise SweepPointError(index, point, error) from error
    results: list[ScenarioResult | None] = [None] * len(points)
    for group in fusion_groups(resolved_points):
        try:
            if len(group) == 1:
                # Nothing to amortize (or unfusable): the serial
                # reference run, which re-resolves from the spec -
                # resolution consumes no randomness, so the duplicate
                # resolution is free of stream effects.
                group_results = [run_scenario(points[group[0]])]
            else:
                group_results = _run_fused_group(
                    [resolved_points[i] for i in group]
                )
        except Exception as error:
            first = group[0]
            raise SweepPointError(first, points[first], error) from error
        for index, result in zip(group, group_results):
            results[index] = result
        if checkpoint is not None:
            checkpoint(list(group), group_results)
    return results  # type: ignore[return-value]


Executor = Callable[..., "list | tuple"]

#: Executor name -> callable ``(points, max_workers) -> results``.
#: Checkpoint-aware executors additionally accept a ``checkpoint``
#: keyword (and, for supervising executors, ``fault_plan``); legacy
#: two-argument executors keep working and are checkpointed by
#: :func:`run_sweep` after they return.
EXECUTORS: dict[str, Executor] = {
    "serial": _run_serial,
    "process": _run_process_pool,
    "fused": _run_fused,
}

_BUILTIN_EXECUTORS = frozenset(EXECUTORS)


def register_executor(
    name: str, executor: Executor, *, replace: bool = False
) -> None:
    """Register a custom sweep executor (e.g. a cluster dispatcher).

    Duplicate names are an error unless ``replace=True``, which swaps
    the registration in place - how the CLI installs a supervised
    executor with user-configured timeouts over the default one.
    """
    if name in EXECUTORS and not replace:
        raise ScenarioError(
            f"executor {name!r} already registered (pass replace=True to swap)"
        )
    EXECUTORS[name] = executor


def unregister_executor(name: str) -> None:
    """Remove a registered executor; built-ins cannot be removed.

    The cleanup half of :func:`register_executor`, so tests that install
    an executor don't leak it into the global registry.
    """
    if name in _BUILTIN_EXECUTORS:
        raise ScenarioError(f"cannot unregister built-in executor {name!r}")
    if name not in EXECUTORS:
        raise ScenarioError(f"executor {name!r} is not registered")
    del EXECUTORS[name]


def _accepts_keyword(executor: Callable, name: str) -> bool:
    """Whether ``executor`` can be called with keyword ``name``."""
    try:
        parameters = inspect.signature(executor).parameters
    except (TypeError, ValueError):
        return False
    if name in parameters:
        kind = parameters[name].kind
        return kind in (
            inspect.Parameter.KEYWORD_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        )
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


def run_sweep(
    sweep: Sweep | Sequence[ScenarioSpec],
    *,
    executor: str | Executor = "serial",
    max_workers: int | None = None,
    resume: "str | os.PathLike | None" = None,
    cache: "ResultStore | str | os.PathLike | None" = None,
    fault_plan: FaultPlan | None = None,
) -> SweepResult:
    """Execute a sweep (or an explicit point list) through an executor.

    Point results are returned in grid order regardless of executor;
    because every point is reproducible from its own spec, executors are
    interchangeable - asserting serial/process agreement is a test, not
    a hope.

    ``resume=`` names a checkpoint journal: completed points found there
    are replayed instead of re-executed (the ``resumed`` counter), every
    newly completed point (whole fused groups atomically) is appended,
    and a run interrupted mid-sweep resumes bit-identical to an
    uninterrupted one.  ``cache=`` is a content-addressed
    :class:`~repro.scenarios.store.ResultStore` (or a directory path for
    one) consulted before executing anything - a fully warm cache
    re-runs a sweep without invoking a single engine.  ``fault_plan=``
    injects scripted faults (:mod:`repro.scenarios.faults`): the driver
    crash works under every executor; worker faults need an executor
    that supervises workers (pass ``executor="supervised"``).
    """
    if isinstance(sweep, Sweep):
        points = sweep.points()
        point_overrides = sweep.point_overrides()
    else:
        points = list(sweep)
        point_overrides = [{} for _ in points]
    if not points:
        raise ScenarioError("sweep expanded to zero points")
    if callable(executor):
        run = executor
        executor_name = str(
            getattr(executor, "executor_name", None)
            or getattr(executor, "__name__", "custom")
        )
    else:
        try:
            run = EXECUTORS[executor]
        except KeyError:
            raise ScenarioError(
                f"unknown executor {executor!r}; known: "
                f"{', '.join(sorted(EXECUTORS))}"
            ) from None
        executor_name = executor

    checkpoint_aware = _accepts_keyword(run, "checkpoint")
    supervising = _accepts_keyword(run, "fault_plan")
    if (
        fault_plan is not None
        and fault_plan.has_worker_faults()
        and not supervising
    ):
        raise ScenarioError(
            f"executor {executor_name!r} does not supervise workers, so the "
            f"fault plan's crash/hang/corrupt faults would be silent no-ops; "
            f"use the 'supervised' executor for worker faults"
        )

    started = time.perf_counter()
    total = len(points)
    slots: list[ScenarioResult | None] = [None] * total
    resumed = 0
    cache_hits = 0
    failures: list[dict] = []

    keys: list[str] | None = None
    if resume is not None or cache is not None:
        keys = [spec_key(point) for point in points]
    store = ResultStore.coerce(cache)
    journal: SweepJournal | None = None
    try:
        if resume is not None:
            assert keys is not None
            journal = SweepJournal(
                resume,
                sweep=sweep_key(keys),
                points=total,
                point_keys=keys,
                result_from_dict=ScenarioResult.from_dict,
            )
            for index, result in journal.replayed.items():
                slots[index] = result
                if store is not None:
                    # Backfill the store so a later cache-only run is
                    # fully warm even for journal-replayed points.
                    store.put(points[index], result, key=keys[index])
            resumed = len(journal.replayed)
        if store is not None:
            assert keys is not None
            for index in range(total):
                if slots[index] is not None:
                    continue
                hit = store.get(points[index], key=keys[index])
                if hit is None:
                    continue
                slots[index] = hit
                cache_hits += 1
                if journal is not None:
                    journal.append([(index, hit.to_dict())])

        missing = [index for index in range(total) if slots[index] is None]
        crash_after = fault_plan.crash_driver_after if fault_plan else None
        completed_this_run = 0

        def checkpoint(
            sub_indices: Sequence[int], results: Sequence[ScenarioResult]
        ) -> None:
            nonlocal completed_this_run
            entries: list[tuple[int, dict]] = []
            for local_index, result in zip(sub_indices, results):
                global_index = missing[local_index]
                slots[global_index] = result
                if journal is not None:
                    entries.append((global_index, result.to_dict()))
                if store is not None:
                    assert keys is not None
                    store.put(
                        points[global_index], result, key=keys[global_index]
                    )
            if journal is not None and entries:
                journal.append(entries)
            completed_this_run += len(sub_indices)
            if crash_after is not None and completed_this_run >= crash_after:
                raise SimulatedCrash(
                    f"injected driver crash after {completed_this_run} "
                    f"checkpointed point(s)"
                )

        if crash_after == 0:
            # "Before any point executes" - the journal header (if any)
            # is already on disk, exactly as a crash there would leave it.
            raise SimulatedCrash("injected driver crash before any point ran")

        if missing:
            sub_points = [points[index] for index in missing]
            call_kwargs: dict = {}
            if checkpoint_aware:
                call_kwargs["checkpoint"] = checkpoint
            if supervising:
                call_kwargs["fault_plan"] = (
                    fault_plan.remap(missing) if fault_plan is not None else None
                )
            try:
                out = run(sub_points, max_workers, **call_kwargs)
            except SweepPointError as error:
                global_index = missing[error.index]
                raise SweepPointError(
                    global_index,
                    error.spec,
                    error.cause,
                    overrides=point_overrides[global_index],
                ) from error.cause

            sub_results: Sequence | None
            if (
                isinstance(out, tuple)
                and len(out) == 2
                and isinstance(out[1], list)
            ):
                sub_results, sub_failures = out
            else:
                sub_results, sub_failures = out, []
            if sub_results is not None:
                # Fill (and checkpoint) anything the executor returned
                # without reporting through the checkpoint hook - the
                # whole result list, for legacy two-argument executors.
                for local_index, result in enumerate(sub_results):
                    if result is None:
                        continue
                    if slots[missing[local_index]] is None:
                        checkpoint([local_index], [result])
            for failure in sub_failures:
                enriched = dict(failure)
                local_index = int(enriched.pop("index"))
                global_index = missing[local_index]
                point = points[global_index]
                enriched.update(
                    index=global_index,
                    name=point.label(),
                    overrides=point_overrides[global_index],
                    spec=point.to_dict(),
                )
                failures.append(enriched)
    finally:
        if journal is not None:
            journal.close()

    results = [slot for slot in slots if slot is not None]
    if len(results) != total and not failures:
        raise ScenarioError(
            f"executor {executor_name!r} returned {len(results)} of {total} "
            f"point(s) without reporting failures"
        )
    return SweepResult(
        results=results,
        executor=executor_name,
        elapsed_seconds=time.perf_counter() - started,
        resumed=resumed,
        cache_hits=cache_hits,
        failures=failures,
    )
