"""Sweeps: expand a spec grid and run the points through an executor.

A :class:`Sweep` is a base :class:`~repro.scenarios.spec.ScenarioSpec`
plus a grid of dotted-path overrides; :meth:`Sweep.points` expands the
cartesian product into concrete specs, and :func:`run_sweep` executes
them through a pluggable executor:

* ``"serial"`` - run points in-process, in order (the reference);
* ``"process"`` - fan points out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Points are
  independent scenarios with their own seeds, so the two executors
  produce *identical* results - the pool only changes wall-clock time,
  scaling the lockstep batch engine across cores (the axis it cannot
  use by itself);
* ``"fused"`` - partition the points into compatibility groups
  (:func:`fusion_key`) and advance each group through one *stacked*
  engine run (:mod:`repro.channel.batch` /
  :mod:`repro.channel.batch_players`): the single-core counterpart of
  the process pool, amortizing the per-round engine work across a whole
  grid instead of across cores.  Every point draws from its own
  seed-derived generator in exactly the order a solo run would, so the
  fused statistics are bit-identical to the serial executor's; only the
  recorded engine label differs (``fused-schedule`` / ``fused-history``
  / ``fused-player`` says what actually executed).  Incompatible
  points - and singleton groups, where stacking buys nothing -
  transparently fall back to serial in-place runs.

Specs and results cross the process boundary as JSON-native dicts, so
the pool never pickles protocol objects or RNG state - workers rebuild
everything from the spec, exactly as a fresh process loading the JSON
would.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import time
from collections.abc import Callable, Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..analysis.montecarlo import (
    ENGINE_BATCH_HISTORY,
    ENGINE_BATCH_PLAYER,
    ENGINE_BATCH_SCHEDULE,
    ENGINE_FUSED_HISTORY,
    ENGINE_FUSED_PLAYER,
    ENGINE_FUSED_SCHEDULE,
    estimate_player_rounds_many,
    estimate_uniform_rounds_many,
)
from .runner import (
    ResolvedScenario,
    ScenarioResult,
    package_result,
    resolve_scenario,
    run_scenario,
)
from .spec import ScenarioError, ScenarioSpec

__all__ = [
    "Sweep",
    "SweepResult",
    "run_sweep",
    "derive_point_seeds",
    "fusion_key",
    "fusion_groups",
    "EXECUTORS",
    "register_executor",
]


def derive_point_seeds(base_seed: int, count: int) -> list[int]:
    """Independent per-point seeds derived from one base seed.

    ``np.random.SeedSequence(base_seed).spawn(count)`` children, each
    collapsed to a 64-bit integer so it serializes into the point's spec
    (a re-run from the serialized point reproduces identically).  Unlike
    the old ``base_seed + index`` derivation, adjacent points get
    unrelated PCG64 streams instead of trivially correlated ones.
    """
    children = np.random.SeedSequence(base_seed).spawn(count)
    return [
        int(child.generate_state(1, dtype=np.uint64)[0]) for child in children
    ]


@dataclass(frozen=True)
class Sweep:
    """A grid of scenario variations around a base spec.

    ``grid`` maps dotted override paths (see
    :meth:`ScenarioSpec.override`) to value lists; points are the
    cartesian product in row-major order (last key varies fastest).
    With ``vary_seed`` (default), each point's seed is offset by its
    index unless the grid itself sweeps ``seed`` - the derived seed is
    *part of the point's spec*, so a point re-run from its serialized
    form reproduces identically.
    """

    base: ScenarioSpec
    grid: dict = field(default_factory=dict)
    vary_seed: bool = True

    def __post_init__(self) -> None:
        for path, values in self.grid.items():
            if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
                raise ScenarioError(
                    f"grid values for {path!r} must be a list, got "
                    f"{type(values).__name__}"
                )
            if len(values) == 0:
                raise ScenarioError(f"grid values for {path!r} must be non-empty")

    def points(self) -> list[ScenarioSpec]:
        """The expanded scenario specs, in deterministic grid order."""
        paths = list(self.grid)
        combos = list(itertools.product(*(self.grid[path] for path in paths)))
        seeds = (
            derive_point_seeds(self.base.seed, len(combos))
            if self.vary_seed and "seed" not in paths
            else None
        )
        specs: list[ScenarioSpec] = []
        for index, combo in enumerate(combos):
            overrides = dict(zip(paths, combo))
            if seeds is not None:
                overrides["seed"] = seeds[index]
            if "name" not in overrides:
                overrides["name"] = (
                    f"{self.base.name}[{index}]" if self.base.name else f"point-{index}"
                )
            specs.append(self.base.override(overrides))
        return specs

    def to_dict(self) -> dict:
        return {
            "base": self.base.to_dict(),
            "grid": {path: list(values) for path, values in self.grid.items()},
            "vary_seed": self.vary_seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Sweep":
        if not isinstance(data, Mapping):
            raise ScenarioError("sweep spec must be a mapping")
        unknown = sorted(set(data) - {"base", "grid", "vary_seed"})
        if unknown:
            raise ScenarioError(
                f"unknown sweep field(s): {', '.join(map(repr, unknown))}"
            )
        if "base" not in data:
            raise ScenarioError("sweep spec needs a 'base' scenario")
        grid = data.get("grid", {})
        if not isinstance(grid, Mapping):
            raise ScenarioError("sweep 'grid' must be a mapping")
        return cls(
            base=ScenarioSpec.from_dict(data["base"]),
            grid={str(path): list(values) for path, values in grid.items()},
            vary_seed=bool(data.get("vary_seed", True)),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Sweep":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError(f"invalid sweep JSON: {error}") from None
        return cls.from_dict(data)


@dataclass
class SweepResult:
    """All point results of one sweep execution."""

    results: list[ScenarioResult]
    executor: str
    elapsed_seconds: float = field(default=0.0, compare=False)

    def __len__(self) -> int:
        return len(self.results)

    def to_dict(self) -> dict:
        return {
            "executor": self.executor,
            "elapsed_seconds": self.elapsed_seconds,
            "results": [result.to_dict() for result in self.results],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepResult":
        return cls(
            results=[ScenarioResult.from_dict(row) for row in data["results"]],
            executor=str(data.get("executor", "serial")),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Plain-text sweep table for the CLI."""
        from ..analysis.tables import render_table

        headers = ["point", "engine", "trials", "success", "mean rounds", "p90"]
        rows: list[list[object]] = []
        for result in self.results:
            rows.append(
                [
                    result.spec.label(),
                    result.engine,
                    result.success.trials,
                    result.success.rate,
                    result.rounds.mean if result.any_successes else float("nan"),
                    result.rounds.p90 if result.any_successes else float("nan"),
                ]
            )
        table = render_table(headers, rows, precision=3)
        return (
            f"sweep: {len(self.results)} point(s), executor={self.executor}, "
            f"wall {self.elapsed_seconds:.3f}s\n{table}"
        )


def _run_point_payload(spec_data: dict) -> dict:
    """Worker entry: spec dict in, result dict out (picklable both ways)."""
    return run_scenario(ScenarioSpec.from_dict(spec_data)).to_dict()


def _run_serial(
    points: Sequence[ScenarioSpec], max_workers: int | None
) -> list[ScenarioResult]:
    del max_workers
    return [run_scenario(point) for point in points]


def _pool_context():
    """Prefer fork where available: no re-import cost per worker."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _run_process_pool(
    points: Sequence[ScenarioSpec], max_workers: int | None
) -> list[ScenarioResult]:
    if max_workers is None:
        max_workers = min(len(points), multiprocessing.cpu_count())
    max_workers = max(1, max_workers)
    payloads = [point.to_dict() for point in points]
    with ProcessPoolExecutor(
        max_workers=max_workers, mp_context=_pool_context()
    ) as pool:
        result_dicts = list(pool.map(_run_point_payload, payloads))
    return [ScenarioResult.from_dict(data) for data in result_dicts]


def fusion_key(resolved: ResolvedScenario) -> tuple | None:
    """The compatibility class of a resolved point, or ``None``.

    Points sharing a key can be stacked into one engine run with
    bit-identical per-point results; ``None`` marks points the fused
    executor must run serially.  Three fusable shapes exist:

    * **schedule points** - uniform protocols routed to the batch
      schedule engine.  The stacked engine takes per-point schedules and
      size batches, so swept protocol parameters (``p``, prediction
      quality, window base) and workloads fuse freely; only the trial
      count, round budget and channel must agree (the engine advances
      one shared round loop over a rectangular trial block).
    * **history points** - uniform protocols routed to the batch history
      engine (feedback-driven, deterministic sessions: Willard, code
      search, phased search, history policies).  The stacked engine
      keeps per-point protocols and a shared history-trie arena, so
      protocol params, workloads, predictions and seeds all sweep
      freely; as for schedule points, only trials, round budget and
      channel must agree.  Points with equal
      :meth:`~repro.core.protocol.UniformProtocol.history_signature`\\ s
      additionally share one memoized trie inside the run.
    * **player points** - player protocols routed to the batch player
      engine whose sessions are randomness-free
      (:meth:`~repro.core.protocol.PlayerProtocol.supports_fused_sessions`).
      The whole group executes through *one* protocol object, so
      everything protocol construction consumes must match: the protocol
      spec, ``n``, and the prediction spec (no in-repo player protocol
      takes a prediction, but registration is open); adversary, advice
      quality and seed sweep freely - exactly the robustness-curve axis.

    The shared key includes the resolved channel *model* (the fault
    adversary), so points under different adversaries - or under an
    adversary and the faithful channel - are **never** stacked into one
    run: the fault state is per-engine-run, and mixing models would
    silently perturb the wrong points.  Models that opt out of stacking
    entirely (:attr:`~repro.channel.models.ChannelModel.fusable` is
    False - the adaptive adversaries, whose per-point state is kept
    solo so the "one adversary per execution" reading of a stress curve
    stays unambiguous) return ``None`` and run serially.  Player points
    additionally require a model that draws no per-round fault
    randomness (the stacked player engine runs without a generator);
    random models (noise, crash) return ``None`` and degrade to the
    serial path, with the point's recorded engine label saying so.
    """
    spec = resolved.spec
    model = resolved.channel.active_model
    if model is not None and not model.fusable:
        return None
    shared = (
        spec.trials,
        spec.max_rounds,
        spec.channel.collision_detection,
        json.dumps(model.to_dict(), sort_keys=True)
        if model is not None
        else None,
    )
    if resolved.engine == ENGINE_BATCH_SCHEDULE:
        return ("schedule",) + shared
    if resolved.engine == ENGINE_BATCH_HISTORY:
        return ("history",) + shared
    if (
        resolved.engine == ENGINE_BATCH_PLAYER
        and resolved.protocol.supports_fused_sessions()
        and (model is None or not model.needs_fault_draws)
    ):
        return (
            ("player",)
            + shared
            + (
                spec.n,
                json.dumps(spec.protocol.to_dict(), sort_keys=True),
                json.dumps(
                    spec.prediction.to_dict() if spec.prediction else None,
                    sort_keys=True,
                ),
            )
        )
    return None


def fusion_groups(
    resolved_points: Sequence[ResolvedScenario],
) -> list[list[int]]:
    """Partition point indices into stackable groups, in first-seen order.

    Unfusable points come back as singleton groups; fusable points group
    by :func:`fusion_key`.  Grouping never reorders results - indices map
    back into the sweep's point order.
    """
    groups: dict[object, list[int]] = {}
    order: list[list[int]] = []
    for index, resolved in enumerate(resolved_points):
        key = fusion_key(resolved)
        if key is None:
            order.append([index])
            continue
        if key not in groups:
            groups[key] = []
            order.append(groups[key])
        groups[key].append(index)
    return order


def _run_fused_group(
    members: Sequence[ResolvedScenario],
) -> list[ScenarioResult]:
    """Execute one compatibility group through the stacked engines."""
    first = members[0]
    spec = first.spec
    started = time.perf_counter()
    if first.kind == "player":
        estimates = estimate_player_rounds_many(
            first.protocol,
            [resolved.participant_source() for resolved in members],
            spec.n,
            [resolved.rng for resolved in members],
            channel=first.channel,
            advice_functions=[resolved.advice for resolved in members],
            trials=spec.trials,
            max_rounds=spec.max_rounds,
        )
        label = ENGINE_FUSED_PLAYER
    else:
        estimates = estimate_uniform_rounds_many(
            [resolved.protocol for resolved in members],
            [resolved.size_source for resolved in members],
            [resolved.rng for resolved in members],
            channel=first.channel,
            trials=spec.trials,
            max_rounds=spec.max_rounds,
        )
        label = (
            ENGINE_FUSED_HISTORY
            if first.engine == ENGINE_BATCH_HISTORY
            else ENGINE_FUSED_SCHEDULE
        )
    # One stacked run has no meaningful per-point wall clock; record the
    # group's amortized share so sweep totals still add up.
    share = (time.perf_counter() - started) / len(members)
    return [
        package_result(resolved, estimate, engine=label, elapsed_seconds=share)
        for resolved, estimate in zip(members, estimates)
    ]


def _run_fused(
    points: Sequence[ScenarioSpec], max_workers: int | None
) -> list[ScenarioResult]:
    """The fused executor: stack compatible points, serial-run the rest."""
    del max_workers
    resolved_points = [resolve_scenario(point) for point in points]
    results: list[ScenarioResult | None] = [None] * len(points)
    for group in fusion_groups(resolved_points):
        if len(group) == 1:
            # Nothing to amortize (or unfusable): the serial reference
            # run, which re-resolves from the spec - resolution consumes
            # no randomness, so the duplicate resolution is free of
            # stream effects.
            index = group[0]
            results[index] = run_scenario(points[index])
        else:
            for index, result in zip(
                group, _run_fused_group([resolved_points[i] for i in group])
            ):
                results[index] = result
    return results  # type: ignore[return-value]


Executor = Callable[[Sequence[ScenarioSpec], "int | None"], list[ScenarioResult]]

#: Executor name -> callable ``(points, max_workers) -> results``.
EXECUTORS: dict[str, Executor] = {
    "serial": _run_serial,
    "process": _run_process_pool,
    "fused": _run_fused,
}


def register_executor(name: str, executor: Executor) -> None:
    """Register a custom sweep executor (e.g. a cluster dispatcher)."""
    if name in EXECUTORS:
        raise ScenarioError(f"executor {name!r} already registered")
    EXECUTORS[name] = executor


def run_sweep(
    sweep: Sweep | Sequence[ScenarioSpec],
    *,
    executor: str = "serial",
    max_workers: int | None = None,
) -> SweepResult:
    """Execute a sweep (or an explicit point list) through an executor.

    Point results are returned in grid order regardless of executor;
    because every point is reproducible from its own spec, executors are
    interchangeable - asserting serial/process agreement is a test, not
    a hope.
    """
    points = sweep.points() if isinstance(sweep, Sweep) else list(sweep)
    if not points:
        raise ScenarioError("sweep expanded to zero points")
    try:
        run = EXECUTORS[executor]
    except KeyError:
        raise ScenarioError(
            f"unknown executor {executor!r}; known: {', '.join(sorted(EXECUTORS))}"
        ) from None
    started = time.perf_counter()
    results = run(points, max_workers)
    return SweepResult(
        results=results,
        executor=executor,
        elapsed_seconds=time.perf_counter() - started,
    )
