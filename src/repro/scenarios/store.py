"""Durable sweep execution: content-addressed results and checkpoint journals.

Two persistence layers that make dense sweep grids survivable:

* :class:`ResultStore` - a **content-addressed result cache**.  Every
  spec hashes to a canonical key (:func:`spec_key`: SHA-256 over the
  sorted, separator-canonical JSON of ``spec.to_dict()`` plus the store
  schema version), and results live under that key as JSON on disk with
  an in-memory LRU front.  Because the key is derived from the complete
  serialized spec, *any* field change - seed, trials, a protocol
  parameter, the channel model, an open spec's retry/admission policy -
  produces a different key, while a JSON round-trip of the same spec
  produces the same key.  Bumping :data:`SCHEMA_VERSION` changes every
  key, so entries written by an older format miss cleanly instead of
  deserializing garbage.

* :class:`SweepJournal` - a **checkpointing sweep journal**.  An
  append-only JSONL file recording each completed sweep point (or whole
  fused group) as one line, flushed and fsynced per append, so a sweep
  killed at point 900 of 1000 resumes from its journal and re-executes
  only the missing 100.  The header line pins the journal to one
  specific sweep (a hash over all point keys); replaying against a
  different grid fails loudly instead of silently mixing results.  A
  torn final line (the crash happened mid-write) is detected and
  dropped, which is exactly what makes a whole-group append atomic: the
  group either replays completely or not at all.

Both layers store *serialized results*, so a replayed or cache-hit point
is bit-identical to a fresh run of the same spec - including its engine
label, which records what actually executed the first time.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from .spec import ScenarioError

__all__ = [
    "SCHEMA_VERSION",
    "spec_key",
    "sweep_key",
    "StoreStats",
    "ResultStore",
    "SweepJournal",
]

#: Version of the on-disk entry format.  Part of every :func:`spec_key`,
#: so a format change invalidates the whole cache by construction - old
#: entries simply stop being addressable and miss cleanly.
SCHEMA_VERSION = 1


def _canonical_json(payload: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace, NaN rejected."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def spec_key(spec) -> str:
    """The content address of a scenario spec.

    Accepts both :class:`~repro.scenarios.spec.ScenarioSpec` and
    :class:`~repro.scenarios.open.OpenScenarioSpec` (the two are
    distinguished in the hashed payload, so a closed and an open spec
    can never collide).  The key is a SHA-256 hex digest over the
    canonical JSON of ``spec.to_dict()`` - since ``from_dict(to_dict())``
    is the identity for both spec families, serializing a spec to JSON
    and loading it back yields the same key, while changing any single
    field yields a different one.
    """
    # Open specs are duck-typed by their 'arrivals' slot so this module
    # needs no import of scenarios.open (which imports the opensys
    # stack); both spec families guarantee a JSON-native to_dict().
    kind = "open" if hasattr(spec, "arrivals") else "scenario"
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "spec": spec.to_dict(),
    }
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


def sweep_key(point_keys: Sequence[str]) -> str:
    """The identity of one expanded sweep: a hash over its point keys.

    Pins a journal to the exact grid that produced it - same base, same
    grid values, same expansion order.  Any change to any point (or to
    the point order) yields a different sweep key, and resuming refuses.
    """
    return hashlib.sha256(
        _canonical_json(list(point_keys)).encode("utf-8")
    ).hexdigest()


@dataclass
class StoreStats:
    """Hit/miss accounting for one :class:`ResultStore` instance."""

    hits: int = 0
    memory_hits: int = 0
    misses: int = 0
    puts: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "misses": self.misses,
            "puts": self.puts,
        }


class ResultStore:
    """Content-addressed scenario results: JSON on disk, LRU in memory.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk layer (created on first write).
        ``None`` keeps the store memory-only - useful for tests and for
        sharing results within one process without touching disk.
    memory_items:
        Capacity of the in-memory LRU front (0 disables it).

    Entries are written atomically (temp file + ``os.replace``) under
    ``<cache_dir>/<key[:2]>/<key>.json`` so a crash mid-write can never
    leave a half-written entry addressable.  Reads validate the entry's
    recorded schema and key; anything malformed, truncated or
    schema-stale is a clean miss.  Results handed out are the canonical
    deserialized objects; callers treat them as read-only, exactly like
    any other :class:`~repro.scenarios.runner.ScenarioResult`.
    """

    def __init__(
        self, cache_dir: str | os.PathLike | None = None, *, memory_items: int = 512
    ) -> None:
        if memory_items < 0:
            raise ScenarioError(
                f"memory_items must be >= 0, got {memory_items}"
            )
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.memory_items = memory_items
        self._memory: OrderedDict[str, object] = OrderedDict()
        self.stats = StoreStats()

    @classmethod
    def coerce(
        cls, cache: "ResultStore | str | os.PathLike | None"
    ) -> "ResultStore | None":
        """Accept a store instance, a cache directory path, or ``None``."""
        if cache is None or isinstance(cache, cls):
            return cache
        if isinstance(cache, (str, os.PathLike)):
            return cls(cache_dir=cache)
        raise ScenarioError(
            f"cache must be a ResultStore, a directory path or None, got "
            f"{type(cache).__name__}"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / key[:2] / f"{key}.json"

    def _remember(self, key: str, result: object) -> None:
        if self.memory_items == 0:
            return
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_items:
            self._memory.popitem(last=False)

    def _load_disk(self, key: str, result_from_dict: Callable) -> object | None:
        path = self._entry_path(key)
        if path is None or not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None  # truncated or unreadable: a clean miss
        if not isinstance(payload, Mapping):
            return None
        if payload.get("schema") != SCHEMA_VERSION or payload.get("key") != key:
            return None  # stale format (or a file moved under a wrong name)
        try:
            return result_from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def get(self, spec, *, key: str | None = None):
        """The stored result for ``spec``, or ``None`` on a miss."""
        if key is None:
            key = spec_key(spec)
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return self._memory[key]
        result_from_dict = _result_loader(spec)
        result = self._load_disk(key, result_from_dict)
        if result is None:
            self.stats.misses += 1
            return None
        self._remember(key, result)
        self.stats.hits += 1
        return result

    def put(self, spec, result, *, key: str | None = None) -> str:
        """Store ``result`` under ``spec``'s content address; returns the key."""
        if key is None:
            key = spec_key(spec)
        self._remember(key, result)
        self.stats.puts += 1
        path = self._entry_path(key)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = {
                "schema": SCHEMA_VERSION,
                "key": key,
                "result": result.to_dict(),
            }
            # Atomic publish: a reader either sees the whole entry or no
            # entry, never a torn write.
            handle, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(handle, "w") as stream:
                    json.dump(payload, stream)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        return key


def _result_loader(spec) -> Callable:
    """The matching ``from_dict`` for a spec's result type."""
    if hasattr(spec, "arrivals"):
        from .open import OpenScenarioResult

        return OpenScenarioResult.from_dict
    from .runner import ScenarioResult

    return ScenarioResult.from_dict


class SweepJournal:
    """Append-only checkpoint log for one sweep execution.

    Layout: JSON lines.  The first line is a header pinning the journal
    to a specific sweep; every following line is one atomic checkpoint
    holding one or more completed points (a fused group checkpoints as a
    single line, so the group replays all-or-nothing)::

        {"kind": "header", "schema": 1, "sweep": <sweep_key>, "points": N}
        {"kind": "checkpoint", "entries": [
            {"index": 3, "key": <spec_key>, "result": {...}}, ...]}

    Appends write one complete line, then flush + fsync, so a completed
    checkpoint survives the process dying immediately after.  A crash
    *during* the write leaves a torn final line, which replay detects
    and drops - the affected points simply re-execute.
    """

    SCHEMA = 1

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        sweep: str,
        points: int,
        point_keys: Sequence[str],
        result_from_dict: Callable,
    ) -> None:
        self.path = Path(path)
        self.sweep = sweep
        self.points = points
        self._point_keys = list(point_keys)
        self.replayed: dict[int, object] = {}
        existing = self._read_lines()
        if existing:
            self._replay(existing, result_from_dict)
            self._stream = open(self.path, "a")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, "w")
            self._write_line(
                {
                    "kind": "header",
                    "schema": self.SCHEMA,
                    "sweep": self.sweep,
                    "points": self.points,
                }
            )

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _read_lines(self) -> list[str]:
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return []
        return [line for line in text.splitlines() if line.strip()]

    def _replay(self, lines: list[str], result_from_dict: Callable) -> None:
        parsed: list[Mapping] = []
        for position, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if position == len(lines) - 1:
                    # Torn final line: the previous run died mid-append.
                    # Its points re-execute; everything before it stands.
                    continue
                raise ScenarioError(
                    f"journal {self.path} is corrupt at line {position + 1} "
                    "(not valid JSON and not the final line)"
                ) from None
            if not isinstance(record, Mapping):
                raise ScenarioError(
                    f"journal {self.path} line {position + 1} is not a mapping"
                )
            parsed.append(record)
        if not parsed:
            return
        header = parsed[0]
        if header.get("kind") != "header":
            raise ScenarioError(
                f"journal {self.path} has no header line; refusing to resume"
            )
        if header.get("schema") != self.SCHEMA:
            raise ScenarioError(
                f"journal {self.path} has schema {header.get('schema')!r}; "
                f"this build writes schema {self.SCHEMA} - delete the "
                "journal to start fresh"
            )
        if header.get("sweep") != self.sweep or header.get("points") != self.points:
            raise ScenarioError(
                f"journal {self.path} belongs to a different sweep "
                "(base spec, grid values or expansion order changed); "
                "delete it or pass a fresh journal path to start over"
            )
        for record in parsed[1:]:
            if record.get("kind") != "checkpoint":
                raise ScenarioError(
                    f"journal {self.path} contains an unknown record kind "
                    f"{record.get('kind')!r}"
                )
            for entry in record.get("entries", []):
                index = int(entry["index"])
                if not 0 <= index < self.points:
                    raise ScenarioError(
                        f"journal {self.path} references point {index}, "
                        f"outside this sweep's {self.points} point(s)"
                    )
                if entry.get("key") != self._point_keys[index]:
                    raise ScenarioError(
                        f"journal {self.path} entry for point {index} has a "
                        "mismatched spec key; the grid changed under the "
                        "journal - delete it to start over"
                    )
                self.replayed[index] = result_from_dict(entry["result"])

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------
    def _write_line(self, record: Mapping) -> None:
        self._stream.write(json.dumps(record) + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())

    def append(self, entries: Sequence[tuple[int, dict]]) -> None:
        """Atomically checkpoint completed points.

        ``entries`` is ``[(point_index, result_dict), ...]`` - one point
        from a serial executor, a whole group from the fused executor.
        The checkpoint is one journal line: it replays all-or-nothing.
        """
        if not entries:
            return
        self._write_line(
            {
                "kind": "checkpoint",
                "entries": [
                    {
                        "index": index,
                        "key": self._point_keys[index],
                        "result": result_dict,
                    }
                    for index, result_dict in entries
                ],
            }
        )

    def close(self) -> None:
        if not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
