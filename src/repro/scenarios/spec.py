"""Declarative, serializable scenario specifications.

A :class:`ScenarioSpec` is the complete, JSON-round-trippable description
of one simulation: which protocol (by registry id + parameters), which
channel, which workload, what prediction / advice quality, and the
trials / round-budget / seed knobs.  Resolving and executing a spec is
the runner's job (:mod:`repro.scenarios.runner`); this module is pure
data, so specs can be stored, diffed, swept over and shipped across
process boundaries.

Design rules:

* every field is a JSON-native value or a nested spec of JSON-native
  values - ``spec.from_json(spec.to_json())`` is the identity;
* a spec plus its ``seed`` fully determines the result: two processes
  loading the same JSON produce bit-identical
  :class:`~repro.scenarios.runner.ScenarioResult` tables;
* cross-field requirements (e.g. prediction protocols needing a
  prediction spec) are enforced at *resolution* time, keeping the data
  layer decoupled from the protocol registry.
"""

from __future__ import annotations

import copy
import json
from collections.abc import Mapping
from dataclasses import dataclass, field, fields
from typing import Any

__all__ = [
    "ScenarioError",
    "ProtocolSpec",
    "ChannelSpec",
    "WorkloadSpec",
    "PredictionSpec",
    "AdviceSpec",
    "ScenarioSpec",
]


class ScenarioError(ValueError):
    """Raised for malformed or unresolvable scenario specifications."""


def _require_mapping(data: object, what: str) -> dict:
    if not isinstance(data, Mapping):
        raise ScenarioError(f"{what} must be a mapping, got {type(data).__name__}")
    return dict(data)


def _check_known_keys(data: Mapping, allowed: set[str], what: str) -> None:
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ScenarioError(
            f"unknown {what} field(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


@dataclass(frozen=True)
class ProtocolSpec:
    """A protocol reference: registry id plus constructor parameters.

    ``params`` values must be JSON-native; wrapper protocols (restart,
    fallback, uniform-as-player) nest further protocol specs as plain
    ``{"id": ..., "params": {...}}`` mappings inside ``params``.
    """

    id: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.id:
            raise ScenarioError("protocol spec needs a non-empty id")

    def to_dict(self) -> dict:
        return {"id": self.id, "params": copy.deepcopy(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping | str) -> "ProtocolSpec":
        if isinstance(data, str):  # shorthand: bare id, no params
            return cls(id=data)
        data = _require_mapping(data, "protocol spec")
        _check_known_keys(data, {"id", "params"}, "protocol spec")
        return cls(
            id=str(data.get("id", "")),
            params=copy.deepcopy(_require_mapping(data.get("params", {}), "protocol params")),
        )


@dataclass(frozen=True)
class ChannelSpec:
    """The channel: with or without collision detection, plus faults.

    ``model`` is an optional fault-injecting channel-model spec, a
    JSON-native mapping ``{"name": <model>, "params": {...}}`` naming one
    of the models in :data:`repro.channel.models.CHANNEL_MODELS`
    (jamming adversaries, noisy feedback, player crashes).  ``None`` is
    the paper's faithful channel.  The mapping is validated eagerly at
    spec-construction time so malformed specs (negative budget, flip
    probability outside [0, 1], unknown model name) fail before any
    simulation runs.
    """

    collision_detection: bool
    model: dict | None = None

    def __post_init__(self) -> None:
        if self.model is not None:
            # Eager validation: build (and discard) the model so spec
            # errors surface at construction, with the scenario-layer
            # error type.
            from ..channel.models import channel_model_from_dict

            try:
                channel_model_from_dict(self.model)
            except ValueError as exc:
                raise ScenarioError(f"channel model spec: {exc}") from exc

    @property
    def kind(self) -> str:
        return "CD" if self.collision_detection else "no-CD"

    def build_model(self):
        """The resolved :class:`~repro.channel.models.ChannelModel` or None."""
        if self.model is None:
            return None
        from ..channel.models import channel_model_from_dict

        return channel_model_from_dict(self.model)

    def to_dict(self) -> dict:
        data: dict = {"collision_detection": self.collision_detection}
        if self.model is not None:
            data["model"] = copy.deepcopy(self.model)
        return data

    @classmethod
    def from_dict(cls, data: Mapping | str) -> "ChannelSpec":
        if isinstance(data, str):  # shorthand: "cd" / "nocd"
            label = data.lower().replace("-", "").replace("_", "")
            if label == "cd":
                return cls(collision_detection=True)
            if label in ("nocd", "noncd"):
                return cls(collision_detection=False)
            raise ScenarioError(f"unknown channel shorthand {data!r}")
        data = _require_mapping(data, "channel spec")
        _check_known_keys(data, {"collision_detection", "model"}, "channel spec")
        if "collision_detection" not in data:
            raise ScenarioError("channel spec needs 'collision_detection'")
        model = data.get("model")
        if model is not None:
            model = copy.deepcopy(_require_mapping(model, "channel model spec"))
        return cls(
            collision_detection=bool(data["collision_detection"]),
            model=model,
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """How per-trial participant counts are produced.

    Kinds (resolved by :mod:`repro.scenarios.workloads`):

    * ``"fixed"`` - params ``{"k": int}``: every trial has exactly ``k``
      participants (the Section 3 setting);
    * ``"distribution"`` - params ``{"family": <name>, ...}``: an i.i.d.
      draw per trial from a :class:`SizeDistribution` constructor family
      (the Section 2.2 setting);
    * ``"bursty"`` - Markov-modulated burst arrivals
      (:class:`~repro.channel.arrivals.MarkovBurstArrivals` params);
    * ``"trace"`` - params ``{"ks": [int, ...]}``: replay an explicit
      count sequence;
    * ``"poisson"`` / ``"zipf-hotspot"`` - the open-system arrival
      families (:mod:`repro.opensys.arrivals` params) doubling as
      batch-size sources, clamped into the valid contender range.
    """

    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind:
            raise ScenarioError("workload spec needs a non-empty kind")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": copy.deepcopy(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorkloadSpec":
        data = _require_mapping(data, "workload spec")
        _check_known_keys(data, {"kind", "params"}, "workload spec")
        return cls(
            kind=str(data.get("kind", "")),
            params=copy.deepcopy(_require_mapping(data.get("params", {}), "workload params")),
        )


@dataclass(frozen=True)
class PredictionSpec:
    """Where a prediction protocol's predicted distribution ``Y`` comes from.

    ``source="truth"`` hands the protocol the workload's own distribution
    (the clairvoyant ``Y = X`` of Corollaries 2.15/2.18; requires a
    ``distribution`` workload).  ``source="distribution"`` supplies an
    explicit distribution family - divergence between it and the workload
    is the prediction-quality dial of Theorems 2.12/2.16.
    """

    source: str = "truth"
    params: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"source": self.source, "params": copy.deepcopy(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping | str) -> "PredictionSpec":
        if isinstance(data, str):  # shorthand: "truth"
            return cls(source=data)
        data = _require_mapping(data, "prediction spec")
        _check_known_keys(data, {"source", "params"}, "prediction spec")
        return cls(
            source=str(data.get("source", "truth")),
            params=copy.deepcopy(_require_mapping(data.get("params", {}), "prediction params")),
        )


@dataclass(frozen=True)
class AdviceSpec:
    """Advice function (and optional corruption) for player protocols.

    ``function`` is one of ``"null"``, ``"min-id-prefix"``,
    ``"range-block"``, ``"full-id"``; ``bits`` is the advice budget ``b``
    (ignored by ``full-id``, which always uses the full id width).
    ``corruption`` models faulty advice:
    ``{"model": "bit-flip", "probability": p}`` or
    ``{"model": "adversarial", "probability": p}``.
    """

    function: str
    bits: int = 0
    corruption: dict | None = None

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise ScenarioError(f"advice bits must be >= 0, got {self.bits}")

    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "bits": self.bits,
            "corruption": copy.deepcopy(self.corruption),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AdviceSpec":
        data = _require_mapping(data, "advice spec")
        _check_known_keys(data, {"function", "bits", "corruption"}, "advice spec")
        corruption = data.get("corruption")
        return cls(
            function=str(data.get("function", "null")),
            bits=int(data.get("bits", 0)),
            corruption=(
                copy.deepcopy(_require_mapping(corruption, "advice corruption"))
                if corruption is not None
                else None
            ),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete simulation scenario, ready to serialize or run.

    Attributes
    ----------
    protocol:
        Registry reference of the protocol under test.
    workload:
        Participant-count process.
    channel:
        Collision-detection capability.
    n:
        Maximum network size (board size for distributions, id space for
        player protocols).
    trials:
        Monte Carlo trials.
    max_rounds:
        Round budget per trial.
    seed:
        Root RNG seed - a spec plus its seed fully determines the result.
    batch:
        Engine selection forwarded to the estimators: ``None`` auto-routes
        to the fastest capable engine, ``False`` forces the scalar
        reference loop, ``True`` insists on a batch engine.
    prediction:
        Predicted-distribution source for prediction protocols
        (sorted probing / code search); ``None`` otherwise.
    advice:
        Advice function for player protocols; ``None`` otherwise.
    adversary:
        Participant-set strategy for player protocols (a
        :mod:`repro.channel.network` adversary name; default random).
    name:
        Free-form label carried into results and sweep tables.
    """

    protocol: ProtocolSpec
    workload: WorkloadSpec
    channel: ChannelSpec
    n: int
    trials: int
    max_rounds: int
    seed: int = 2021
    batch: bool | None = None
    prediction: PredictionSpec | None = None
    advice: AdviceSpec | None = None
    adversary: str = "random"
    name: str = ""

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ScenarioError(f"n must be >= 2, got {self.n}")
        if self.trials < 1:
            raise ScenarioError(f"trials must be >= 1, got {self.trials}")
        if self.max_rounds < 1:
            raise ScenarioError(f"max_rounds must be >= 1, got {self.max_rounds}")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-native dict; ``from_dict`` inverts it exactly."""
        return {
            "protocol": self.protocol.to_dict(),
            "workload": self.workload.to_dict(),
            "channel": self.channel.to_dict(),
            "n": self.n,
            "trials": self.trials,
            "max_rounds": self.max_rounds,
            "seed": self.seed,
            "batch": self.batch,
            "prediction": self.prediction.to_dict() if self.prediction else None,
            "advice": self.advice.to_dict() if self.advice else None,
            "adversary": self.adversary,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        data = _require_mapping(data, "scenario spec")
        allowed = {f.name for f in fields(cls)}
        _check_known_keys(data, allowed, "scenario spec")
        for required in ("protocol", "workload", "channel", "n", "trials", "max_rounds"):
            if required not in data:
                raise ScenarioError(f"scenario spec needs {required!r}")
        batch = data.get("batch")
        if batch is not None:
            batch = bool(batch)
        prediction = data.get("prediction")
        advice = data.get("advice")
        return cls(
            protocol=ProtocolSpec.from_dict(data["protocol"]),
            workload=WorkloadSpec.from_dict(data["workload"]),
            channel=ChannelSpec.from_dict(data["channel"]),
            n=int(data["n"]),
            trials=int(data["trials"]),
            max_rounds=int(data["max_rounds"]),
            seed=int(data.get("seed", 2021)),
            batch=batch,
            prediction=(
                PredictionSpec.from_dict(prediction) if prediction is not None else None
            ),
            advice=AdviceSpec.from_dict(advice) if advice is not None else None,
            adversary=str(data.get("adversary", "random")),
            name=str(data.get("name", "")),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError(f"invalid scenario JSON: {error}") from None
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def override(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """A new spec with dotted-path fields replaced.

        Keys are dotted paths into :meth:`to_dict` - e.g. ``"trials"``,
        ``"workload.params.k"``, ``"protocol.params.one_shot"`` - and the
        whole dict is re-validated through :meth:`from_dict`, so an
        override can never produce a spec that would not load from JSON.
        Intermediate mappings are created as needed (overriding
        ``"prediction.source"`` on a spec without a prediction starts one
        from an empty mapping).
        """
        data = self.to_dict()
        for path, value in overrides.items():
            parts = path.split(".")
            node = data
            for part in parts[:-1]:
                child = node.get(part)
                if not isinstance(child, dict):
                    child = {}
                    node[part] = child
                node = child
            node[parts[-1]] = copy.deepcopy(value)
        return type(self).from_dict(data)

    def label(self) -> str:
        """Short human-readable identity for tables and progress lines."""
        return self.name or f"{self.protocol.id}/{self.workload.kind}"
