"""Declarative scenario API: specs, protocol registry, runner and sweeps.

The single configuration-driven entry point into the simulation stack:

* :mod:`~repro.scenarios.spec` - serializable scenario descriptions
  (:class:`ScenarioSpec` and its protocol / channel / workload /
  prediction / advice sub-specs);
* :mod:`~repro.scenarios.registry` - string id -> constructor for every
  protocol in :mod:`repro.protocols`;
* :mod:`~repro.scenarios.workloads` - workload resolution, including the
  :class:`SizeDistribution` families and the bursty arrival model;
* :mod:`~repro.scenarios.runner` - :func:`run_scenario`, which
  auto-routes to the batch-schedule / batch-history / scalar /
  per-player engine and returns a JSON-round-trippable
  :class:`ScenarioResult`;
* :mod:`~repro.scenarios.sweep` - grid expansion plus serial,
  process-pool (multi-core) and fused (stacked single-core) executors;
  the fused executor stacks compatible schedule, history (CD) and
  player points into one engine run each;
* :mod:`~repro.scenarios.store` - the durability layer: a
  content-addressed result store (:class:`ResultStore`) and the
  checkpointing :class:`SweepJournal` behind
  ``run_sweep(..., resume=..., cache=...)``;
* :mod:`~repro.scenarios.supervised` - the ``"supervised"`` executor:
  per-point timeouts, bounded retry with backoff, and a structured
  failure manifest instead of a raised traceback;
* :mod:`~repro.scenarios.faults` - deterministic crash/hang/corrupt
  injection (:class:`FaultPlan`) so the recovery paths stay tested;
* :mod:`~repro.scenarios.open` - open-system scenarios over streaming
  arrivals (:class:`OpenScenarioSpec`, :func:`run_open_scenario`) and
  the load -> latency sweep family (:class:`OpenSweep`,
  :func:`run_open_sweep`).

Quick start::

    from repro.scenarios import ScenarioSpec, run_scenario

    spec = ScenarioSpec.from_dict({
        "name": "sorted-probing vs a 2-bit workload",
        "protocol": {"id": "sorted-probing", "params": {"one_shot": False}},
        "prediction": "truth",
        "workload": {"kind": "distribution",
                     "params": {"family": "range_uniform_subset",
                                "ranges": [3, 6, 9, 12]}},
        "channel": "nocd",
        "n": 2**16, "trials": 2000, "max_rounds": 1024, "seed": 2021,
    })
    result = run_scenario(spec)
    print(result.render())
"""

from .registry import (
    BuildContext,
    RegisteredProtocol,
    build_protocol,
    get_protocol,
    protocol_ids,
    register_protocol,
)
from .runner import ADVERSARIES, ScenarioResult, run_scenario
from .spec import (
    AdviceSpec,
    ChannelSpec,
    PredictionSpec,
    ProtocolSpec,
    ScenarioError,
    ScenarioSpec,
    WorkloadSpec,
)
from .sweep import (
    EXECUTORS,
    Sweep,
    SweepPointError,
    SweepResult,
    derive_point_seeds,
    fusion_groups,
    fusion_key,
    register_executor,
    run_sweep,
    unregister_executor,
)
from .store import (
    SCHEMA_VERSION,
    ResultStore,
    SweepJournal,
    spec_key,
    sweep_key,
)
from .faults import FaultPlan, SimulatedCrash, fault_plan_from_json
from .supervised import make_supervised_executor
from .examples import (
    EXAMPLE_ADVERSARY_SWEEP,
    EXAMPLE_CD_SWEEP,
    EXAMPLE_FAULT_PLAN,
    EXAMPLE_OPEN_RETRY_SWEEP,
    EXAMPLE_OPEN_SCENARIO,
    EXAMPLE_OPEN_SWEEP,
)
from .open import (
    AdmissionSpec,
    ArrivalSpec,
    OpenScenarioResult,
    OpenScenarioSpec,
    RetrySpec,
    OpenSweep,
    OpenSweepResult,
    resolve_open_scenario,
    run_open_scenario,
    run_open_sweep,
)
from .workloads import (
    DISTRIBUTION_FAMILIES,
    register_distribution_family,
    resolve_distribution,
    resolve_workload,
)

__all__ = [
    # specs
    "ScenarioSpec",
    "ProtocolSpec",
    "ChannelSpec",
    "WorkloadSpec",
    "PredictionSpec",
    "AdviceSpec",
    "ScenarioError",
    # registry
    "RegisteredProtocol",
    "BuildContext",
    "register_protocol",
    "get_protocol",
    "protocol_ids",
    "build_protocol",
    # workloads
    "DISTRIBUTION_FAMILIES",
    "register_distribution_family",
    "resolve_distribution",
    "resolve_workload",
    # runner
    "run_scenario",
    "ScenarioResult",
    "ADVERSARIES",
    # sweeps
    "Sweep",
    "SweepResult",
    "SweepPointError",
    "run_sweep",
    "derive_point_seeds",
    "fusion_key",
    "fusion_groups",
    "EXECUTORS",
    "register_executor",
    "unregister_executor",
    # durability
    "SCHEMA_VERSION",
    "spec_key",
    "sweep_key",
    "ResultStore",
    "SweepJournal",
    # supervision and fault injection
    "make_supervised_executor",
    "FaultPlan",
    "SimulatedCrash",
    "fault_plan_from_json",
    # open system
    "ArrivalSpec",
    "RetrySpec",
    "AdmissionSpec",
    "OpenScenarioSpec",
    "OpenScenarioResult",
    "resolve_open_scenario",
    "run_open_scenario",
    "OpenSweep",
    "OpenSweepResult",
    "run_open_sweep",
    # example payloads
    "EXAMPLE_CD_SWEEP",
    "EXAMPLE_ADVERSARY_SWEEP",
    "EXAMPLE_FAULT_PLAN",
    "EXAMPLE_OPEN_SCENARIO",
    "EXAMPLE_OPEN_SWEEP",
    "EXAMPLE_OPEN_RETRY_SWEEP",
]
