"""The protocol registry: string id -> constructor, for every protocol.

Scenario specs reference protocols by id; this registry maps each id to a
builder that constructs the protocol from JSON-native parameters plus a
:class:`BuildContext` (the scenario's ``n`` and resolved
:class:`~repro.core.predictions.Prediction`).  Every protocol class in
:mod:`repro.protocols` is registered - baselines, the paper's prediction
and advice algorithms, and the wrapper/combinator protocols, which nest
further protocol specs inside their parameters (e.g. a fallback player
protocol naming its primary and fallback halves declaratively).

Builders validate their parameters strictly: unknown keys raise
:class:`~repro.scenarios.spec.ScenarioError` instead of being silently
dropped, so spec typos fail loudly at resolution time.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from ..core.predictions import Prediction
from ..core.protocol import PlayerProtocol, UniformProtocol
from ..protocols.advice_deterministic import (
    DeterministicScanProtocol,
    DeterministicTreeDescentProtocol,
)
from ..protocols.advice_randomized import (
    TruncatedDecayProtocol,
    block_index_for,
    truncated_willard_protocol,
)
from ..protocols.adapters import UniformAsPlayerProtocol
from ..protocols.backoff import BinaryExponentialBackoff
from ..protocols.code_search import CodeSearchProtocol
from ..protocols.decay import DecayProtocol
from ..protocols.fixed_probability import FixedProbabilityProtocol
from ..protocols.jiang_zheng import JiangZhengProtocol
from ..protocols.restart import FallbackPlayerProtocol, RestartProtocol
from ..protocols.searching import PhasedSearchProtocol
from ..protocols.sorted_probing import SortedProbingProtocol
from ..protocols.willard import WillardProtocol
from .spec import ProtocolSpec, ScenarioError

__all__ = [
    "UNIFORM",
    "PLAYER",
    "RegisteredProtocol",
    "BuildContext",
    "register_protocol",
    "get_protocol",
    "protocol_ids",
    "build_protocol",
]

UNIFORM = "uniform"
PLAYER = "player"

Builder = Callable[["BuildContext", dict], UniformProtocol | PlayerProtocol]


@dataclass(frozen=True)
class RegisteredProtocol:
    """One registry entry: id, engine family and builder."""

    id: str
    kind: str  # UNIFORM or PLAYER
    description: str
    builder: Builder


_REGISTRY: dict[str, RegisteredProtocol] = {}


def register_protocol(
    protocol_id: str, kind: str, description: str
) -> Callable[[Builder], Builder]:
    """Decorator registering a builder under ``protocol_id``."""
    if kind not in (UNIFORM, PLAYER):
        raise ValueError(f"kind must be {UNIFORM!r} or {PLAYER!r}, got {kind!r}")

    def decorate(builder: Builder) -> Builder:
        if protocol_id in _REGISTRY:
            raise ValueError(f"protocol id {protocol_id!r} already registered")
        _REGISTRY[protocol_id] = RegisteredProtocol(
            id=protocol_id, kind=kind, description=description, builder=builder
        )
        return builder

    return decorate


def get_protocol(protocol_id: str) -> RegisteredProtocol:
    """The registry entry for ``protocol_id`` (with options on miss)."""
    try:
        return _REGISTRY[protocol_id]
    except KeyError:
        raise ScenarioError(
            f"unknown protocol id {protocol_id!r}; known ids: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def protocol_ids() -> list[str]:
    """All registered protocol ids, sorted."""
    return sorted(_REGISTRY)


@dataclass
class BuildContext:
    """What builders may depend on besides their own parameters."""

    n: int
    prediction: Prediction | None = None
    _stack: list[str] = field(default_factory=list)

    def require_prediction(self, protocol_id: str) -> Prediction:
        if self.prediction is None:
            raise ScenarioError(
                f"protocol {protocol_id!r} needs a prediction spec "
                "(set 'prediction' on the scenario)"
            )
        return self.prediction

    def build(self, spec_like: ProtocolSpec | Mapping | str):
        """Resolve a nested protocol spec (wrapper parameters)."""
        spec = (
            spec_like
            if isinstance(spec_like, ProtocolSpec)
            else ProtocolSpec.from_dict(spec_like)
        )
        if spec.id in self._stack:
            raise ScenarioError(
                f"recursive protocol nesting: {' -> '.join(self._stack + [spec.id])}"
            )
        entry = get_protocol(spec.id)
        self._stack.append(spec.id)
        try:
            return entry.builder(self, dict(spec.params))
        except ScenarioError:
            raise
        except (TypeError, ValueError) as error:
            # Constructor validation (bad values, not just bad names) also
            # surfaces as a spec error with the protocol's identity attached.
            raise ScenarioError(
                f"invalid parameters for protocol {spec.id!r}: {error}"
            ) from None
        finally:
            self._stack.pop()

    def build_uniform(self, spec_like, *, wrapper: str) -> UniformProtocol:
        protocol = self.build(spec_like)
        if not isinstance(protocol, UniformProtocol):
            raise ScenarioError(
                f"{wrapper} needs a uniform inner protocol, got "
                f"{type(protocol).__name__}"
            )
        return protocol

    def build_player(self, spec_like, *, wrapper: str) -> PlayerProtocol:
        protocol = self.build(spec_like)
        if not isinstance(protocol, PlayerProtocol):
            raise ScenarioError(
                f"{wrapper} needs a player inner protocol, got "
                f"{type(protocol).__name__}"
            )
        return protocol


def build_protocol(
    spec: ProtocolSpec, context: BuildContext
) -> UniformProtocol | PlayerProtocol:
    """Construct the protocol a spec references, via the registry."""
    return context.build(spec)


# ----------------------------------------------------------------------
# Builder helpers
# ----------------------------------------------------------------------
_MISSING = object()


def _take(params: dict, name: str, default=_MISSING):
    if name in params:
        return params.pop(name)
    if default is _MISSING:
        raise ScenarioError(f"protocol params missing required {name!r}")
    return default


def _done(params: dict, protocol_id: str) -> None:
    if params:
        raise ScenarioError(
            f"unknown parameter(s) for protocol {protocol_id!r}: "
            f"{', '.join(sorted(params))}"
        )


def _block_index(context: BuildContext, params: dict, protocol_id: str, bits: int) -> int:
    """Advised-block selection: explicit ``block_index`` or perfect-advice ``k``."""
    block_index = _take(params, "block_index", None)
    k = _take(params, "k", None)
    if (block_index is None) == (k is None):
        raise ScenarioError(
            f"protocol {protocol_id!r} needs exactly one of 'block_index' "
            "(explicit) or 'k' (the count a perfect advice function sees)"
        )
    if block_index is not None:
        return int(block_index)
    return block_index_for(context.n, bits, int(k))


# ----------------------------------------------------------------------
# Uniform protocols
# ----------------------------------------------------------------------
@register_protocol("decay", UNIFORM, "cycling decay baseline, O(log n) no-CD [2]")
def _build_decay(context: BuildContext, params: dict) -> DecayProtocol:
    protocol = DecayProtocol(
        int(_take(params, "n", context.n)),
        cycle=bool(_take(params, "cycle", True)),
        handle_k1=bool(_take(params, "handle_k1", False)),
    )
    _done(params, "decay")
    return protocol


@register_protocol(
    "jiang-zheng", UNIFORM, "robust no-CD sawtooth baseline (Jiang-Zheng 2021)"
)
def _build_jiang_zheng(context: BuildContext, params: dict) -> JiangZhengProtocol:
    protocol = JiangZhengProtocol(
        int(_take(params, "n", context.n)),
        cycle=bool(_take(params, "cycle", True)),
    )
    _done(params, "jiang-zheng")
    return protocol


@register_protocol("willard", UNIFORM, "Willard CD binary search, O(log log n) [22]")
def _build_willard(context: BuildContext, params: dict) -> WillardProtocol:
    ranges = _take(params, "ranges", None)
    protocol = WillardProtocol(
        int(_take(params, "n", context.n)),
        ranges=list(ranges) if ranges is not None else None,
        repetitions=int(_take(params, "repetitions", 3)),
        restart=bool(_take(params, "restart", True)),
        handle_k1=bool(_take(params, "handle_k1", False)),
    )
    _done(params, "willard")
    return protocol


@register_protocol(
    "fixed-probability", UNIFORM, "transmit with 1/k_hat, the perfect-estimate O(1) anchor"
)
def _build_fixed(context: BuildContext, params: dict) -> FixedProbabilityProtocol:
    protocol = FixedProbabilityProtocol(float(_take(params, "k_hat")))
    _done(params, "fixed-probability")
    return protocol


@register_protocol(
    "sorted-probing", UNIFORM, "no-CD prediction algorithm of Thm 2.12 (Section 2.5)"
)
def _build_sorted_probing(context: BuildContext, params: dict) -> SortedProbingProtocol:
    protocol = SortedProbingProtocol(
        context.require_prediction("sorted-probing"),
        one_shot=bool(_take(params, "one_shot", True)),
        handle_k1=bool(_take(params, "handle_k1", False)),
        support_only=bool(_take(params, "support_only", False)),
    )
    _done(params, "sorted-probing")
    return protocol


@register_protocol(
    "code-search", UNIFORM, "CD prediction algorithm of Thm 2.16 (Section 2.6)"
)
def _build_code_search(context: BuildContext, params: dict) -> CodeSearchProtocol:
    protocol = CodeSearchProtocol(
        context.require_prediction("code-search"),
        repetitions=int(_take(params, "repetitions", 3)),
        one_shot=bool(_take(params, "one_shot", True)),
        handle_k1=bool(_take(params, "handle_k1", False)),
        support_only=bool(_take(params, "support_only", False)),
    )
    _done(params, "code-search")
    return protocol


@register_protocol(
    "phased-search", UNIFORM, "generic CD phase search over explicit range phases"
)
def _build_phased_search(context: BuildContext, params: dict) -> PhasedSearchProtocol:
    phases = _take(params, "phases")
    protocol = PhasedSearchProtocol(
        [list(phase) for phase in phases],
        repetitions=int(_take(params, "repetitions", 3)),
        restart=bool(_take(params, "restart", True)),
        handle_k1=bool(_take(params, "handle_k1", False)),
    )
    _done(params, "phased-search")
    return protocol


@register_protocol(
    "truncated-decay", UNIFORM, "decay on the advised range block (Thm 3.6)"
)
def _build_truncated_decay(context: BuildContext, params: dict) -> TruncatedDecayProtocol:
    bits = int(_take(params, "advice_bits"))
    block = _block_index(context, params, "truncated-decay", bits)
    protocol = TruncatedDecayProtocol(
        context.n,
        bits,
        block,
        cycle=bool(_take(params, "cycle", True)),
        handle_k1=bool(_take(params, "handle_k1", False)),
    )
    _done(params, "truncated-decay")
    return protocol


@register_protocol(
    "truncated-willard", UNIFORM, "Willard search on the advised block (Thm 3.7)"
)
def _build_truncated_willard(context: BuildContext, params: dict) -> WillardProtocol:
    bits = int(_take(params, "advice_bits"))
    block = _block_index(context, params, "truncated-willard", bits)
    protocol = truncated_willard_protocol(
        context.n,
        bits,
        block,
        repetitions=int(_take(params, "repetitions", 3)),
        restart=bool(_take(params, "restart", True)),
        handle_k1=bool(_take(params, "handle_k1", False)),
    )
    _done(params, "truncated-willard")
    return protocol


@register_protocol(
    "restart", UNIFORM, "re-run a one-shot uniform protocol until stopped"
)
def _build_restart(context: BuildContext, params: dict) -> RestartProtocol:
    inner = context.build_uniform(_take(params, "inner"), wrapper="restart")
    _done(params, "restart")
    return RestartProtocol(inner)


# ----------------------------------------------------------------------
# Player protocols
# ----------------------------------------------------------------------
@register_protocol(
    "backoff", PLAYER, "binary exponential backoff, the practical CD comparator"
)
def _build_backoff(context: BuildContext, params: dict) -> BinaryExponentialBackoff:
    protocol = BinaryExponentialBackoff(
        initial_window=float(_take(params, "initial_window", 2.0)),
        max_window=float(_take(params, "max_window", float(2**20))),
    )
    _done(params, "backoff")
    return protocol


@register_protocol(
    "deterministic-scan", PLAYER, "no-CD candidate scan on advised subtree (Sec 3.2)"
)
def _build_scan(context: BuildContext, params: dict) -> DeterministicScanProtocol:
    protocol = DeterministicScanProtocol(int(_take(params, "advice_bits")))
    _done(params, "deterministic-scan")
    return protocol


@register_protocol(
    "tree-descent", PLAYER, "CD tree descent with collision votes (Sec 3.2)"
)
def _build_descent(context: BuildContext, params: dict) -> DeterministicTreeDescentProtocol:
    protocol = DeterministicTreeDescentProtocol(int(_take(params, "advice_bits")))
    _done(params, "tree-descent")
    return protocol


@register_protocol(
    "uniform-as-player", PLAYER, "per-player view of a uniform protocol"
)
def _build_uniform_as_player(
    context: BuildContext, params: dict
) -> UniformAsPlayerProtocol:
    inner = context.build_uniform(_take(params, "inner"), wrapper="uniform-as-player")
    _done(params, "uniform-as-player")
    return UniformAsPlayerProtocol(inner)


@register_protocol(
    "fallback", PLAYER, "primary player protocol with a budgeted fallback switch"
)
def _build_fallback(context: BuildContext, params: dict) -> FallbackPlayerProtocol:
    primary = context.build_player(_take(params, "primary"), wrapper="fallback")
    fallback = context.build_player(_take(params, "fallback"), wrapper="fallback")
    budget = _take(params, "budget_rounds", "worst-case")
    _done(params, "fallback")
    if budget == "worst-case":
        worst_case = getattr(primary, "worst_case_rounds", None)
        if worst_case is None:
            raise ScenarioError(
                "budget_rounds='worst-case' needs a primary protocol with a "
                f"worst_case_rounds(n) bound; {primary.name!r} has none"
            )
        budget = worst_case(context.n)
    return FallbackPlayerProtocol(primary, fallback, int(budget))
