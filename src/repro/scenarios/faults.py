"""Crash injection for the sweep execution layer.

The execution-layer counterpart of :mod:`repro.channel.models`: where a
channel model deterministically perturbs *feedback* so the engines'
fault paths are testable, a :class:`FaultPlan` deterministically kills,
hangs or corrupts *workers* (and the sweep driver itself) at scripted
points, so the recovery paths - supervised retry, journal resume, the
failure manifest - are tested the same way jammed channels are.

Worker faults (``crash`` / ``hang`` / ``corrupt``) are honored by the
supervised executor, which owns worker processes and can observe a death
or a deadline; the built-in serial/process/fused executors have no
supervision to exercise, so handing them a plan with worker faults is an
error rather than a silent no-op.  The driver fault
(``crash_driver_after``) is honored by :func:`~repro.scenarios.sweep.run_sweep`
itself for every executor: after the configured number of points has
been checkpointed, the driver raises :class:`SimulatedCrash` - exactly
the "kill -9 between points" a resume test needs, with the journal left
in the state a real crash would leave it.

Plans are JSON-round-trippable so the CLI can inject faults
(``repro scenario sweep --inject-faults``) and CI can script a
crash-and-resume smoke without writing Python.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from .spec import ScenarioError

__all__ = [
    "SimulatedCrash",
    "FaultPlan",
    "fault_plan_from_json",
]


class SimulatedCrash(RuntimeError):
    """Raised by the driver-crash fault to simulate the process dying.

    Deliberately *not* a :class:`~repro.scenarios.spec.ScenarioError`:
    nothing in the sweep layer catches it, so it unwinds through
    ``run_sweep`` exactly like a SIGKILL would end the process - with
    the journal holding every checkpoint that completed before it.
    """


def _fault_map(data: object, what: str) -> dict[int, int]:
    if not isinstance(data, Mapping):
        raise ScenarioError(f"fault plan {what!r} must be a mapping")
    plan: dict[int, int] = {}
    for raw_index, raw_count in data.items():
        try:
            index, count = int(raw_index), int(raw_count)
        except (TypeError, ValueError):
            raise ScenarioError(
                f"fault plan {what!r} needs integer point indices and "
                f"attempt counts, got {raw_index!r}: {raw_count!r}"
            ) from None
        if index < 0 or count < 0:
            raise ScenarioError(
                f"fault plan {what!r} indices and counts must be >= 0, "
                f"got {index}: {count}"
            )
        if count:
            plan[index] = count
    return plan


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic, scripted faults for one sweep execution.

    ``crash`` / ``hang`` / ``corrupt`` map a point index to the number
    of attempts that suffer that fault; a point's attempts consume its
    faults in that order (first the crashes, then the hangs, then the
    corruptions) and succeed afterwards.  A count above the supervised
    executor's retry budget therefore exhausts the point into the
    failure manifest; a count at or below it exercises recovery.

    ``crash_driver_after`` kills the *sweep driver* (raising
    :class:`SimulatedCrash`) once that many points have been
    checkpointed this run - ``0`` crashes before any point executes.
    ``hang_seconds`` is how long a hung worker sleeps; tests pair it
    with a short supervised timeout.
    """

    crash: dict = field(default_factory=dict)
    hang: dict = field(default_factory=dict)
    corrupt: dict = field(default_factory=dict)
    crash_driver_after: int | None = None
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "crash", _fault_map(self.crash, "crash"))
        object.__setattr__(self, "hang", _fault_map(self.hang, "hang"))
        object.__setattr__(self, "corrupt", _fault_map(self.corrupt, "corrupt"))
        if self.crash_driver_after is not None and self.crash_driver_after < 0:
            raise ScenarioError(
                f"crash_driver_after must be >= 0 or None, got "
                f"{self.crash_driver_after}"
            )
        if self.hang_seconds <= 0:
            raise ScenarioError(
                f"hang_seconds must be > 0, got {self.hang_seconds}"
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def directive(self, index: int, attempt: int) -> str | None:
        """The fault a point's ``attempt`` (0-based) suffers, or ``None``."""
        crashes = self.crash.get(index, 0)
        hangs = self.hang.get(index, 0)
        corruptions = self.corrupt.get(index, 0)
        if attempt < crashes:
            return "crash"
        if attempt < crashes + hangs:
            return "hang"
        if attempt < crashes + hangs + corruptions:
            return "corrupt"
        return None

    def has_worker_faults(self) -> bool:
        """Whether any point-level (worker) fault is scripted."""
        return bool(self.crash or self.hang or self.corrupt)

    def remap(self, indices: Sequence[int]) -> "FaultPlan":
        """The plan's worker faults re-indexed onto a point subset.

        ``indices[i]`` is the global grid index the executor's local
        point ``i`` corresponds to; driver faults stay with the driver
        and are dropped here.
        """
        positions = {global_index: i for i, global_index in enumerate(indices)}

        def narrowed(plan: Mapping[int, int]) -> dict[int, int]:
            return {
                positions[gi]: count
                for gi, count in plan.items()
                if gi in positions
            }

        return FaultPlan(
            crash=narrowed(self.crash),
            hang=narrowed(self.hang),
            corrupt=narrowed(self.corrupt),
            hang_seconds=self.hang_seconds,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "crash": {str(i): c for i, c in self.crash.items()},
            "hang": {str(i): c for i, c in self.hang.items()},
            "corrupt": {str(i): c for i, c in self.corrupt.items()},
            "crash_driver_after": self.crash_driver_after,
            "hang_seconds": self.hang_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"fault plan must be a mapping, got {type(data).__name__}"
            )
        allowed = {"crash", "hang", "corrupt", "crash_driver_after", "hang_seconds"}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ScenarioError(
                f"unknown fault plan field(s) {', '.join(map(repr, unknown))}; "
                f"allowed: {', '.join(sorted(allowed))}"
            )
        crash_driver_after = data.get("crash_driver_after")
        return cls(
            crash=dict(data.get("crash", {})),
            hang=dict(data.get("hang", {})),
            corrupt=dict(data.get("corrupt", {})),
            crash_driver_after=(
                int(crash_driver_after) if crash_driver_after is not None else None
            ),
            hang_seconds=float(data.get("hang_seconds", 3600.0)),
        )


def fault_plan_from_json(text: str) -> FaultPlan:
    """Parse a fault plan from JSON text (the CLI's ``--inject-faults``)."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ScenarioError(f"invalid fault plan JSON: {error}") from None
    return FaultPlan.from_dict(data)
