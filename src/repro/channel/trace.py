"""Execution records: per-round traces and per-execution results.

The simulator returns an :class:`ExecutionResult` for every run; traces are
optional (they cost memory in large Monte Carlo sweeps) and are primarily
consumed by tests, debugging helpers and the worked examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.feedback import Feedback, Observation

__all__ = ["RoundRecord", "ExecutionResult"]


@dataclass(frozen=True)
class RoundRecord:
    """One round of an execution.

    Attributes
    ----------
    round_index:
        1-based round number.
    probability:
        The uniform transmission probability used this round, or ``None``
        for per-player (non-uniform) executions.
    transmit_count:
        Ground-truth number of transmitters.
    feedback:
        Ground-truth channel outcome.
    observation:
        What protocols were shown (observability-filtered feedback).
    """

    round_index: int
    probability: float | None
    transmit_count: int
    feedback: Feedback
    observation: Observation


@dataclass
class ExecutionResult:
    """Outcome of a single contention-resolution execution.

    Attributes
    ----------
    solved:
        Whether some round had exactly one transmitter within the budget.
    rounds:
        1-based index of the solving round; when unsolved, the number of
        rounds actually played (i.e. the budget spent).
    max_rounds:
        The round budget the execution ran under.
    k:
        Number of participants in this execution.
    trace:
        Per-round records when tracing was requested, else empty.
    """

    solved: bool
    rounds: int
    max_rounds: int
    k: int
    trace: list[RoundRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise ValueError(f"rounds must be >= 0, got {self.rounds}")
        if self.solved and self.rounds == 0:
            raise ValueError("a solved execution takes at least one round")

    @property
    def failed(self) -> bool:
        """Convenience inverse of :attr:`solved`."""
        return not self.solved

    def rounds_or(self, penalty: int) -> int:
        """Solving round, or ``penalty`` when unsolved.

        Experiment code uses this to score one-shot algorithms: a failed
        one-shot attempt is charged a caller-chosen penalty (e.g. the
        worst-case restart cost) instead of silently contributing its
        truncated round count.
        """
        return self.rounds if self.solved else penalty
