"""Execution records: per-round traces and per-execution results.

The simulator returns an :class:`ExecutionResult` for every run; traces are
optional (they cost memory in large Monte Carlo sweeps) and are primarily
consumed by tests, debugging helpers and the worked examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..core.feedback import Feedback, Observation

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    from ..analysis.metrics import ProportionEstimate, Summary

__all__ = ["RoundRecord", "ExecutionResult", "BatchExecutionResult"]


@dataclass(frozen=True)
class RoundRecord:
    """One round of an execution.

    Attributes
    ----------
    round_index:
        1-based round number.
    probability:
        The uniform transmission probability used this round, or ``None``
        for per-player (non-uniform) executions.
    transmit_count:
        Ground-truth number of transmitters.
    feedback:
        Ground-truth channel outcome.
    observation:
        What protocols were shown (observability-filtered feedback).
    """

    round_index: int
    probability: float | None
    transmit_count: int
    feedback: Feedback
    observation: Observation


@dataclass
class ExecutionResult:
    """Outcome of a single contention-resolution execution.

    Attributes
    ----------
    solved:
        Whether some round had exactly one transmitter within the budget.
    rounds:
        1-based index of the solving round; when unsolved, the number of
        rounds actually played (i.e. the budget spent).
    max_rounds:
        The round budget the execution ran under.
    k:
        Number of participants in this execution.
    trace:
        Per-round records when tracing was requested, else empty.
    """

    solved: bool
    rounds: int
    max_rounds: int
    k: int
    trace: list[RoundRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise ValueError(f"rounds must be >= 0, got {self.rounds}")
        if self.solved and self.rounds == 0:
            raise ValueError("a solved execution takes at least one round")

    @property
    def failed(self) -> bool:
        """Convenience inverse of :attr:`solved`."""
        return not self.solved

    def rounds_or(self, penalty: int) -> int:
        """Solving round, or ``penalty`` when unsolved.

        Experiment code uses this to score one-shot algorithms: a failed
        one-shot attempt is charged a caller-chosen penalty (e.g. the
        worst-case restart cost) instead of silently contributing its
        truncated round count.
        """
        return self.rounds if self.solved else penalty


@dataclass
class BatchExecutionResult:
    """Outcome of a whole Monte Carlo batch of uniform executions.

    The vectorized counterpart of :class:`ExecutionResult`: the batch
    engine (:func:`repro.channel.batch.run_uniform_batch`) advances all
    trials in lockstep and returns one of these instead of a list of
    per-trial objects.  Traces are deliberately absent - batches exist for
    throughput; use the scalar engine when you need per-round records.

    Attributes
    ----------
    solved:
        Boolean array, one entry per trial.
    rounds:
        Integer array: 1-based solving round for solved trials; rounds
        actually played (budget spent, or schedule length on exhaustion)
        for unsolved trials - the same convention as
        :attr:`ExecutionResult.rounds`.
    max_rounds:
        The round budget the batch ran under.
    ks:
        Per-trial participant counts.
    """

    solved: np.ndarray
    rounds: np.ndarray
    max_rounds: int
    ks: np.ndarray

    def __post_init__(self) -> None:
        self.solved = np.asarray(self.solved, dtype=bool)
        self.rounds = np.asarray(self.rounds, dtype=np.int64)
        self.ks = np.asarray(self.ks, dtype=np.int64)
        if not (self.solved.shape == self.rounds.shape == self.ks.shape):
            raise ValueError(
                "solved/rounds/ks arrays must share one shape, got "
                f"{self.solved.shape}/{self.rounds.shape}/{self.ks.shape}"
            )
        if self.solved.ndim != 1 or self.solved.size == 0:
            raise ValueError("a batch holds a non-empty 1-d array of trials")
        if (self.rounds < 0).any():
            raise ValueError("rounds must be >= 0")
        if (self.rounds[self.solved] == 0).any():
            raise ValueError("a solved execution takes at least one round")

    @property
    def trials(self) -> int:
        """Number of executions in the batch."""
        return int(self.solved.size)

    @property
    def num_solved(self) -> int:
        """Number of trials that solved within the budget."""
        return int(self.solved.sum())

    def solved_rounds(self) -> np.ndarray:
        """Solving rounds of the successful trials only."""
        return self.rounds[self.solved]

    def gave_up(self) -> np.ndarray:
        """Trials that terminated cleanly before the budget, unsolved.

        The one-shot give-up mask: an unsolved trial with ``rounds <
        max_rounds`` exhausted its schedule (``ScheduleExhausted``) after
        playing exactly ``rounds`` rounds, whereas an unsolved trial at
        the budget was right-censored.  Both batch engines record the
        distinction identically to the scalar loop; tests use this mask
        to pin that bookkeeping.
        """
        return ~self.solved & (self.rounds < self.max_rounds)

    def sliced(self, start: int, stop: int) -> "BatchExecutionResult":
        """The trials ``[start, stop)`` as their own batch result.

        The fused engines stack several scenario points' trials into one
        run and carve the per-point results back out with this; slices
        are views, so carving allocates nothing per point.
        """
        if not 0 <= start < stop <= self.trials:
            raise ValueError(
                f"slice [{start}, {stop}) out of range for {self.trials} trials"
            )
        return BatchExecutionResult(
            solved=self.solved[start:stop],
            rounds=self.rounds[start:stop],
            max_rounds=self.max_rounds,
            ks=self.ks[start:stop],
        )

    def rounds_summary(self) -> "Summary":
        """Summary of the solving round over *successful* trials.

        A batch with no successes yields the explicit zero-sample summary
        (NaN statistics) rather than a fabricated sample - unsolved trials
        are right-censored at the budget, not data points.
        """
        from ..analysis.metrics import Summary

        solved = self.solved_rounds()
        if solved.size == 0:
            return Summary.empty()
        return Summary.from_samples(solved)

    def success_estimate(self) -> "ProportionEstimate":
        """Solved-within-budget proportion with its Wilson interval."""
        from ..analysis.metrics import ProportionEstimate

        return ProportionEstimate(successes=self.num_solved, trials=self.trials)

    def to_execution_results(self) -> list[ExecutionResult]:
        """Per-trial views, for interop with scalar-path consumers."""
        return [
            ExecutionResult(
                solved=bool(self.solved[i]),
                rounds=int(self.rounds[i]),
                max_rounds=self.max_rounds,
                k=int(self.ks[i]),
            )
            for i in range(self.trials)
        ]
