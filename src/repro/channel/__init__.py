"""The multiple-access channel substrate.

Implements the paper's execution model: a synchronous shared channel with
or without collision detection, adversarial participant selection, and the
round-by-round execution engine that drives protocols to the first
single-transmitter round.
"""

from .arrivals import MarkovBurstArrivals, TraceArrivals
from .channel import Channel, with_collision_detection, without_collision_detection
from .models import (
    ADAPTIVE_STRATEGIES,
    CHANNEL_MODELS,
    AdaptiveAdversary,
    AdaptiveStrategy,
    ChannelModel,
    CrashModel,
    NoisyChannel,
    ObliviousJammer,
    ReactiveJammer,
    channel_model_from_dict,
    register_adaptive_strategy,
)
from .network import (
    Adversary,
    ClusteredAdversary,
    PrefixAdversary,
    RandomAdversary,
    SpreadAdversary,
    SuffixAdversary,
    validate_participants,
)
from .batch import (
    is_batchable,
    run_history_stacked,
    run_schedule_stacked,
    run_uniform_batch,
)
from .batch_players import (
    is_player_batchable,
    is_player_fusable,
    pack_participants,
    run_players_batch,
    run_players_stacked,
)
from .simulator import DEFAULT_MAX_ROUNDS, run_players, run_uniform
from .trace import BatchExecutionResult, ExecutionResult, RoundRecord

__all__ = [
    "Channel",
    "with_collision_detection",
    "without_collision_detection",
    "ChannelModel",
    "ObliviousJammer",
    "ReactiveJammer",
    "NoisyChannel",
    "CrashModel",
    "AdaptiveAdversary",
    "AdaptiveStrategy",
    "ADAPTIVE_STRATEGIES",
    "register_adaptive_strategy",
    "CHANNEL_MODELS",
    "channel_model_from_dict",
    "Adversary",
    "RandomAdversary",
    "PrefixAdversary",
    "SuffixAdversary",
    "SpreadAdversary",
    "ClusteredAdversary",
    "validate_participants",
    "MarkovBurstArrivals",
    "TraceArrivals",
    "run_uniform",
    "run_uniform_batch",
    "run_schedule_stacked",
    "run_history_stacked",
    "is_batchable",
    "run_players",
    "run_players_batch",
    "run_players_stacked",
    "is_player_batchable",
    "is_player_fusable",
    "pack_participants",
    "DEFAULT_MAX_ROUNDS",
    "BatchExecutionResult",
    "ExecutionResult",
    "RoundRecord",
]
