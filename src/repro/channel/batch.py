"""Vectorized batch execution of uniform protocols.

The scalar engine (:mod:`repro.channel.simulator`) runs one execution at a
time: a Python loop per round, one channel draw per round, per trial.
Monte Carlo estimation repeats that thousands of times.  This module
advances **all trials of a batch in lockstep** instead, one round per
iteration, retiring solved trials as it goes.

Why the batch draw is faithful (paper Section 2.2)
--------------------------------------------------
Uniform protocols are identity-oblivious: in every round all ``k``
participants transmit independently with the *same* probability ``p``, so
the channel state of the round is **exactly** ``Binomial(k, p)`` - which
participants transmitted is irrelevant to both the channel outcome and the
protocol's future behaviour.  Moreover the engines never consume the count
itself, only the trichotomy silence / success / collision, whose exact
probabilities are ``(1-p)^k``, ``kp(1-p)^(k-1)`` and the remainder.  A
round of a trial is therefore simulated exactly by **one uniform draw**
``u`` compared against those two precomputed band edges - the same
distribution as drawing the binomial count, computed with one vectorized
``rng.random`` call over the still-live trials instead of per-trial
Python-level calls.  (This mirrors how round-driven network simulators
batch their event loops.)

Two engines, chosen by protocol capability:

* **Schedule engine** - for protocols whose full probability sequence is
  known in advance (:meth:`~repro.core.protocol.UniformProtocol.batch_schedule`
  returns a :class:`~repro.core.protocol.BatchSchedule`; the no-CD family
  of Section 2.1).  No session objects at all: round ``r``'s success band
  is a precomputed array lookup, uniforms are pre-drawn in 16-round
  blocks per live trial, and a round costs one gather plus two
  compares.  The engine also has a
  **stacked** entry point (:func:`run_schedule_stacked`) advancing many
  *independent points* - each with its own generator, participant counts
  and schedule - through one shared round loop: point ``j``'s draws come
  from ``rngs[j]`` in exactly the order a solo run would consume them, so
  a stacked run is bit-identical per point to running the points one at a
  time (the fused sweep executor's contract), while all per-round masking
  and retirement work is amortized across the whole stack.

* **History engine** - for feedback-driven (CD) protocols with
  deterministic sessions.  All players of a CD execution see the same
  collision history ``b_1 b_2 ... b_r``, and a uniform CD algorithm is a
  deterministic function of that history (Section 2.1) - so two trials
  with identical histories will use identical probabilities forever until
  their histories diverge.  The engine is fully array-based: each live
  trial carries an integer node id into a **history trie**
  (:class:`_HistoryArena`) memoizing the history -> probability function,
  so a round costs one memoized ``next_probability()`` per *distinct
  history ever seen* (one session fork per trie node, amortized over all
  trials, rounds and stacked points - never a per-round ``fork()``), one
  uniform draw per live trial compared against trichotomy band edges
  gathered from a per-round ``(node, k)`` band cache, and one
  ``np.unique``-compacted child gather that advances every trial's node
  down its observed branch.  Like the schedule engine it has a
  **stacked** entry point (:func:`run_history_stacked`): points sharing a
  :meth:`~repro.core.protocol.UniformProtocol.history_signature` also
  share one trie, and each point consumes its own generator exactly as a
  solo run would, so a solo run *is* a 1-point stacked run.  On a no-CD
  channel every observation is ``QUIET``, so the trie is a single path
  and the engine degenerates to a schedule walk with a live session.

Both match the scalar engine's termination conventions exactly: a trial
retires at its first single-transmitter round (``rounds`` = that 1-based
round), at schedule exhaustion (``solved=False``, ``rounds`` = rounds
actually played) or at the budget (``solved=False``, ``rounds =
max_rounds``).
"""

from __future__ import annotations

import itertools
import threading
from collections.abc import Sequence

import numpy as np

from ..core.feedback import Observation
from ..core.protocol import (
    OBS_COLLISION,
    OBS_QUIET,
    OBS_SILENCE,
    BatchSchedule,
    ScheduleExhausted,
    UniformProtocol,
    UniformSession,
)
from .channel import Channel
from .models import FB_COLLISION, FB_SILENCE, FB_SUCCESS, ChannelModel
from .simulator import DEFAULT_MAX_ROUNDS, _check_channel
from .trace import BatchExecutionResult

__all__ = [
    "run_uniform_batch",
    "run_schedule_stacked",
    "run_history_stacked",
    "is_batchable",
]


def is_batchable(protocol: UniformProtocol) -> bool:
    """Whether :func:`run_uniform_batch` can execute ``protocol``.

    True when the protocol either publishes its schedule in advance or
    guarantees deterministic (history-driven) sessions; the Monte Carlo
    harness uses this to auto-select the batch substrate and fall back to
    the scalar reference loop otherwise.
    """
    return (
        protocol.batch_schedule() is not None or protocol.deterministic_sessions
    )


def _validated_ks(ks: Sequence[int] | np.ndarray) -> np.ndarray:
    array = np.asarray(ks, dtype=np.int64)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("ks must be a non-empty 1-d array of trial sizes")
    if (array < 1).any():
        raise ValueError("participant counts must all be >= 1")
    return array


def run_uniform_batch(
    protocol: UniformProtocol,
    ks: Sequence[int] | np.ndarray,
    rng: np.random.Generator,
    *,
    channel: Channel,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> BatchExecutionResult:
    """Execute one uniform-protocol trial per entry of ``ks``, in lockstep.

    The batch counterpart of :func:`repro.channel.simulator.run_uniform`:
    ``ks[i]`` is trial ``i``'s participant count, and entry ``i`` of the
    returned :class:`~repro.channel.trace.BatchExecutionResult` is
    distributed exactly as a scalar execution with that count (see the
    module docstring for why).  Raises :class:`ValueError` for protocols
    that are not :func:`is_batchable` - callers wanting transparent
    fallback should test the capability first.
    """
    ks = _validated_ks(ks)
    if max_rounds < 1:
        raise ValueError(f"round budget must be >= 1, got {max_rounds}")
    _check_channel(protocol.requires_collision_detection, channel)
    _check_model_batchable(channel.active_model)

    schedule = protocol.batch_schedule()
    if schedule is not None:
        return _run_schedule_batch(schedule, ks, rng, channel, max_rounds)
    if not protocol.deterministic_sessions:
        raise ValueError(
            f"protocol {protocol.name!r} has randomized sessions; use the "
            "scalar engine (run_uniform) instead"
        )
    return _run_history_batch(protocol, ks, rng, channel, max_rounds)


def _check_model_batchable(model: ChannelModel | None) -> None:
    """Reject models that declare themselves inexpressible here.

    Every in-repo model is now batchable on the uniform engines -
    population-shrinking crash variants run through the per-trial
    :meth:`~repro.channel.models.BatchFaultState.active_counts` band
    path - so this guards only third-party models opting out.
    """
    if model is not None and not model.batchable:
        raise ValueError(
            f"channel model {model.name!r} declares itself inexpressible "
            "on the stacked uniform engines (batchable=False); use the "
            "scalar engine (run_uniform) instead"
        )


def _run_schedule_batch(
    schedule: BatchSchedule,
    ks: np.ndarray,
    rng: np.random.Generator,
    channel: Channel,
    max_rounds: int,
) -> BatchExecutionResult:
    """Advance every trial through a precomputed probability schedule.

    A one-point stacked run: the single-scenario path and the fused sweep
    path share one implementation, which is what makes a fused point
    bit-identical to its standalone re-run.
    """
    return run_schedule_stacked(
        [schedule], [ks], [rng], channel=channel, max_rounds=max_rounds
    )[0]


#: Rounds of success-band thresholds precomputed per table build.  Bands
#: are pure functions of (k, round probability), so the chunk size only
#: trades table-build frequency against memory - it never affects results.
_BAND_CHUNK_ROUNDS = 512

#: Rounds of uniforms pre-drawn per point at each absolute block
#: boundary (rounds 1, 1+B, 1+2B, ...).  Part of the engine's stream
#: contract: a trial that retires mid-block leaves its remaining
#: pre-drawn uniforms unused (discarding i.i.d. draws is
#: distribution-neutral), and a point stops drawing entirely once all
#: its trials have retired.  Because boundaries are absolute and the
#: draw shape depends only on the point's own live count and horizon,
#: stacked and solo runs consume identical per-point streams.
_DRAW_BLOCK_ROUNDS = 16


def _index_trial_combos(
    ks_arrays: Sequence[np.ndarray],
) -> tuple[list[np.ndarray], np.ndarray]:
    """Index the distinct ``(point, k)`` pairs of a stacked run.

    Band edges depend only on the pair, so both stacked engines compute
    them per distinct pair ("combo") and gather: returns each point's
    unique ``k`` values (as floats, band-arithmetic-ready) plus one flat
    per-trial index into their concatenation.
    """
    unique_ks: list[np.ndarray] = []
    flat_cidx = np.empty(sum(ks.size for ks in ks_arrays), dtype=np.int64)
    offset = 0
    cursor = 0
    for ks in ks_arrays:
        uniques, inverse = np.unique(ks, return_inverse=True)
        unique_ks.append(uniques.astype(float))
        flat_cidx[cursor : cursor + ks.size] = inverse + offset
        offset += uniques.size
        cursor += ks.size
    return unique_ks, flat_cidx


def _refill_draw_block(
    rngs: Sequence[np.random.Generator],
    counts: np.ndarray,
    horizons: np.ndarray,
    round_index: int,
    live: int,
    with_fault: bool = False,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Pre-draw one :data:`_DRAW_BLOCK_ROUNDS` block of uniforms.

    The shared half of both stacked engines' stream contract: one row
    per live trial (in point order, each point's rows in trial order),
    clipped per point to its own remaining horizon, drawn from the
    point's own generator - so the shapes, and hence the streams, depend
    only on the point's own trajectory and a solo run consumes the
    identical sequence.

    With ``with_fault`` (randomized channel models), each point draws a
    second, same-shaped block of fault uniforms immediately after its
    faithful block - still from its own generator, so the per-point
    stream stays solo-identical and the fused executor's bit-identity
    contract survives fault injection.
    """
    width = min(_DRAW_BLOCK_ROUNDS, int(horizons.max()) - round_index + 1)
    draw_buffer = np.empty((live, width))
    fault_buffer = np.empty((live, width)) if with_fault else None
    start = 0
    for point in np.flatnonzero(counts):
        stop = start + counts[point]
        effective = min(
            _DRAW_BLOCK_ROUNDS, int(horizons[point]) - round_index + 1
        )
        draw_buffer[start:stop, :effective] = rngs[point].random(
            (stop - start, effective)
        )
        if fault_buffer is not None:
            fault_buffer[start:stop, :effective] = rngs[point].random(
                (stop - start, effective)
            )
        start = stop
    return draw_buffer, fault_buffer


def _per_point_results(
    solved: np.ndarray,
    rounds: np.ndarray,
    ks_arrays: Sequence[np.ndarray],
    max_rounds: int,
) -> list[BatchExecutionResult]:
    """Carve a stacked run's flat arrays back into per-point results."""
    results = []
    cursor = 0
    for ks in ks_arrays:
        stop = cursor + ks.size
        results.append(
            BatchExecutionResult(
                solved=solved[cursor:stop],
                rounds=rounds[cursor:stop],
                max_rounds=max_rounds,
                ks=ks,
            )
        )
        cursor = stop
    return results


def _schedule_probabilities(
    schedule: BatchSchedule, start_round: int, length: int
) -> np.ndarray:
    """Round probabilities for ``length`` rounds from ``start_round``.

    Rounds past a one-shot schedule's end clamp to the last scheduled
    round; the engine retires those trials before ever reading such an
    entry.
    """
    probabilities = np.asarray(schedule.probabilities, dtype=float)
    indices = start_round - 1 + np.arange(length)
    if schedule.cycle:
        indices %= probabilities.size
    else:
        indices = np.minimum(indices, probabilities.size - 1)
    return probabilities[indices]


def _success_bands(
    schedule: BatchSchedule,
    unique_ks: np.ndarray,
    start_round: int,
    length: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Success-band edges for ``length`` rounds from ``start_round``.

    Returns ``(lo, hi)`` of shape ``(length, unique_ks.size)``: round
    ``start_round + i`` of a ``k = unique_ks[c]`` trial succeeds iff its
    uniform draw lands in ``[lo[i, c], hi[i, c])``, where
    ``lo = (1-p)^k`` (the silence mass) and ``hi - lo = kp(1-p)^(k-1)``
    (the exactly-one-transmitter mass).
    """
    p = _schedule_probabilities(schedule, start_round, length)[:, None]
    ks = unique_ks[None, :]
    miss = 1.0 - p
    lo = miss**ks
    hi = lo + ks * p * miss ** (ks - 1)
    return lo, hi


def _trial_bands(
    p_trial: np.ndarray, k_eff: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-trial trichotomy band edges from per-trial counts.

    The population-shrinking path (crash models with a rejoin delay):
    band edges are no longer a pure function of the static ``(point, k)``
    combo, so they are computed per live trial from that trial's current
    active count.  ``k_eff = 0`` (everyone dead) yields ``lo = hi = 1``:
    certain silence - the exponent clamp keeps ``p = 1`` from producing
    ``0 * 0**-1`` NaNs there.
    """
    miss = 1.0 - p_trial
    lo = miss**k_eff
    hi = lo + k_eff * p_trial * miss ** np.maximum(k_eff - 1.0, 0.0)
    return lo, hi


def run_schedule_stacked(
    schedules: Sequence[BatchSchedule],
    ks_list: Sequence[np.ndarray],
    rngs: Sequence[np.random.Generator],
    *,
    channel: Channel | None = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> list[BatchExecutionResult]:
    """Advance many independent schedule-protocol points in one loop.

    Point ``j`` is a whole Monte Carlo batch (schedule, per-trial
    participant counts, own generator); entry ``j`` of the returned list
    is **bit-identical** to ``run_uniform_batch`` on that point alone:
    point ``j`` draws from ``rngs[j]`` in :data:`_DRAW_BLOCK_ROUNDS`-round
    blocks whose boundaries are absolute and whose shapes depend only on
    the point's own live count and horizon, so a solo run consumes the
    identical stream, and a point stops consuming randomness at the
    first block boundary after its last trial retires.  Stacking changes
    only *where* the per-round bookkeeping happens - once over the flat
    ``(point, trial)`` rows instead of per point - which is the fused
    sweep executor's wall-clock lever on dense grids.

    ``channel`` is optional because schedule protocols never branch on
    feedback; it matters only when it carries an active
    :class:`~repro.channel.models.ChannelModel`, in which case the full
    silence/success/collision code of each live round is computed from
    the same band compares, perturbed *after* the faithful outcome
    (randomized models consume one extra pre-drawn uniform per live
    round; see :func:`_refill_draw_block`), and a trial retires on the
    *delivered* success.
    """
    points = len(schedules)
    if not (points == len(ks_list) == len(rngs)):
        raise ValueError(
            f"stacked run needs one schedule, ks array and rng per point; "
            f"got {points}/{len(ks_list)}/{len(rngs)}"
        )
    if points == 0:
        raise ValueError("stacked run needs at least one point")
    if max_rounds < 1:
        raise ValueError(f"round budget must be >= 1, got {max_rounds}")
    ks_arrays = [_validated_ks(ks) for ks in ks_list]
    trials = np.asarray([ks.size for ks in ks_arrays])
    horizons = np.asarray([s.horizon(max_rounds) for s in schedules])

    model = channel.active_model if channel is not None else None
    _check_model_batchable(model)

    total = int(trials.sum())
    solved = np.zeros(total, dtype=bool)
    rounds = np.zeros(total, dtype=np.int64)
    fault_state = model.batch_state(total) if model is not None else None
    with_fault = model is not None and model.needs_fault_draws
    shrinking = model is not None and model.shrinks_population
    fault_buffer: np.ndarray | None = None

    # Success bands depend only on (point, k): index the distinct pairs
    # once ("combos") so each round's thresholds are two row gathers.
    # Population-shrinking models void that invariant - their bands are
    # recomputed per trial each round from the live active counts.
    unique_ks, flat_cidx = _index_trial_combos(ks_arrays)
    flat_ks = np.concatenate(ks_arrays) if shrinking else None

    # Live rows, grouped by point in point order (each point's rows stay
    # in trial order, exactly the order a solo run draws them in).
    flat_trial = np.arange(total)
    flat_point = np.repeat(np.arange(points), trials)

    horizon_steps = set(int(h) for h in horizons)
    lo_table = hi_table = p_table = None
    chunk_base = chunk_len = 0  # tables cover (chunk_base, chunk_base + len]
    draw_buffer = np.empty((0, 0))
    buffer_row = np.arange(total)  # rewritten at the first block boundary

    for round_index in range(1, int(horizons.max()) + 1):
        # Retire whole points whose (one-shot) horizon just ended: their
        # surviving trials censor at rounds-actually-played = horizon.
        if round_index - 1 in horizon_steps:
            expired = horizons[flat_point] < round_index
            if expired.any():
                gone = flat_trial[expired]
                rounds[gone] = horizons[flat_point[expired]]
                keep = ~expired
                flat_trial = flat_trial[keep]
                flat_point = flat_point[keep]
                flat_cidx = flat_cidx[keep]
                buffer_row = buffer_row[keep]
                if flat_ks is not None:
                    flat_ks = flat_ks[keep]
                if fault_state is not None:
                    fault_state.filter(keep)
        if flat_trial.size == 0:
            break

        if round_index > chunk_base + chunk_len:
            chunk_base = round_index - 1
            chunk_len = min(_BAND_CHUNK_ROUNDS, int(horizons.max()) - chunk_base)
            if shrinking:
                # Only the per-round probabilities can be precomputed;
                # band edges depend on the live per-trial counts.
                p_table = np.stack(
                    [
                        _schedule_probabilities(s, round_index, chunk_len)
                        for s in schedules
                    ],
                    axis=1,
                )
            else:
                blocks = [
                    _success_bands(schedule, uniques, round_index, chunk_len)
                    for schedule, uniques in zip(schedules, unique_ks)
                ]
                lo_table = np.concatenate([lo for lo, _ in blocks], axis=1)
                hi_table = np.concatenate([hi for _, hi in blocks], axis=1)
        row = round_index - chunk_base - 1
        if shrinking:
            lo = hi = None
        else:
            lo = lo_table[row]
            hi = hi_table[row]

        # Uniform draws come in *absolute* blocks of _DRAW_BLOCK_ROUNDS
        # rounds: at each block boundary every live point pre-draws one
        # row of uniforms per live trial (clipped to its own horizon)
        # from its own generator.  Block boundaries and per-point shapes
        # depend only on the point's own trajectory, so a solo run
        # consumes the identical stream; between boundaries a round costs
        # one gather instead of one generator call per point.
        column = (round_index - 1) % _DRAW_BLOCK_ROUNDS
        if column == 0:
            # The per-point live counts are only needed here, to shape
            # the refill; between boundaries retirement just filters.
            counts = np.bincount(flat_point, minlength=points)
            draw_buffer, fault_buffer = _refill_draw_block(
                rngs, counts, horizons, round_index, flat_trial.size,
                with_fault,
            )
            buffer_row = np.arange(flat_trial.size)
        draws = draw_buffer[buffer_row, column]

        if fault_state is None:
            hit = (draws >= lo[flat_cidx]) & (draws < hi[flat_cidx])
        else:
            # The same band compares, widened to the full trichotomy so
            # the model can perturb the delivered feedback; a trial
            # retires on the *delivered* success.
            if shrinking:
                # Per-trial bands from the live active counts (asked
                # once per round, before the outcome - the scalar
                # loop's active_count/binomial ordering).
                k_eff = fault_state.active_counts(
                    flat_ks, round_index
                ).astype(float)
                lo_trial, hi_trial = _trial_bands(
                    p_table[row, flat_point], k_eff
                )
            else:
                lo_trial = lo[flat_cidx]
                hi_trial = hi[flat_cidx]
            codes = np.where(
                draws < lo_trial,
                FB_SILENCE,
                np.where(draws < hi_trial, FB_SUCCESS, FB_COLLISION),
            )
            fault_draws = (
                fault_buffer[buffer_row, column]
                if fault_buffer is not None
                else None
            )
            codes = fault_state.perturb(round_index, codes, fault_draws)
            hit = codes == FB_SUCCESS
        if hit.any():
            winners = flat_trial[hit]
            solved[winners] = True
            rounds[winners] = round_index
            keep = ~hit
            flat_trial = flat_trial[keep]
            flat_point = flat_point[keep]
            flat_cidx = flat_cidx[keep]
            buffer_row = buffer_row[keep]
            if flat_ks is not None:
                flat_ks = flat_ks[keep]
            if fault_state is not None:
                fault_state.filter(keep)

    # Whatever survives was right-censored: by the budget (rounds played =
    # max_rounds) or by one-shot exhaustion (rounds played = schedule
    # length), matching the scalar engine's ExecutionResult convention.
    rounds[flat_trial] = horizons[flat_point]
    return _per_point_results(solved, rounds, ks_arrays, max_rounds)


def _run_history_batch(
    protocol: UniformProtocol,
    ks: np.ndarray,
    rng: np.random.Generator,
    channel: Channel,
    max_rounds: int,
) -> BatchExecutionResult:
    """Advance one history-driven point: a one-point stacked run.

    As with the schedule engine, the single-scenario path and the fused
    sweep path share one implementation, so a fused point is
    bit-identical to its standalone re-run by construction.
    """
    return run_history_stacked(
        [protocol], [ks], [rng], channel=channel, max_rounds=max_rounds
    )[0]


#: Observation-code -> enum for trie child expansion.  Indices match the
#: :data:`~repro.core.protocol.OBS_QUIET` / ``OBS_SILENCE`` /
#: ``OBS_COLLISION`` codes the player batch engine already uses.
_OBSERVATION_OF = {
    OBS_QUIET: Observation.QUIET,
    OBS_SILENCE: Observation.SILENCE,
    OBS_COLLISION: Observation.COLLISION,
}


class _HistoryArena:
    """Node store of every distinct observation history of a stacked run.

    A forest of history tries over one flat node space: each root is the
    empty history of one protocol behaviour (keyed by
    :meth:`~repro.core.protocol.UniformProtocol.history_signature`, so
    same-spec points share a root and hence every descendant), and node
    ``child[v][code]`` is the history ``v`` extended by the observation
    ``code``.  Per node the arena memoizes the protocol's response - the
    next-round probability, or schedule exhaustion - computed from a
    representative session forked once when the node is created.  All
    per-node attributes live in flat NumPy arrays so the round loop can
    gather them for thousands of trials at once; capacity doubles as
    nodes are added.
    """

    def __init__(self) -> None:
        capacity = 64
        self.probability = np.full(capacity, np.nan)
        self.exhausted = np.zeros(capacity, dtype=bool)
        self.child = np.full((capacity, 3), -1, dtype=np.int64)
        self._resolved = np.zeros(capacity, dtype=bool)
        self._sessions: list[UniformSession | None] = [None] * capacity
        self._roots: dict[object, int] = {}
        self.count = 0
        #: Whether any resolved history has exhausted its schedule; the
        #: round loop skips the per-trial give-up scan while this is
        #: False (cycling protocols never set it).
        self.any_exhausted = False

    def _new_node(self, session: UniformSession) -> int:
        if self.count == self.probability.size:
            grow = self.count
            self.probability = np.concatenate(
                [self.probability, np.full(grow, np.nan)]
            )
            self.exhausted = np.concatenate(
                [self.exhausted, np.zeros(grow, dtype=bool)]
            )
            self.child = np.concatenate(
                [self.child, np.full((grow, 3), -1, dtype=np.int64)]
            )
            self._resolved = np.concatenate(
                [self._resolved, np.zeros(grow, dtype=bool)]
            )
            self._sessions.extend([None] * grow)
        node = self.count
        self._sessions[node] = session
        self.count += 1
        return node

    def root_for(self, protocol: UniformProtocol, private_key: object) -> int:
        """The empty-history node of ``protocol``, shared where provable.

        Protocols publishing equal ``history_signature()``s share one
        root (and so one memoized trie) - across the points of a stacked
        run *and* across runs, since the arena is shared per thread;
        unsigned protocols get a private root under ``private_key``
        (unique per run and point, so nothing is ever wrongly reused).
        """
        key = protocol.history_signature()
        if key is None:
            key = private_key
        node = self._roots.get(key)
        if node is None:
            node = self._new_node(protocol.session())
            self._roots[key] = node
        return node

    def resolve(self, nodes: np.ndarray) -> None:
        """Memoize the next-round probability of each node in ``nodes``.

        One ``next_probability()`` call per distinct history, ever: a
        node revisited by later trials, points or (trie-sharing) runs is
        a pure array lookup.  :class:`ScheduleExhausted` is memoized
        too - a one-shot give-up is a property of the history, not of
        the trial that first reached it.
        """
        for node in nodes[~self._resolved[nodes]]:
            session = self._sessions[node]
            assert session is not None
            try:
                self.probability[node] = session.next_probability()
            except ScheduleExhausted:
                self.exhausted[node] = True
                self.any_exhausted = True
            self._resolved[node] = True

    def descend(self, nodes: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Child node per ``(node, code)`` pair, expanding the trie lazily.

        Missing children cost one session fork + ``observe()`` per
        *distinct* pair (``np.unique``-compacted), then every trial's
        descent is a single fancy-indexed gather - the array analogue of
        the old per-group split, without per-round ``fork()`` copies.
        """
        found = self.child[nodes, codes]
        missing = found < 0
        if missing.any():
            keys = np.unique(nodes[missing] * 3 + codes[missing])
            for key in keys:
                node, code = int(key) // 3, int(key) % 3
                parent = self._sessions[node]
                assert parent is not None
                session = parent.fork()
                session.observe(_OBSERVATION_OF[code])
                self.child[node, code] = self._new_node(session)
            found = self.child[nodes, codes]
        return found


#: Node budget of the shared arena.  The memoized tries are a cache:
#: once the arena exceeds this many nodes a fresh one replaces it at the
#: next run's start (never mid-run - live node ids must stay valid),
#: bounding resident memory while keeping the steady-state case - many
#: runs of the same protocol specs - one warm lookup.  Results are
#: bit-identical warm or cold; only session construction work is saved.
_SHARED_ARENA_NODE_BUDGET = 100_000

#: The arena is shared across runs but *per thread* (``threading.local``):
#: arena mutation (node allocation, array growth) is not synchronized, and
#: the run-local engine this replaced was safe to call from threads - a
#: property worth keeping for embedders, at the cost of one warm trie per
#: thread.  Process pools are unaffected (each worker has its own module
#: state).
_run_state = threading.local()
_run_tokens = itertools.count()


def _arena_for_run() -> _HistoryArena:
    arena = getattr(_run_state, "arena", None)
    if arena is None or arena.count > _SHARED_ARENA_NODE_BUDGET:
        arena = _HistoryArena()
        _run_state.arena = arena
    return arena


def _reset_shared_arena() -> None:
    """Drop this thread's memoized arena (tests pin warm/cold identity)."""
    _run_state.arena = None


def run_history_stacked(
    protocols: Sequence[UniformProtocol],
    ks_list: Sequence[np.ndarray],
    rngs: Sequence[np.random.Generator],
    *,
    channel: Channel,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> list[BatchExecutionResult]:
    """Advance many history-driven points in one array-based loop.

    The CD counterpart of :func:`run_schedule_stacked`: point ``j`` is a
    whole Monte Carlo batch of a deterministic-session uniform protocol
    (typically feedback-driven - Willard/phased search, history
    policies), and entry ``j`` of the result is **bit-identical** to
    ``run_uniform_batch`` on that point alone.  Each live trial carries
    a node id into the shared history-trie arena; a round is

    1. one memoized ``next_probability()`` per distinct live history
       (shared across trials, across points with equal
       ``history_signature()``s, and - the arena being shared per
       thread under a node budget - across whole runs; results are
       bit-identical warm or cold);
    2. retirement of trials whose history's schedule exhausted
       (``rounds`` = rounds actually played, the scalar convention);
    3. one uniform gather per live trial from per-point
       :data:`_DRAW_BLOCK_ROUNDS`-round pre-drawn blocks (absolute
       boundaries, shapes depending only on the point's own live count -
       the same stream contract as the schedule engine) compared against
       ``(1-p)^k`` / ``kp(1-p)^(k-1)`` trichotomy band edges gathered
       from a ``(node, k)``-unique band cache;
    4. a ``np.unique``-compacted trie descent moving every surviving
       trial to its observed child history.

    The trichotomy bands make the round distribution-exact (engines only
    ever observe silence / success / collision; module docstring), so
    the old per-group ``rng.binomial`` draws and per-split session
    ``fork()``s are gone entirely.
    """
    points = len(protocols)
    if not (points == len(ks_list) == len(rngs)):
        raise ValueError(
            f"stacked run needs one protocol, ks array and rng per point; "
            f"got {points}/{len(ks_list)}/{len(rngs)}"
        )
    if points == 0:
        raise ValueError("stacked run needs at least one point")
    if max_rounds < 1:
        raise ValueError(f"round budget must be >= 1, got {max_rounds}")
    for protocol in protocols:
        if not protocol.deterministic_sessions:
            raise ValueError(
                f"protocol {protocol.name!r} has randomized sessions; use "
                "the scalar engine (run_uniform) instead"
            )
        _check_channel(protocol.requires_collision_detection, channel)
    ks_arrays = [_validated_ks(ks) for ks in ks_list]
    trials = np.asarray([ks.size for ks in ks_arrays])

    model = channel.active_model
    _check_model_batchable(model)

    total = int(trials.sum())
    solved = np.zeros(total, dtype=bool)
    rounds = np.zeros(total, dtype=np.int64)
    fault_state = model.batch_state(total) if model is not None else None
    with_fault = model is not None and model.needs_fault_draws
    shrinking = model is not None and model.shrinks_population
    fault_buffer: np.ndarray | None = None

    # Band edges depend only on (history node, k): index the distinct
    # per-point ks once ("combos"), exactly as the schedule engine does.
    # Population-shrinking models void that invariant - their bands are
    # recomputed per trial each round from the live active counts.
    unique_ks, flat_cidx = _index_trial_combos(ks_arrays)
    combo_ks = np.concatenate(unique_ks)
    flat_ks = np.concatenate(ks_arrays) if shrinking else None

    arena = _arena_for_run()
    run_token = next(_run_tokens)
    roots = np.asarray(
        [
            arena.root_for(protocol, ("unshared", run_token, j))
            for j, protocol in enumerate(protocols)
        ],
        dtype=np.int64,
    )

    # Live rows, grouped by point in point order (each point's rows stay
    # in trial order, exactly the order a solo run draws them in).
    flat_trial = np.arange(total)
    flat_point = np.repeat(np.arange(points), trials)
    flat_node = roots[flat_point]

    collision_detection = channel.collision_detection
    horizons = np.full(points, max_rounds)  # no precomputable horizons
    draw_buffer = np.empty((0, 0))
    buffer_row = np.arange(total)  # rewritten at the first block boundary

    for round_index in range(1, max_rounds + 1):
        if flat_trial.size == 0:
            break

        # Per-round (node, k) band cache: one sort of the live pair keys
        # yields the distinct (history, k) combinations *and* (via its
        # quotients) the distinct live histories, so thresholds and
        # memoized probabilities are computed once per distinct pair /
        # node and gathered back to the trials.
        pair = flat_node * combo_ks.size + flat_cidx
        unique_pair, pair_inverse = np.unique(pair, return_inverse=True)
        pair_node = unique_pair // combo_ks.size
        arena.resolve(np.unique(pair_node))

        # Clean one-shot give-ups retire *before* the round's draw, with
        # rounds actually played - the scalar ScheduleExhausted path.
        if arena.any_exhausted:
            expired = arena.exhausted[flat_node]
            if expired.any():
                rounds[flat_trial[expired]] = round_index - 1
                keep = ~expired
                flat_trial = flat_trial[keep]
                flat_point = flat_point[keep]
                flat_node = flat_node[keep]
                flat_cidx = flat_cidx[keep]
                buffer_row = buffer_row[keep]
                pair_inverse = pair_inverse[keep]
                if flat_ks is not None:
                    flat_ks = flat_ks[keep]
                if fault_state is not None:
                    fault_state.filter(keep)
                if flat_trial.size == 0:
                    break

        # Exhausted histories keep NaN probabilities; their band rows are
        # never gathered - every trial on one just retired.
        p = arena.probability[pair_node]
        if shrinking:
            # Per-trial bands from the live active counts (asked once
            # per round, before the outcome - the scalar loop's
            # active_count/binomial ordering); the per-pair cache only
            # supplies the memoized probabilities.
            k_eff = fault_state.active_counts(flat_ks, round_index).astype(
                float
            )
            lo, hi = _trial_bands(p[pair_inverse], k_eff)
        else:
            k = combo_ks[unique_pair % combo_ks.size]
            miss = 1.0 - p
            lo_pair = miss**k
            hi_pair = lo_pair + k * p * miss ** (k - 1)
            lo = lo_pair[pair_inverse]
            hi = hi_pair[pair_inverse]

        # Same absolute-block pre-draw contract as the schedule engine:
        # per-point uniforms in trial order, shapes depending only on
        # the point's own live count, unused draws of retired trials
        # discarded (distribution-neutral).
        column = (round_index - 1) % _DRAW_BLOCK_ROUNDS
        if column == 0:
            # The per-point live counts are only needed here, to shape
            # the refill; between boundaries retirement just filters.
            counts = np.bincount(flat_point, minlength=points)
            draw_buffer, fault_buffer = _refill_draw_block(
                rngs, counts, horizons, round_index, flat_trial.size,
                with_fault,
            )
            buffer_row = np.arange(flat_trial.size)
        draws = draw_buffer[buffer_row, column]

        if fault_state is None:
            feedback = None
            hit = (draws >= lo) & (draws < hi)
        else:
            # Full trichotomy from the same band compares, perturbed by
            # the model *after* the faithful outcome; retirement and the
            # observed history both follow the *delivered* feedback.
            feedback = np.where(
                draws < lo,
                FB_SILENCE,
                np.where(draws < hi, FB_SUCCESS, FB_COLLISION),
            )
            fault_draws = (
                fault_buffer[buffer_row, column]
                if fault_buffer is not None
                else None
            )
            feedback = fault_state.perturb(round_index, feedback, fault_draws)
            hit = feedback == FB_SUCCESS
        if hit.any():
            winners = flat_trial[hit]
            solved[winners] = True
            rounds[winners] = round_index
            survive = ~hit
            flat_trial = flat_trial[survive]
            flat_point = flat_point[survive]
            flat_node = flat_node[survive]
            flat_cidx = flat_cidx[survive]
            buffer_row = buffer_row[survive]
            draws = draws[survive]
            hi = hi[survive]
            if flat_ks is not None:
                flat_ks = flat_ks[survive]
            if feedback is not None:
                feedback = feedback[survive]
            if fault_state is not None:
                fault_state.filter(survive)

        if flat_trial.size and round_index < max_rounds:
            if not collision_detection:
                codes = np.full(flat_trial.size, OBS_QUIET, dtype=np.int64)
            elif feedback is None:
                codes = np.where(draws >= hi, OBS_COLLISION, OBS_SILENCE)
            else:
                codes = np.where(
                    feedback == FB_COLLISION, OBS_COLLISION, OBS_SILENCE
                )
            flat_node = arena.descend(flat_node, codes)

    # Whatever survives was right-censored at the budget, matching the
    # scalar engine's ExecutionResult convention.
    rounds[flat_trial] = max_rounds
    return _per_point_results(solved, rounds, ks_arrays, max_rounds)
