"""Vectorized batch execution of uniform protocols.

The scalar engine (:mod:`repro.channel.simulator`) runs one execution at a
time: a Python loop per round, one ``rng.binomial(k, p)`` call per round,
per trial.  Monte Carlo estimation repeats that thousands of times.  This
module advances **all trials of a batch in lockstep** instead, one round
per iteration, retiring solved trials as it goes.

Why the batch draw is faithful (paper Section 2.2)
--------------------------------------------------
Uniform protocols are identity-oblivious: in every round all ``k``
participants transmit independently with the *same* probability ``p``, so
the channel state of the round is **exactly** ``Binomial(k, p)`` - which
participants transmitted is irrelevant to both the channel outcome and the
protocol's future behaviour.  A round of a whole batch of independent
executions is therefore exactly a vector of independent binomial draws,
``rng.binomial(k_vec, p)``, and simulating it that way is not an
approximation but the same distribution computed with one NumPy call
instead of ``trials`` Python-level calls.  (This mirrors how round-driven
network simulators batch their event loops.)

Two engines, chosen by protocol capability:

* **Schedule engine** - for protocols whose full probability sequence is
  known in advance (:meth:`~repro.core.protocol.UniformProtocol.batch_schedule`
  returns a :class:`~repro.core.protocol.BatchSchedule`; the no-CD family
  of Section 2.1).  No session objects at all: round ``r``'s probability is
  an array lookup, and the round costs a single vectorized binomial draw
  over the still-live trials.

* **History engine** - for feedback-driven (CD) protocols with
  deterministic sessions.  All players of a CD execution see the same
  collision history ``b_1 b_2 ... b_r``, and a uniform CD algorithm is a
  deterministic function of that history (Section 2.1) - so two trials
  with identical histories will use identical probabilities forever until
  their histories diverge.  The engine keeps one representative session
  per distinct history, advancing *groups* of trials: each round costs one
  ``next_probability()`` call per live group plus one vectorized binomial
  draw per group, instead of per-trial session machinery.  On a no-CD
  channel every observation is ``QUIET``, so there is exactly one group
  and the engine degenerates to the schedule engine with a live session.

Both match the scalar engine's termination conventions exactly: a trial
retires at its first single-transmitter round (``rounds`` = that 1-based
round), at schedule exhaustion (``solved=False``, ``rounds`` = rounds
actually played) or at the budget (``solved=False``, ``rounds =
max_rounds``).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.feedback import Observation
from ..core.protocol import (
    BatchSchedule,
    ScheduleExhausted,
    UniformProtocol,
    UniformSession,
)
from .channel import Channel
from .simulator import DEFAULT_MAX_ROUNDS, _check_channel
from .trace import BatchExecutionResult

__all__ = ["run_uniform_batch", "is_batchable"]


def is_batchable(protocol: UniformProtocol) -> bool:
    """Whether :func:`run_uniform_batch` can execute ``protocol``.

    True when the protocol either publishes its schedule in advance or
    guarantees deterministic (history-driven) sessions; the Monte Carlo
    harness uses this to auto-select the batch substrate and fall back to
    the scalar reference loop otherwise.
    """
    return (
        protocol.batch_schedule() is not None or protocol.deterministic_sessions
    )


def _validated_ks(ks: Sequence[int] | np.ndarray) -> np.ndarray:
    array = np.asarray(ks, dtype=np.int64)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("ks must be a non-empty 1-d array of trial sizes")
    if (array < 1).any():
        raise ValueError("participant counts must all be >= 1")
    return array


def run_uniform_batch(
    protocol: UniformProtocol,
    ks: Sequence[int] | np.ndarray,
    rng: np.random.Generator,
    *,
    channel: Channel,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> BatchExecutionResult:
    """Execute one uniform-protocol trial per entry of ``ks``, in lockstep.

    The batch counterpart of :func:`repro.channel.simulator.run_uniform`:
    ``ks[i]`` is trial ``i``'s participant count, and entry ``i`` of the
    returned :class:`~repro.channel.trace.BatchExecutionResult` is
    distributed exactly as a scalar execution with that count (see the
    module docstring for why).  Raises :class:`ValueError` for protocols
    that are not :func:`is_batchable` - callers wanting transparent
    fallback should test the capability first.
    """
    ks = _validated_ks(ks)
    if max_rounds < 1:
        raise ValueError(f"round budget must be >= 1, got {max_rounds}")
    _check_channel(protocol.requires_collision_detection, channel)

    schedule = protocol.batch_schedule()
    if schedule is not None:
        return _run_schedule_batch(schedule, ks, rng, max_rounds)
    if not protocol.deterministic_sessions:
        raise ValueError(
            f"protocol {protocol.name!r} has randomized sessions; use the "
            "scalar engine (run_uniform) instead"
        )
    return _run_history_batch(protocol, ks, rng, channel, max_rounds)


def _run_schedule_batch(
    schedule: BatchSchedule,
    ks: np.ndarray,
    rng: np.random.Generator,
    max_rounds: int,
) -> BatchExecutionResult:
    """Advance every trial through a precomputed probability schedule."""
    trials = ks.size
    solved = np.zeros(trials, dtype=bool)
    rounds = np.zeros(trials, dtype=np.int64)
    probabilities = np.asarray(schedule.probabilities, dtype=float)
    period = probabilities.size
    horizon = schedule.horizon(max_rounds)
    live = np.arange(trials)
    for round_index in range(1, horizon + 1):
        p = probabilities[(round_index - 1) % period]
        counts = rng.binomial(ks[live], p)
        hit = counts == 1
        if hit.any():
            winners = live[hit]
            solved[winners] = True
            rounds[winners] = round_index
            live = live[~hit]
            if live.size == 0:
                break
    # Whatever survives was right-censored: by the budget (rounds played =
    # max_rounds) or by one-shot exhaustion (rounds played = schedule
    # length), matching the scalar engine's ExecutionResult convention.
    rounds[live] = horizon
    return BatchExecutionResult(
        solved=solved, rounds=rounds, max_rounds=max_rounds, ks=ks
    )


def _run_history_batch(
    protocol: UniformProtocol,
    ks: np.ndarray,
    rng: np.random.Generator,
    channel: Channel,
    max_rounds: int,
) -> BatchExecutionResult:
    """Advance trials grouped by shared observation history.

    Each group is ``(session, trial indices)``; all members have fed the
    session an identical observation sequence, so the session's next
    probability is valid for every one of them.  After the round's draw a
    group splits at most once (collision vs silence on CD channels; no-CD
    groups never split), the representative session is reused for one
    branch and deep-copied for the other.
    """
    trials = ks.size
    solved = np.zeros(trials, dtype=bool)
    rounds = np.zeros(trials, dtype=np.int64)
    groups: list[tuple[UniformSession, np.ndarray]] = [
        (protocol.session(), np.arange(trials))
    ]
    for round_index in range(1, max_rounds + 1):
        next_groups: list[tuple[UniformSession, np.ndarray]] = []
        for session, members in groups:
            try:
                p = session.next_probability()
            except ScheduleExhausted:
                # Clean one-shot give-up: rounds actually played.
                rounds[members] = round_index - 1
                continue
            counts = rng.binomial(ks[members], p)
            hit = counts == 1
            winners = members[hit]
            solved[winners] = True
            rounds[winners] = round_index
            survivors = members[~hit]
            if survivors.size == 0:
                continue
            if channel.collision_detection:
                collided = counts[~hit] >= 2
                partitions = [
                    (Observation.COLLISION, survivors[collided]),
                    (Observation.SILENCE, survivors[~collided]),
                ]
            else:
                partitions = [(Observation.QUIET, survivors)]
            branches = [
                (observation, subset)
                for observation, subset in partitions
                if subset.size
            ]
            for index, (observation, subset) in enumerate(branches):
                # The representative session continues down the *last*
                # branch; earlier branches get forks taken before any
                # branch observes, so no branch sees another's history.
                branch_session = (
                    session if index == len(branches) - 1 else session.fork()
                )
                branch_session.observe(observation)
                next_groups.append((branch_session, subset))
        groups = next_groups
        if not groups:
            break
    for _, members in groups:
        rounds[members] = max_rounds
    return BatchExecutionResult(
        solved=solved, rounds=rounds, max_rounds=max_rounds, ks=ks
    )
