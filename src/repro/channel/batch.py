"""Vectorized batch execution of uniform protocols.

The scalar engine (:mod:`repro.channel.simulator`) runs one execution at a
time: a Python loop per round, one channel draw per round, per trial.
Monte Carlo estimation repeats that thousands of times.  This module
advances **all trials of a batch in lockstep** instead, one round per
iteration, retiring solved trials as it goes.

Why the batch draw is faithful (paper Section 2.2)
--------------------------------------------------
Uniform protocols are identity-oblivious: in every round all ``k``
participants transmit independently with the *same* probability ``p``, so
the channel state of the round is **exactly** ``Binomial(k, p)`` - which
participants transmitted is irrelevant to both the channel outcome and the
protocol's future behaviour.  Moreover the engines never consume the count
itself, only the trichotomy silence / success / collision, whose exact
probabilities are ``(1-p)^k``, ``kp(1-p)^(k-1)`` and the remainder.  A
round of a trial is therefore simulated exactly by **one uniform draw**
``u`` compared against those two precomputed band edges - the same
distribution as drawing the binomial count, computed with one vectorized
``rng.random`` call over the still-live trials instead of per-trial
Python-level calls.  (This mirrors how round-driven network simulators
batch their event loops.)

Two engines, chosen by protocol capability:

* **Schedule engine** - for protocols whose full probability sequence is
  known in advance (:meth:`~repro.core.protocol.UniformProtocol.batch_schedule`
  returns a :class:`~repro.core.protocol.BatchSchedule`; the no-CD family
  of Section 2.1).  No session objects at all: round ``r``'s success band
  is a precomputed array lookup, uniforms are pre-drawn in 16-round
  blocks per live trial, and a round costs one gather plus two
  compares.  The engine also has a
  **stacked** entry point (:func:`run_schedule_stacked`) advancing many
  *independent points* - each with its own generator, participant counts
  and schedule - through one shared round loop: point ``j``'s draws come
  from ``rngs[j]`` in exactly the order a solo run would consume them, so
  a stacked run is bit-identical per point to running the points one at a
  time (the fused sweep executor's contract), while all per-round masking
  and retirement work is amortized across the whole stack.

* **History engine** - for feedback-driven (CD) protocols with
  deterministic sessions.  All players of a CD execution see the same
  collision history ``b_1 b_2 ... b_r``, and a uniform CD algorithm is a
  deterministic function of that history (Section 2.1) - so two trials
  with identical histories will use identical probabilities forever until
  their histories diverge.  The engine keeps one representative session
  per distinct history, advancing *groups* of trials: each round costs one
  ``next_probability()`` call per live group plus one vectorized binomial
  draw per group, instead of per-trial session machinery.  On a no-CD
  channel every observation is ``QUIET``, so there is exactly one group
  and the engine degenerates to the schedule engine with a live session.

Both match the scalar engine's termination conventions exactly: a trial
retires at its first single-transmitter round (``rounds`` = that 1-based
round), at schedule exhaustion (``solved=False``, ``rounds`` = rounds
actually played) or at the budget (``solved=False``, ``rounds =
max_rounds``).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.feedback import Observation
from ..core.protocol import (
    BatchSchedule,
    ScheduleExhausted,
    UniformProtocol,
    UniformSession,
)
from .channel import Channel
from .simulator import DEFAULT_MAX_ROUNDS, _check_channel
from .trace import BatchExecutionResult

__all__ = ["run_uniform_batch", "run_schedule_stacked", "is_batchable"]


def is_batchable(protocol: UniformProtocol) -> bool:
    """Whether :func:`run_uniform_batch` can execute ``protocol``.

    True when the protocol either publishes its schedule in advance or
    guarantees deterministic (history-driven) sessions; the Monte Carlo
    harness uses this to auto-select the batch substrate and fall back to
    the scalar reference loop otherwise.
    """
    return (
        protocol.batch_schedule() is not None or protocol.deterministic_sessions
    )


def _validated_ks(ks: Sequence[int] | np.ndarray) -> np.ndarray:
    array = np.asarray(ks, dtype=np.int64)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("ks must be a non-empty 1-d array of trial sizes")
    if (array < 1).any():
        raise ValueError("participant counts must all be >= 1")
    return array


def run_uniform_batch(
    protocol: UniformProtocol,
    ks: Sequence[int] | np.ndarray,
    rng: np.random.Generator,
    *,
    channel: Channel,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> BatchExecutionResult:
    """Execute one uniform-protocol trial per entry of ``ks``, in lockstep.

    The batch counterpart of :func:`repro.channel.simulator.run_uniform`:
    ``ks[i]`` is trial ``i``'s participant count, and entry ``i`` of the
    returned :class:`~repro.channel.trace.BatchExecutionResult` is
    distributed exactly as a scalar execution with that count (see the
    module docstring for why).  Raises :class:`ValueError` for protocols
    that are not :func:`is_batchable` - callers wanting transparent
    fallback should test the capability first.
    """
    ks = _validated_ks(ks)
    if max_rounds < 1:
        raise ValueError(f"round budget must be >= 1, got {max_rounds}")
    _check_channel(protocol.requires_collision_detection, channel)

    schedule = protocol.batch_schedule()
    if schedule is not None:
        return _run_schedule_batch(schedule, ks, rng, max_rounds)
    if not protocol.deterministic_sessions:
        raise ValueError(
            f"protocol {protocol.name!r} has randomized sessions; use the "
            "scalar engine (run_uniform) instead"
        )
    return _run_history_batch(protocol, ks, rng, channel, max_rounds)


def _run_schedule_batch(
    schedule: BatchSchedule,
    ks: np.ndarray,
    rng: np.random.Generator,
    max_rounds: int,
) -> BatchExecutionResult:
    """Advance every trial through a precomputed probability schedule.

    A one-point stacked run: the single-scenario path and the fused sweep
    path share one implementation, which is what makes a fused point
    bit-identical to its standalone re-run.
    """
    return run_schedule_stacked(
        [schedule], [ks], [rng], max_rounds=max_rounds
    )[0]


#: Rounds of success-band thresholds precomputed per table build.  Bands
#: are pure functions of (k, round probability), so the chunk size only
#: trades table-build frequency against memory - it never affects results.
_BAND_CHUNK_ROUNDS = 512

#: Rounds of uniforms pre-drawn per point at each absolute block
#: boundary (rounds 1, 1+B, 1+2B, ...).  Part of the engine's stream
#: contract: a trial that retires mid-block leaves its remaining
#: pre-drawn uniforms unused (discarding i.i.d. draws is
#: distribution-neutral), and a point stops drawing entirely once all
#: its trials have retired.  Because boundaries are absolute and the
#: draw shape depends only on the point's own live count and horizon,
#: stacked and solo runs consume identical per-point streams.
_DRAW_BLOCK_ROUNDS = 16


def _success_bands(
    schedule: BatchSchedule,
    unique_ks: np.ndarray,
    start_round: int,
    length: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Success-band edges for ``length`` rounds from ``start_round``.

    Returns ``(lo, hi)`` of shape ``(length, unique_ks.size)``: round
    ``start_round + i`` of a ``k = unique_ks[c]`` trial succeeds iff its
    uniform draw lands in ``[lo[i, c], hi[i, c])``, where
    ``lo = (1-p)^k`` (the silence mass) and ``hi - lo = kp(1-p)^(k-1)``
    (the exactly-one-transmitter mass).  Rounds past a one-shot schedule's
    end clamp to the last scheduled round; the engine retires those trials
    before ever reading such a row.
    """
    probabilities = np.asarray(schedule.probabilities, dtype=float)
    indices = start_round - 1 + np.arange(length)
    if schedule.cycle:
        indices %= probabilities.size
    else:
        indices = np.minimum(indices, probabilities.size - 1)
    p = probabilities[indices][:, None]
    ks = unique_ks[None, :]
    miss = 1.0 - p
    lo = miss**ks
    hi = lo + ks * p * miss ** (ks - 1)
    return lo, hi


def run_schedule_stacked(
    schedules: Sequence[BatchSchedule],
    ks_list: Sequence[np.ndarray],
    rngs: Sequence[np.random.Generator],
    *,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> list[BatchExecutionResult]:
    """Advance many independent schedule-protocol points in one loop.

    Point ``j`` is a whole Monte Carlo batch (schedule, per-trial
    participant counts, own generator); entry ``j`` of the returned list
    is **bit-identical** to ``run_uniform_batch`` on that point alone:
    point ``j`` draws from ``rngs[j]`` in :data:`_DRAW_BLOCK_ROUNDS`-round
    blocks whose boundaries are absolute and whose shapes depend only on
    the point's own live count and horizon, so a solo run consumes the
    identical stream, and a point stops consuming randomness at the
    first block boundary after its last trial retires.  Stacking changes
    only *where* the per-round bookkeeping happens - once over the flat
    ``(point, trial)`` rows instead of per point - which is the fused
    sweep executor's wall-clock lever on dense grids.
    """
    points = len(schedules)
    if not (points == len(ks_list) == len(rngs)):
        raise ValueError(
            f"stacked run needs one schedule, ks array and rng per point; "
            f"got {points}/{len(ks_list)}/{len(rngs)}"
        )
    if points == 0:
        raise ValueError("stacked run needs at least one point")
    if max_rounds < 1:
        raise ValueError(f"round budget must be >= 1, got {max_rounds}")
    ks_arrays = [_validated_ks(ks) for ks in ks_list]
    trials = np.asarray([ks.size for ks in ks_arrays])
    horizons = np.asarray([s.horizon(max_rounds) for s in schedules])

    total = int(trials.sum())
    solved = np.zeros(total, dtype=bool)
    rounds = np.zeros(total, dtype=np.int64)

    # Success bands depend only on (point, k): index the distinct pairs
    # once ("combos") so each round's thresholds are two row gathers.
    unique_ks: list[np.ndarray] = []
    flat_cidx = np.empty(total, dtype=np.int64)
    combo_offset = 0
    cursor = 0
    for ks in ks_arrays:
        uniques, inverse = np.unique(ks, return_inverse=True)
        unique_ks.append(uniques.astype(float))
        flat_cidx[cursor : cursor + ks.size] = inverse + combo_offset
        combo_offset += uniques.size
        cursor += ks.size

    # Live rows, grouped by point in point order (each point's rows stay
    # in trial order, exactly the order a solo run draws them in).
    flat_trial = np.arange(total)
    flat_point = np.repeat(np.arange(points), trials)
    counts = trials.copy()

    horizon_steps = set(int(h) for h in horizons)
    lo_table = hi_table = None
    chunk_base = 0  # bands cover rounds (chunk_base, chunk_base + length]
    draw_buffer = np.empty((0, 0))
    buffer_row = np.arange(total)  # rewritten at the first block boundary

    for round_index in range(1, int(horizons.max()) + 1):
        # Retire whole points whose (one-shot) horizon just ended: their
        # surviving trials censor at rounds-actually-played = horizon.
        if round_index - 1 in horizon_steps:
            expired = horizons[flat_point] < round_index
            if expired.any():
                gone = flat_trial[expired]
                rounds[gone] = horizons[flat_point[expired]]
                keep = ~expired
                flat_trial = flat_trial[keep]
                flat_point = flat_point[keep]
                flat_cidx = flat_cidx[keep]
                buffer_row = buffer_row[keep]
                counts = np.bincount(flat_point, minlength=points)
        if flat_trial.size == 0:
            break

        if lo_table is None or round_index > chunk_base + lo_table.shape[0]:
            chunk_base = round_index - 1
            length = min(_BAND_CHUNK_ROUNDS, int(horizons.max()) - chunk_base)
            blocks = [
                _success_bands(schedule, uniques, round_index, length)
                for schedule, uniques in zip(schedules, unique_ks)
            ]
            lo_table = np.concatenate([lo for lo, _ in blocks], axis=1)
            hi_table = np.concatenate([hi for _, hi in blocks], axis=1)
        row = round_index - chunk_base - 1
        lo = lo_table[row]
        hi = hi_table[row]

        # Uniform draws come in *absolute* blocks of _DRAW_BLOCK_ROUNDS
        # rounds: at each block boundary every live point pre-draws one
        # row of uniforms per live trial (clipped to its own horizon)
        # from its own generator.  Block boundaries and per-point shapes
        # depend only on the point's own trajectory, so a solo run
        # consumes the identical stream; between boundaries a round costs
        # one gather instead of one generator call per point.
        column = (round_index - 1) % _DRAW_BLOCK_ROUNDS
        if column == 0:
            width = min(
                _DRAW_BLOCK_ROUNDS, int(horizons.max()) - round_index + 1
            )
            draw_buffer = np.empty((flat_trial.size, width))
            buffer_row = np.arange(flat_trial.size)
            start = 0
            for point in np.flatnonzero(counts):
                stop = start + counts[point]
                effective = min(
                    _DRAW_BLOCK_ROUNDS, int(horizons[point]) - round_index + 1
                )
                draw_buffer[start:stop, :effective] = rngs[point].random(
                    (stop - start, effective)
                )
                start = stop
        draws = draw_buffer[buffer_row, column]

        hit = (draws >= lo[flat_cidx]) & (draws < hi[flat_cidx])
        if hit.any():
            winners = flat_trial[hit]
            solved[winners] = True
            rounds[winners] = round_index
            keep = ~hit
            flat_trial = flat_trial[keep]
            flat_point = flat_point[keep]
            flat_cidx = flat_cidx[keep]
            buffer_row = buffer_row[keep]
            counts = np.bincount(flat_point, minlength=points)

    # Whatever survives was right-censored: by the budget (rounds played =
    # max_rounds) or by one-shot exhaustion (rounds played = schedule
    # length), matching the scalar engine's ExecutionResult convention.
    rounds[flat_trial] = horizons[flat_point]

    results = []
    cursor = 0
    for point, ks in enumerate(ks_arrays):
        stop = cursor + ks.size
        results.append(
            BatchExecutionResult(
                solved=solved[cursor:stop],
                rounds=rounds[cursor:stop],
                max_rounds=max_rounds,
                ks=ks,
            )
        )
        cursor = stop
    return results


def _run_history_batch(
    protocol: UniformProtocol,
    ks: np.ndarray,
    rng: np.random.Generator,
    channel: Channel,
    max_rounds: int,
) -> BatchExecutionResult:
    """Advance trials grouped by shared observation history.

    Each group is ``(session, trial indices)``; all members have fed the
    session an identical observation sequence, so the session's next
    probability is valid for every one of them.  After the round's draw a
    group splits at most once (collision vs silence on CD channels; no-CD
    groups never split), the representative session is reused for one
    branch and deep-copied for the other.
    """
    trials = ks.size
    solved = np.zeros(trials, dtype=bool)
    rounds = np.zeros(trials, dtype=np.int64)
    groups: list[tuple[UniformSession, np.ndarray]] = [
        (protocol.session(), np.arange(trials))
    ]
    for round_index in range(1, max_rounds + 1):
        next_groups: list[tuple[UniformSession, np.ndarray]] = []
        for session, members in groups:
            try:
                p = session.next_probability()
            except ScheduleExhausted:
                # Clean one-shot give-up: rounds actually played.
                rounds[members] = round_index - 1
                continue
            counts = rng.binomial(ks[members], p)
            hit = counts == 1
            winners = members[hit]
            solved[winners] = True
            rounds[winners] = round_index
            survivors = members[~hit]
            if survivors.size == 0:
                continue
            if channel.collision_detection:
                collided = counts[~hit] >= 2
                partitions = [
                    (Observation.COLLISION, survivors[collided]),
                    (Observation.SILENCE, survivors[~collided]),
                ]
            else:
                partitions = [(Observation.QUIET, survivors)]
            branches = [
                (observation, subset)
                for observation, subset in partitions
                if subset.size
            ]
            for index, (observation, subset) in enumerate(branches):
                # The representative session continues down the *last*
                # branch; earlier branches get forks taken before any
                # branch observes, so no branch sees another's history.
                branch_session = (
                    session if index == len(branches) - 1 else session.fork()
                )
                branch_session.observe(observation)
                next_groups.append((branch_session, subset))
        groups = next_groups
        if not groups:
            break
    for _, members in groups:
        rounds[members] = max_rounds
    return BatchExecutionResult(
        solved=solved, rounds=rounds, max_rounds=max_rounds, ks=ks
    )
