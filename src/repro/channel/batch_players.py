"""Vectorized batch execution of identity/advice-aware player protocols.

The scalar engine (:func:`repro.channel.simulator.run_players`) keeps a
Python dict of per-player sessions and pays one ``decide()`` call per
player per round per trial - the dominant cost of every Section 3
Monte Carlo estimate.  This module advances **all trials of a batch in
lockstep** instead: protocols that implement the
:meth:`~repro.core.protocol.PlayerProtocol.batch_sessions` capability
hook hold the state of every ``(trial, player)`` pair in NumPy arrays of
shape ``(trials, players)``, so a round costs one vectorized decide (a
``rng.random(shape) < 1/window`` draw for backoff, integer compares
against scan/descent positions for the deterministic advice protocols),
one ``decisions.sum(axis=1)`` channel resolve across all live trials,
and one vectorized observe that updates state only for unsolved rows.

Faithfulness
------------
Unlike the uniform batch engines, nothing here changes the probability
model: the batch sessions run the *same* per-player state machine as the
scalar sessions, just stacked along a trial axis.  Deterministic
protocols (candidate scan, tree descent) therefore match the scalar
engine **exactly**, trial by trial; randomized protocols (backoff, the
per-player view of the randomized advice protocols) draw the same
per-player Bernoulli decisions from the same distribution, with the RNG
stream consumed in batch order - the same statistical-equivalence
contract as ``run_uniform_batch``.

Participant sets may differ in size across trials; ids are packed into a
right-padded ``(trials, players)`` array (:func:`pack_participants`) and
padded slots never transmit.  Termination conventions mirror the scalar
engine: a trial retires at its first single-transmitter round (``rounds``
= that 1-based round), at schedule exhaustion (``solved=False``,
``rounds`` = rounds actually played) or at the budget (``solved=False``,
``rounds = max_rounds``).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.advice import AdviceFunction, NullAdvice
from ..core.protocol import (
    OBS_COLLISION,
    OBS_QUIET,
    OBS_SILENCE,
    PlayerProtocol,
    ProtocolError,
)
from .channel import Channel
from .models import FB_COLLISION, FB_SILENCE, FB_SUCCESS
from .simulator import DEFAULT_MAX_ROUNDS, _check_channel
from .trace import BatchExecutionResult

__all__ = [
    "run_players_batch",
    "run_players_stacked",
    "is_player_batchable",
    "is_player_fusable",
    "pack_participants",
    "checked_advice_source",
]


def is_player_batchable(protocol: PlayerProtocol) -> bool:
    """Whether :func:`run_players_batch` can execute ``protocol``.

    Pure capability probe (no participant data needed): the Monte Carlo
    harness uses it to auto-select the batch substrate and fall back to
    the scalar reference loop otherwise, exactly like
    :func:`repro.channel.batch.is_batchable` does for uniform protocols.
    """
    return protocol.supports_batch_sessions()


def is_player_fusable(protocol: PlayerProtocol) -> bool:
    """Whether :func:`run_players_stacked` can stack ``protocol`` trials
    from *different scenario points* into one batch.

    Requires batch sessions that consume no engine randomness
    (:meth:`~repro.core.protocol.PlayerProtocol.supports_fused_sessions`):
    with nothing drawn inside the engine, a stacked run is bit-identical
    per point to running each point's batch alone, which is the fused
    sweep executor's contract.
    """
    return protocol.supports_batch_sessions() and protocol.supports_fused_sessions()


def checked_advice_source(
    protocol: PlayerProtocol, advice_function: AdviceFunction | None
) -> AdviceFunction:
    """The advice function to evaluate, with the budget contract enforced.

    ``None`` means :class:`~repro.core.advice.NullAdvice`; a mismatch
    between the protocol's declared ``advice_bits`` and the function's
    budget is an error - the pair is co-designed (Section 3.1).  Shared
    by the batch engine and the fused estimators so the contract (and
    its message) lives in one place.
    """
    advice_source = advice_function if advice_function is not None else NullAdvice()
    if advice_source.bits != protocol.advice_bits:
        raise ProtocolError(
            f"protocol expects {protocol.advice_bits} advice bits but the "
            f"advice function provides {advice_source.bits}"
        )
    return advice_source


def pack_participants(
    participant_sets: Sequence[frozenset[int]],
) -> np.ndarray:
    """Participant sets as one right-padded ``(trials, players)`` id array.

    Ids are sorted ascending within each trial (the scalar engine's fixed
    player order); trials smaller than the widest set are padded with
    ``-1``, which batch sessions treat as "no player in this slot".
    """
    if not participant_sets:
        raise ValueError("participant batch must be non-empty")
    widest = max(len(participants) for participants in participant_sets)
    ids = np.full((len(participant_sets), widest), -1, dtype=np.int64)
    for row, participants in enumerate(participant_sets):
        if not participants:
            raise ValueError("participant set must be non-empty")
        ids[row, : len(participants)] = sorted(participants)
    return ids


def run_players_batch(
    protocol: PlayerProtocol,
    participant_sets: Sequence[frozenset[int]],
    n: int,
    rng: np.random.Generator,
    *,
    channel: Channel,
    advice_function: AdviceFunction | None = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> BatchExecutionResult:
    """Execute one player-protocol trial per participant set, in lockstep.

    The batch counterpart of :func:`repro.channel.simulator.run_players`:
    entry ``i`` of the returned
    :class:`~repro.channel.trace.BatchExecutionResult` is an execution on
    ``participant_sets[i]``, with the advice function evaluated once per
    trial on its participant set (Section 3.1), exactly as the scalar
    engine does.  Raises :class:`ValueError` for protocols that are not
    :func:`is_player_batchable` - callers wanting transparent fallback
    should test the capability first.
    """
    if max_rounds < 1:
        raise ValueError(f"round budget must be >= 1, got {max_rounds}")
    _check_channel(protocol.requires_collision_detection, channel)
    ids = pack_participants(participant_sets)

    advice_source = checked_advice_source(protocol, advice_function)
    advice = tuple(
        advice_source.checked_advise(participants, n)
        for participants in participant_sets
    )
    return _drive_batch_sessions(
        protocol, ids, n, advice, rng, channel=channel, max_rounds=max_rounds
    )


def run_players_stacked(
    protocol: PlayerProtocol,
    participant_sets: Sequence[frozenset[int]],
    n: int,
    advice: Sequence[str],
    *,
    channel: Channel,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> BatchExecutionResult:
    """Execute trials of *many scenario points* as one stacked batch.

    The fused sweep executor's player substrate: the caller has already
    drawn each point's participant sets and advice strings from that
    point's own generator (in exactly the per-point order), concatenated
    them, and hands the engine pure data.  Because the protocol's batch
    sessions consume no randomness (:func:`is_player_fusable`), driving
    the concatenation through one lockstep loop produces, for every
    point's slice of trials, **bit-identical** results to running that
    point's batch alone - rows retire independently and the session state
    of one trial never reads another's.

    ``advice`` holds one pre-computed advice string per trial (aligned
    with ``participant_sets``).  Raises :class:`ValueError` for protocols
    that are not :func:`is_player_fusable`.
    """
    if max_rounds < 1:
        raise ValueError(f"round budget must be >= 1, got {max_rounds}")
    _check_channel(protocol.requires_collision_detection, channel)
    if not is_player_fusable(protocol):
        raise ValueError(
            f"protocol {protocol.name!r} has no randomness-free batch "
            "sessions; stack its points with the serial executor instead"
        )
    if len(advice) != len(participant_sets):
        raise ValueError(
            f"need one advice string per trial; got {len(advice)} for "
            f"{len(participant_sets)} trials"
        )
    ids = pack_participants(participant_sets)
    return _drive_batch_sessions(
        protocol, ids, n, tuple(advice), None, channel=channel,
        max_rounds=max_rounds,
    )


def _drive_batch_sessions(
    protocol: PlayerProtocol,
    ids: np.ndarray,
    n: int,
    advice: tuple[str, ...],
    rng: np.random.Generator | None,
    *,
    channel: Channel,
    max_rounds: int,
) -> BatchExecutionResult:
    """The shared lockstep loop behind the batch and stacked entry points."""
    trials = ids.shape[0]
    model = channel.active_model
    if model is not None and not model.player_batchable:
        raise ValueError(
            f"channel model {model.name!r} cannot run on the batch player "
            "engine (a non-zero crash rejoin delay changes the live "
            "participant set mid-trial); use the scalar engine "
            "(run_players) instead"
        )
    if model is not None and model.needs_fault_draws and rng is None:
        raise ValueError(
            f"channel model {model.name!r} draws per-round fault randomness; "
            "the stacked (fused) player engine runs without a generator - "
            "run these points through the serial executor instead"
        )
    sessions = protocol.batch_sessions(ids, n, advice, rng=rng)
    if sessions is None:
        raise ValueError(
            f"protocol {protocol.name!r} has no batch player sessions; use "
            "the scalar engine (run_players) instead"
        )
    fault_state = model.batch_state(trials) if model is not None else None

    solved = np.zeros(trials, dtype=bool)
    rounds = np.zeros(trials, dtype=np.int64)
    live = np.arange(trials)
    for round_index in range(1, max_rounds + 1):
        decisions, exhausted = sessions.decide(live)
        if exhausted.any():
            # Clean one-shot give-up: rounds actually played, like the
            # scalar engine's ScheduleExhausted handling.
            rounds[live[exhausted]] = round_index - 1
            keep = ~exhausted
            live = live[keep]
            decisions = decisions[keep]
            if fault_state is not None:
                fault_state.filter(keep)
            if live.size == 0:
                return BatchExecutionResult(
                    solved=solved, rounds=rounds, max_rounds=max_rounds,
                    ks=_ks(ids),
                )
        counts = decisions.sum(axis=1)
        if fault_state is None:
            feedback = None
            hit = counts == 1
        else:
            # Ground-truth feedback from the transmit counts, perturbed by
            # the model *after* the faithful outcome; retirement and the
            # survivors' observations follow the *delivered* feedback.
            feedback = np.where(
                counts == 0,
                FB_SILENCE,
                np.where(counts == 1, FB_SUCCESS, FB_COLLISION),
            )
            fault_draws = (
                rng.random(live.size) if model.needs_fault_draws else None
            )
            feedback = fault_state.perturb(round_index, feedback, fault_draws)
            hit = feedback == FB_SUCCESS
        winners = live[hit]
        solved[winners] = True
        rounds[winners] = round_index
        survivors = live[~hit]
        if survivors.size == 0:
            live = survivors
            break
        if not channel.collision_detection:
            observations = np.full(survivors.size, OBS_QUIET, dtype=np.int8)
        elif feedback is None:
            observations = np.where(
                counts[~hit] >= 2, OBS_COLLISION, OBS_SILENCE
            ).astype(np.int8)
        else:
            observations = np.where(
                feedback[~hit] == FB_COLLISION, OBS_COLLISION, OBS_SILENCE
            ).astype(np.int8)
        sessions.observe(survivors, observations, decisions[~hit])
        if fault_state is not None:
            fault_state.filter(~hit)
        live = survivors
    rounds[live] = max_rounds
    return BatchExecutionResult(
        solved=solved, rounds=rounds, max_rounds=max_rounds, ks=_ks(ids)
    )


def _ks(ids: np.ndarray) -> np.ndarray:
    """Per-trial participant counts from the padded id array."""
    return (ids >= 0).sum(axis=1).astype(np.int64)
