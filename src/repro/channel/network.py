"""Participant selection: the adversary's half of the model.

In the paper's setting the network size ``k`` is drawn from the size random
variable ``X`` (Section 2.2) or fixed by the analysis (Section 3), and "the
adversary only [determines] *which* ``k`` nodes participate".  Uniform
algorithms are identity-oblivious, so the choice is irrelevant for them;
the deterministic advice protocols of Section 3 are identity-sensitive, so
this module provides a family of :class:`Adversary` strategies ranging from
random to structurally worst-case id sets, used by tests and the Table 2
experiments to probe the protocols' id-dependence.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "Adversary",
    "RandomAdversary",
    "PrefixAdversary",
    "SuffixAdversary",
    "SpreadAdversary",
    "ClusteredAdversary",
    "validate_participants",
]


def validate_participants(participants: frozenset[int], n: int, k: int) -> None:
    """Check a participant set is a valid adversary output."""
    if len(participants) != k:
        raise ValueError(
            f"adversary produced {len(participants)} participants, wanted {k}"
        )
    for player_id in participants:
        if not 0 <= player_id < n:
            raise ValueError(f"player id {player_id} outside 0..{n - 1}")


class Adversary(abc.ABC):
    """Chooses which ``k`` of the ``n`` possible players participate."""

    name: str = "adversary"

    @abc.abstractmethod
    def select(self, n: int, k: int, rng: np.random.Generator) -> frozenset[int]:
        """A participant set of exactly ``k`` ids from ``0..n-1``."""

    def checked_select(
        self, n: int, k: int, rng: np.random.Generator
    ) -> frozenset[int]:
        """Like :meth:`select` with output validation."""
        if not 1 <= k <= n:
            raise ValueError(f"k must be in 1..{n}, got {k}")
        participants = self.select(n, k, rng)
        validate_participants(participants, n, k)
        return participants

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class RandomAdversary(Adversary):
    """Uniformly random ``k``-subset - the oblivious baseline."""

    name = "random"

    def select(self, n: int, k: int, rng: np.random.Generator) -> frozenset[int]:
        chosen = rng.choice(n, size=k, replace=False)
        return frozenset(int(player_id) for player_id in chosen)


class PrefixAdversary(Adversary):
    """Ids ``0..k-1``: all participants share long id prefixes.

    Benign for the minimum-id advice rule (the target sits in a small
    subtree) but stresses protocols that scan id space from the front.
    """

    name = "prefix"

    def select(self, n: int, k: int, rng: np.random.Generator) -> frozenset[int]:
        del rng
        return frozenset(range(k))


class SuffixAdversary(Adversary):
    """Ids ``n-k..n-1``: forces the deterministic no-CD scan to its end.

    With minimum-id advice and a prefix budget of ``b`` bits, the candidate
    scan inside the advised subtree visits ids in ascending order; packing
    participants at the top of the id space maximises the first success
    slot, realising the ``n / 2^b`` worst case of Section 3.2.
    """

    name = "suffix"

    def select(self, n: int, k: int, rng: np.random.Generator) -> frozenset[int]:
        del rng
        return frozenset(range(n - k, n))


class SpreadAdversary(Adversary):
    """Evenly spaced ids: one participant per id-space stripe.

    Makes every subtree of depth ``<= log2 k`` non-empty, the worst case
    for tree-descent protocols (no early empty-subtree shortcuts).
    """

    name = "spread"

    def select(self, n: int, k: int, rng: np.random.Generator) -> frozenset[int]:
        del rng
        stride = n / k
        chosen = {min(int(index * stride), n - 1) for index in range(k)}
        # Collisions from rounding are possible when k is close to n; top up
        # deterministically from the smallest unused ids.
        candidate = 0
        while len(chosen) < k:
            if candidate not in chosen:
                chosen.add(candidate)
            candidate += 1
        return frozenset(chosen)


class ClusteredAdversary(Adversary):
    """A contiguous block of ids at a random offset.

    Models spatially correlated activation (e.g. co-located sensors waking
    together); keeps the tree-descent path maximally unbalanced.
    """

    name = "clustered"

    def select(self, n: int, k: int, rng: np.random.Generator) -> frozenset[int]:
        start = int(rng.integers(0, n - k + 1))
        return frozenset(range(start, start + k))
