"""The synchronous round-by-round execution engine.

Two simulation paths, matching the two protocol families:

* :func:`run_uniform` - uniform protocols (Section 2).  All participants
  share one transmission probability per round, so the number of
  transmitters is **exactly** ``Binomial(k, p)``; drawing that binomial is
  a faithful simulation of the channel, not an approximation (identities
  are irrelevant to uniform algorithms - paper Section 2.2).  This makes
  Monte Carlo over large ``k`` cheap.

* :func:`run_players` - identity/advice-aware protocols (Section 3).  Each
  participant runs its own session; the advice function sees the
  participant set first, exactly as in Section 3.1's model.

Both halt at the first round with exactly one transmitter (the problem's
success condition) or when the round budget is spent, and both optionally
record full traces.  Each has a vectorized lockstep counterpart for Monte
Carlo throughput (:mod:`repro.channel.batch` /
:mod:`repro.channel.batch_players`); the loops here remain the reference
implementations those engines are tested against.
"""

from __future__ import annotations

import numpy as np

from ..core.feedback import Feedback
from ..core.advice import AdviceFunction, NullAdvice
from ..core.protocol import (
    PlayerProtocol,
    ProtocolError,
    ScheduleExhausted,
    UniformProtocol,
)
from .channel import Channel
from .trace import ExecutionResult, RoundRecord

__all__ = [
    "run_uniform",
    "run_players",
    "DEFAULT_MAX_ROUNDS",
]

#: Default per-execution round budget.  Generous enough that the paper's
#: algorithms terminate long before it at every experiment scale; harnesses
#: that measure *failures* set their own budget explicitly.
DEFAULT_MAX_ROUNDS = 1_000_000


def _check_channel(protocol_requires_cd: bool, channel: Channel) -> None:
    if protocol_requires_cd and not channel.collision_detection:
        raise ProtocolError(
            "protocol requires collision detection but the channel has none"
        )


def run_uniform(
    protocol: UniformProtocol,
    k: int,
    rng: np.random.Generator,
    *,
    channel: Channel,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
) -> ExecutionResult:
    """Execute a uniform protocol with ``k`` participants.

    Returns an :class:`~repro.channel.trace.ExecutionResult`; ``solved`` is
    ``False`` when the budget ran out or a one-shot schedule exhausted
    without success.

    Notes
    -----
    ``k = 1`` is permitted (the lone participant solves the problem in the
    first round it transmits); ``k = 0`` is rejected - the problem assumes
    a non-empty participant set.
    """
    if k < 1:
        raise ValueError(f"participant count must be >= 1, got {k}")
    if max_rounds < 1:
        raise ValueError(f"round budget must be >= 1, got {max_rounds}")
    _check_channel(protocol.requires_collision_detection, channel)

    model = channel.active_model
    fault = model.scalar_state() if model is not None else None
    session = protocol.session()
    trace: list[RoundRecord] = []
    for round_index in range(1, max_rounds + 1):
        try:
            probability = session.next_probability()
        except ScheduleExhausted:
            return ExecutionResult(
                solved=False,
                rounds=round_index - 1,
                max_rounds=max_rounds,
                k=k,
                trace=trace,
            )
        # Crash faults shrink the live participant count; every other
        # model leaves it at k (the FaultState default).
        k_active = fault.active_count(k, round_index) if fault is not None else k
        transmit_count = int(rng.binomial(k_active, probability))
        feedback = channel.resolve(transmit_count)
        if fault is not None:
            feedback = fault.deliver(round_index, feedback, rng)
        observation = channel.observation(feedback)
        if record_trace:
            trace.append(
                RoundRecord(
                    round_index=round_index,
                    probability=probability,
                    transmit_count=transmit_count,
                    feedback=feedback,
                    observation=observation,
                )
            )
        if feedback is Feedback.SUCCESS:
            return ExecutionResult(
                solved=True,
                rounds=round_index,
                max_rounds=max_rounds,
                k=k,
                trace=trace,
            )
        session.observe(observation)
    return ExecutionResult(
        solved=False, rounds=max_rounds, max_rounds=max_rounds, k=k, trace=trace
    )


def run_players(
    protocol: PlayerProtocol,
    participants: frozenset[int],
    n: int,
    rng: np.random.Generator,
    *,
    channel: Channel,
    advice_function: AdviceFunction | None = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    record_trace: bool = False,
) -> ExecutionResult:
    """Execute an identity-aware protocol on an explicit participant set.

    The advice function (default: :class:`~repro.core.advice.NullAdvice`)
    is evaluated once on the participant set and its output handed to every
    player session, following Section 3.1.  A mismatch between the
    protocol's declared ``advice_bits`` and the advice function's budget is
    an error: the pair is co-designed.
    """
    if not participants:
        raise ValueError("participant set must be non-empty")
    if max_rounds < 1:
        raise ValueError(f"round budget must be >= 1, got {max_rounds}")
    _check_channel(protocol.requires_collision_detection, channel)

    advice_source = advice_function if advice_function is not None else NullAdvice()
    if advice_source.bits != protocol.advice_bits:
        raise ProtocolError(
            f"protocol expects {protocol.advice_bits} advice bits but the "
            f"advice function provides {advice_source.bits}"
        )
    advice = advice_source.checked_advise(participants, n)

    # Player order is fixed (sorted) so executions are reproducible; the
    # simulation rng is handed to every session (randomized protocols draw
    # from it, deterministic ones ignore it).
    ordered = sorted(participants)
    sessions = {
        player_id: protocol.session(player_id, n, advice, rng=rng)
        for player_id in ordered
    }

    model = channel.active_model
    fault = model.scalar_state() if model is not None else None
    # Crashed players: id -> round at which they re-enter (None = never).
    # While dead a player neither decides nor observes; it rejoins with a
    # *fresh* session (a restart, not a resume).
    dead: dict[int, int | None] = {}

    trace: list[RoundRecord] = []
    for round_index in range(1, max_rounds + 1):
        if dead:
            for player_id in [
                pid
                for pid, rejoin in dead.items()
                if rejoin is not None and rejoin <= round_index
            ]:
                del dead[player_id]
                sessions[player_id] = protocol.session(
                    player_id, n, advice, rng=rng
                )
        try:
            decisions = {
                player_id: False if player_id in dead else session.decide()
                for player_id, session in sessions.items()
            }
        except ScheduleExhausted:
            return ExecutionResult(
                solved=False,
                rounds=round_index - 1,
                max_rounds=max_rounds,
                k=len(participants),
                trace=trace,
            )
        transmit_count = sum(1 for transmitted in decisions.values() if transmitted)
        feedback = channel.resolve(transmit_count)
        if fault is not None:
            feedback = fault.deliver(round_index, feedback, rng)
            if fault.take_crash():
                # The lone transmitter of this (erased) success crashed.
                crashed_id = next(
                    pid for pid, sent in decisions.items() if sent
                )
                rejoin = model.rejoin_after
                dead[crashed_id] = (
                    None if rejoin is None else round_index + rejoin + 1
                )
        observation = channel.observation(feedback)
        if record_trace:
            trace.append(
                RoundRecord(
                    round_index=round_index,
                    probability=None,
                    transmit_count=transmit_count,
                    feedback=feedback,
                    observation=observation,
                )
            )
        if feedback is Feedback.SUCCESS:
            return ExecutionResult(
                solved=True,
                rounds=round_index,
                max_rounds=max_rounds,
                k=len(participants),
                trace=trace,
            )
        for player_id, session in sessions.items():
            if player_id in dead:
                continue
            session.observe(observation, transmitted=decisions[player_id])
    return ExecutionResult(
        solved=False,
        rounds=max_rounds,
        max_rounds=max_rounds,
        k=len(participants),
        trace=trace,
    )
