"""The shared multiple-access channel.

A :class:`Channel` encodes the two channel assumptions the paper studies -
with and without collision detection - and converts per-round transmitter
counts into ground-truth :class:`~repro.core.feedback.Feedback` plus the
protocol-visible :class:`~repro.core.feedback.Observation`.

The faithful channel itself is stateless; all randomness lives in the
protocols and the simulator's RNG.  An optional fault-injecting
:class:`~repro.channel.models.ChannelModel` (jamming, noisy feedback,
player crashes) may ride along in :attr:`Channel.model`: the execution
engines consult :attr:`Channel.active_model` and, when one is present,
perturb the ground-truth feedback *after* it is resolved - the channel's
own resolve/observe mapping never changes.  Factory helpers
:func:`with_collision_detection` and :func:`without_collision_detection`
are provided for readable call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.feedback import Feedback, Observation, feedback_for_count, observe
from .models import ChannelModel

__all__ = [
    "Channel",
    "with_collision_detection",
    "without_collision_detection",
]


@dataclass(frozen=True)
class Channel:
    """A synchronous multiple-access channel.

    Attributes
    ----------
    collision_detection:
        Whether players can distinguish collisions from silence.  With
        detection, "all players (including the transmitters) detect a
        collision"; without, "players detect silence" (paper Section 1.1).
    model:
        Optional fault-injecting channel model
        (:mod:`repro.channel.models`).  ``None`` is the paper's faithful
        channel; engines read :attr:`active_model`, which also reduces
        null-parameter models (zero budget, zero probabilities) to
        ``None`` so zero-fault runs are bit-identical to faithful ones.
    """

    collision_detection: bool
    model: ChannelModel | None = None

    def resolve(self, transmit_count: int) -> Feedback:
        """Ground-truth feedback for a round with ``transmit_count`` senders."""
        return feedback_for_count(transmit_count)

    def observation(self, feedback: Feedback) -> Observation:
        """What protocols running on this channel can see of ``feedback``."""
        return observe(feedback, collision_detection=self.collision_detection)

    def round_observation(self, transmit_count: int) -> Observation:
        """Convenience: transmitter count straight to visible observation."""
        return self.observation(self.resolve(transmit_count))

    @property
    def kind(self) -> str:
        """Short label used in reports: ``'CD'`` or ``'no-CD'``."""
        return "CD" if self.collision_detection else "no-CD"

    @property
    def active_model(self) -> ChannelModel | None:
        """The fault model the engines must apply, or ``None``.

        Null-parameter models are reduced to ``None`` here, in one
        place, so every engine (scalar, batch, stacked/fused) treats a
        zero-fault model exactly as the faithful channel.
        """
        if self.model is None or self.model.is_null():
            return None
        return self.model

    def with_model(self, model: ChannelModel | None) -> "Channel":
        """This channel with a different (or no) fault model."""
        return replace(self, model=model)

    def model_label(self) -> str:
        """Metadata label: the active model's identity or ``'faithful'``."""
        active = self.active_model
        return active.label() if active is not None else "faithful"


def with_collision_detection(model: ChannelModel | None = None) -> Channel:
    """The CD channel of Sections 2.4/2.6 and the CD rows of Tables 1-2."""
    return Channel(collision_detection=True, model=model)


def without_collision_detection(model: ChannelModel | None = None) -> Channel:
    """The no-CD channel of Sections 2.3/2.5 and the no-CD table rows."""
    return Channel(collision_detection=False, model=model)
