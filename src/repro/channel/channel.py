"""The shared multiple-access channel.

A :class:`Channel` encodes the two channel assumptions the paper studies -
with and without collision detection - and converts per-round transmitter
counts into ground-truth :class:`~repro.core.feedback.Feedback` plus the
protocol-visible :class:`~repro.core.feedback.Observation`.

The channel itself is stateless; all randomness lives in the protocols and
the simulator's RNG.  Factory helpers :func:`with_collision_detection` and
:func:`without_collision_detection` are provided for readable call sites.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.feedback import Feedback, Observation, feedback_for_count, observe

__all__ = [
    "Channel",
    "with_collision_detection",
    "without_collision_detection",
]


@dataclass(frozen=True)
class Channel:
    """A synchronous multiple-access channel.

    Attributes
    ----------
    collision_detection:
        Whether players can distinguish collisions from silence.  With
        detection, "all players (including the transmitters) detect a
        collision"; without, "players detect silence" (paper Section 1.1).
    """

    collision_detection: bool

    def resolve(self, transmit_count: int) -> Feedback:
        """Ground-truth feedback for a round with ``transmit_count`` senders."""
        return feedback_for_count(transmit_count)

    def observation(self, feedback: Feedback) -> Observation:
        """What protocols running on this channel can see of ``feedback``."""
        return observe(feedback, collision_detection=self.collision_detection)

    def round_observation(self, transmit_count: int) -> Observation:
        """Convenience: transmitter count straight to visible observation."""
        return self.observation(self.resolve(transmit_count))

    @property
    def kind(self) -> str:
        """Short label used in reports: ``'CD'`` or ``'no-CD'``."""
        return "CD" if self.collision_detection else "no-CD"


def with_collision_detection() -> Channel:
    """The CD channel of Sections 2.4/2.6 and the CD rows of Tables 1-2."""
    return Channel(collision_detection=True)


def without_collision_detection() -> Channel:
    """The no-CD channel of Sections 2.3/2.5 and the no-CD table rows."""
    return Channel(collision_detection=False)
