"""Adversarial channel models: fault injection between truth and observation.

The faithful :class:`~repro.channel.channel.Channel` maps the round's
transmitter count straight to ground-truth feedback.  A
:class:`ChannelModel` sits between that ground truth and what the
execution engines deliver to the protocols, injecting faults drawn from
the adversarial contention-resolution literature:

* :class:`ObliviousJammer` - a budgeted adversary that fixes its jam
  schedule before the execution starts (round ``start``, then every
  ``period`` rounds, until ``budget`` jams are spent).  A jammed round is
  delivered as a collision whatever actually happened - including
  destroying a success.
* :class:`ReactiveJammer` - a budgeted adversary that listens: after
  ``quiet_streak`` consecutive *delivered* silent rounds it jams the next
  round (spending one unit of budget), modelling a jammer that waits for
  the protocol to thin out before striking.
* :class:`NoisyChannel` - unreliable feedback: each round, independently,
  silence is reported as a collision with probability
  ``silence_to_collision``, a collision as silence with probability
  ``collision_to_silence``, and a success is erased (delivered as
  silence; the execution does *not* halt) with probability
  ``success_erasure``.
* :class:`CrashModel` - a crash/restart fault: when a round has exactly
  one transmitter, that transmitter crashes with probability
  ``probability`` - its message is lost (the round is delivered as
  silence).  With ``rejoin_after = 0`` the player itself survives (a pure
  message-loss fault); with ``rejoin_after = d > 0`` it leaves the
  execution for ``d`` rounds and rejoins with a fresh session; with
  ``rejoin_after = None`` it never returns.
* :class:`AdaptiveAdversary` - the full-information adversary of the
  adversarial contention-resolution literature: its per-trial state
  observes the entire delivered-feedback history *and* the faithful
  outcome of the current round, and decides whether to spend one unit of
  a ``budget`` jamming the round, via a pluggable strategy from the
  :data:`ADAPTIVE_STRATEGIES` registry (``greedy`` success suppression,
  ``streak`` targeting, front-/back-loaded ``scheduler``).  All built-in
  strategies are deterministic functions of the history, so the model
  consumes no randomness and runs **bit-identically** on every engine.

Engine contract
---------------
Every model exposes two execution-side views:

* :meth:`ChannelModel.scalar_state` - a scalar :class:`FaultState` consumed by
  the reference loops in :mod:`repro.channel.simulator`; one state per
  execution, ``deliver()`` called once per round on the ground-truth
  feedback.
* :meth:`ChannelModel.batch_state` - a vectorized
  :class:`BatchFaultState` consumed by the lockstep engines; one state
  per batch, ``perturb()`` called once per round on the live trials'
  feedback-code array *after* the faithful trichotomy outcome was drawn,
  so the band-sampling contract of :mod:`repro.channel.batch` is
  untouched.  Models whose faults are random
  (:attr:`ChannelModel.needs_fault_draws`) receive one extra uniform per
  live trial per round, pre-drawn by the engine from the point's own
  generator; deterministic jammers receive ``None`` and consume no
  randomness at all.

Routing is driven by capability properties, not model names:

* :attr:`ChannelModel.batchable` - whether the stacked *uniform* engines
  can express the model.  Models that shrink the live participant count
  (:attr:`ChannelModel.shrinks_population`, the rejoin-delay crash
  variants) additionally make the engines compute per-trial band edges
  from :meth:`BatchFaultState.active_counts` instead of the static
  ``(point, k)`` tables.
* :attr:`ChannelModel.player_batchable` - whether the batch *player*
  engine can express the model.  The rejoin-delay crash variants cannot:
  the player engine holds per-``(trial, player)`` session state and has
  no vectorized leave/rejoin-with-a-fresh-session transition, so they
  route to the scalar per-player loop (the Monte Carlo router and the
  fused sweep executor honour this automatically).
* :attr:`ChannelModel.fusable` - whether the fused sweep executor may
  stack points carrying this model into one engine run.  Adaptive
  adversaries opt out: each point keeps its own adversary, solo, so the
  "one adversary per execution" reading of a stress curve stays
  unambiguous.

A model whose parameters make it a no-op (zero budget, all-zero flip
probabilities, zero crash probability) reports :meth:`ChannelModel.is_null`;
:attr:`Channel.active_model <repro.channel.channel.Channel.active_model>`
reduces such models to ``None`` so zero-fault runs are bit-identical to
faithful ones on every engine.
"""

from __future__ import annotations

import abc
from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass, fields
from typing import ClassVar

import numpy as np

from ..core.feedback import Feedback

__all__ = [
    "FB_SILENCE",
    "FB_SUCCESS",
    "FB_COLLISION",
    "FaultState",
    "BatchFaultState",
    "ChannelModel",
    "ObliviousJammer",
    "ReactiveJammer",
    "NoisyChannel",
    "CrashModel",
    "AdaptiveAdversary",
    "AdaptiveStrategy",
    "ADAPTIVE_STRATEGIES",
    "register_adaptive_strategy",
    "CHANNEL_MODELS",
    "channel_model_from_dict",
]

#: Integer feedback codes used by the vectorized engines: the ground-truth
#: trichotomy of a round.  Distinct from the OBS_* observation codes -
#: feedback is what happened, observation is what protocols may see.
FB_SILENCE = 0
FB_SUCCESS = 1
FB_COLLISION = 2

_FEEDBACK_OF_CODE = {
    FB_SILENCE: Feedback.SILENCE,
    FB_SUCCESS: Feedback.SUCCESS,
    FB_COLLISION: Feedback.COLLISION,
}
_CODE_OF_FEEDBACK = {feedback: code for code, feedback in _FEEDBACK_OF_CODE.items()}


class FaultState:
    """Scalar per-execution fault state (the reference-loop side).

    The scalar engines call :meth:`active_count` before each round's
    binomial draw (only the crash model shrinks it) and :meth:`deliver`
    on each round's ground-truth feedback; :meth:`take_crash` reports -
    and clears - a "the successful transmitter just crashed" event so the
    player loop can suspend the right session.
    """

    def active_count(self, k: int, round_index: int) -> int:
        """Live participant count for this round (crash faults shrink it)."""
        return k

    def take_crash(self) -> bool:
        """Whether the last :meth:`deliver` crashed the transmitter."""
        return False

    def deliver(
        self, round_index: int, feedback: Feedback, rng: np.random.Generator
    ) -> Feedback:
        """The feedback actually delivered to the protocol this round."""
        raise NotImplementedError


class BatchFaultState:
    """Vectorized fault state over the live trials of one batch.

    State arrays stay aligned with the engine's flat live-trial rows:
    the engine calls :meth:`filter` with the same keep-mask it applies to
    its own per-trial arrays whenever trials retire, and :meth:`perturb`
    once per round with the live trials' faithful feedback codes (which
    it may mutate in place and must return).  Models that shrink the
    live participant count (:attr:`ChannelModel.shrinks_population`)
    additionally answer :meth:`active_counts` once per round, *before*
    the round's outcome is drawn - the vectorized twin of
    :meth:`FaultState.active_count`.
    """

    def perturb(
        self,
        round_index: int,
        codes: np.ndarray,
        fault_draws: np.ndarray | None,
    ) -> np.ndarray:
        raise NotImplementedError

    def active_counts(self, ks: np.ndarray, round_index: int) -> np.ndarray:
        """Per-trial live participant counts for this round.

        The default returns ``ks`` untouched; crash states with a rejoin
        delay subtract their per-trial dead counts (re-activating players
        whose delay just elapsed).  Called exactly once per round, in
        round order, while any trial is live - the rejoin bookkeeping
        relies on never skipping a round.
        """
        return ks

    def filter(self, keep: np.ndarray) -> None:  # stateless models: no-op
        return None


class ChannelModel(abc.ABC):
    """A fault-injecting layer between ground truth and delivery.

    Concrete models are frozen dataclasses (hashable, comparable - they
    ride inside the frozen :class:`~repro.channel.channel.Channel`), and
    serialize to ``{"name": ..., "params": {...}}`` mappings that
    :func:`channel_model_from_dict` inverts exactly.
    """

    name: ClassVar[str]

    @abc.abstractmethod
    def is_null(self) -> bool:
        """Whether these parameters make the model a provable no-op."""

    @property
    def batchable(self) -> bool:
        """Whether the stacked *uniform* engines can express this model."""
        return True

    @property
    def player_batchable(self) -> bool:
        """Whether the batch *player* engine can express this model.

        Defaults to :attr:`batchable`; the rejoin-delay crash variants
        override it - the player engine has no vectorized
        leave/rejoin-with-a-fresh-session transition, so they keep the
        scalar per-player loop as their reference engine.
        """
        return self.batchable

    @property
    def shrinks_population(self) -> bool:
        """Whether the live participant count can drop mid-trial.

        When True the uniform batch engines bypass their static
        ``(point, k)`` band tables and compute per-trial band edges from
        :meth:`BatchFaultState.active_counts` each round.
        """
        return False

    @property
    def fusable(self) -> bool:
        """Whether the fused executor may stack points under this model.

        Adaptive adversaries return False: each scenario point keeps its
        own adversary and runs solo, so a stress curve's "one adversary
        per execution" reading stays unambiguous.
        """
        return True

    @property
    def needs_fault_draws(self) -> bool:
        """Whether the batch state consumes one uniform per live round."""
        return False

    @abc.abstractmethod
    def scalar_state(self) -> FaultState:
        """A fresh scalar per-execution state."""

    @abc.abstractmethod
    def batch_state(self, trials: int) -> BatchFaultState:
        """A fresh vectorized state over ``trials`` live rows."""

    @abc.abstractmethod
    def params(self) -> dict:
        """JSON-native parameter mapping (full round-trip form)."""

    def to_dict(self) -> dict:
        return {"name": self.name, "params": self.params()}

    def label(self) -> str:
        """Compact human-readable identity for metadata and tables."""
        inner = ",".join(f"{key}={value}" for key, value in self.params().items())
        return f"{self.name}({inner})"


def _check_count(value: object, what: str, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{what} must be an integer, got {value!r}")
    if value < minimum:
        raise ValueError(f"{what} must be >= {minimum}, got {value}")
    return value


def _check_probability(value: object, what: str) -> float:
    try:
        probability = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ValueError(f"{what} must be a number, got {value!r}") from None
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"{what} must be in [0, 1], got {value!r}")
    return probability


# ----------------------------------------------------------------------
# Jamming adversaries
# ----------------------------------------------------------------------


class _ObliviousJamState(FaultState):
    def __init__(self, model: "ObliviousJammer") -> None:
        self._model = model
        self.jams_used = 0

    def deliver(
        self, round_index: int, feedback: Feedback, rng: np.random.Generator
    ) -> Feedback:
        if self._model.jams_round(round_index):
            self.jams_used += 1
            return Feedback.COLLISION
        return feedback


class _ObliviousJamBatchState(BatchFaultState):
    def __init__(self, model: "ObliviousJammer") -> None:
        self._model = model
        self.jams_used = 0

    def perturb(
        self,
        round_index: int,
        codes: np.ndarray,
        fault_draws: np.ndarray | None,
    ) -> np.ndarray:
        if self._model.jams_round(round_index):
            self.jams_used += 1
            codes[:] = FB_COLLISION
        return codes


@dataclass(frozen=True)
class ObliviousJammer(ChannelModel):
    """A budgeted jammer whose round schedule is fixed in advance.

    Jams rounds ``start, start + period, start + 2*period, ...`` until
    ``budget`` jams are spent; a jammed round is delivered as a collision
    regardless of the faithful outcome.  Deterministic: consumes no
    randomness on any engine, so it stacks and fuses freely.
    """

    name: ClassVar[str] = "jam-oblivious"

    budget: int
    start: int = 1
    period: int = 1

    def __post_init__(self) -> None:
        _check_count(self.budget, "jam budget", 0)
        _check_count(self.start, "jam start round", 1)
        _check_count(self.period, "jam period", 1)

    def jams_round(self, round_index: int) -> bool:
        """Whether the fixed schedule jams this (1-based) round."""
        if self.budget == 0 or round_index < self.start:
            return False
        offset = round_index - self.start
        return offset % self.period == 0 and offset // self.period < self.budget

    def is_null(self) -> bool:
        return self.budget == 0

    def scalar_state(self) -> FaultState:
        return _ObliviousJamState(self)

    def batch_state(self, trials: int) -> BatchFaultState:
        return _ObliviousJamBatchState(self)

    def params(self) -> dict:
        return {"budget": self.budget, "start": self.start, "period": self.period}


class _ReactiveJamState(FaultState):
    def __init__(self, model: "ReactiveJammer") -> None:
        self._need = model.quiet_streak
        self.remaining = model.budget
        self.streak = 0
        self.jams_used = 0

    def deliver(
        self, round_index: int, feedback: Feedback, rng: np.random.Generator
    ) -> Feedback:
        if self.remaining > 0 and self.streak >= self._need:
            self.remaining -= 1
            self.jams_used += 1
            delivered = Feedback.COLLISION
        else:
            delivered = feedback
        self.streak = self.streak + 1 if delivered is Feedback.SILENCE else 0
        return delivered


class _ReactiveJamBatchState(BatchFaultState):
    """Per-trial streak/budget arrays - the stackable reactive jammer."""

    def __init__(self, model: "ReactiveJammer", trials: int) -> None:
        self._need = model.quiet_streak
        self.remaining = np.full(trials, model.budget, dtype=np.int64)
        self.streak = np.zeros(trials, dtype=np.int64)

    def perturb(
        self,
        round_index: int,
        codes: np.ndarray,
        fault_draws: np.ndarray | None,
    ) -> np.ndarray:
        jam = (self.remaining > 0) & (self.streak >= self._need)
        if jam.any():
            codes[jam] = FB_COLLISION
            self.remaining[jam] -= 1
        silent = codes == FB_SILENCE
        self.streak[silent] += 1
        self.streak[~silent] = 0
        return codes

    def filter(self, keep: np.ndarray) -> None:
        self.remaining = self.remaining[keep]
        self.streak = self.streak[keep]


@dataclass(frozen=True)
class ReactiveJammer(ChannelModel):
    """A budgeted jammer that strikes after a quiet streak.

    Listens to the *delivered* feedback of its own trial: once
    ``quiet_streak`` consecutive rounds were delivered silent, the next
    round is jammed (one budget unit), delivered as a collision, and the
    streak resets.  Deterministic given the trial's delivered sequence,
    so it still stacks (per-trial state arrays) and fuses; it just cannot
    share jam schedules across trials the way the oblivious variant does.
    """

    name: ClassVar[str] = "jam-reactive"

    budget: int
    quiet_streak: int = 1

    def __post_init__(self) -> None:
        _check_count(self.budget, "jam budget", 0)
        _check_count(self.quiet_streak, "quiet streak", 1)

    def is_null(self) -> bool:
        return self.budget == 0

    def scalar_state(self) -> FaultState:
        return _ReactiveJamState(self)

    def batch_state(self, trials: int) -> BatchFaultState:
        return _ReactiveJamBatchState(self, trials)

    def params(self) -> dict:
        return {"budget": self.budget, "quiet_streak": self.quiet_streak}


# ----------------------------------------------------------------------
# Adaptive (full-information) adversaries
# ----------------------------------------------------------------------


class AdaptiveStrategy(abc.ABC):
    """A pluggable jam policy of the :class:`AdaptiveAdversary`.

    Strategies are stateless singletons; all per-trial state lives in the
    array mapping returned by :meth:`init_arrays`, which the adversary's
    batch state keeps aligned with the engine's live rows (every array is
    re-indexed by ``filter``'s keep-mask).  Each round the adversary

    1. asks :meth:`jam_candidates` which live trials the strategy *wants*
       jammed, given the faithful (pre-perturbation) feedback codes - the
       full-information view: the adversary sees what the round would
       deliver before deciding;
    2. intersects that with affordability (``remaining > 0``) and
       usefulness (jamming an already-collided round is a no-op and is
       never paid for), jams, and debits the budget;
    3. hands the *delivered* codes to :meth:`observe` so history-driven
       strategies (streak targeting) track exactly what the protocol saw.

    All built-in strategies are deterministic, which is what makes the
    adversary bit-identical across the scalar and vectorized engines;
    randomized strategies would need :attr:`ChannelModel.needs_fault_draws`
    plumbing of their own.
    """

    name: ClassVar[str]

    def init_arrays(self, model: "AdaptiveAdversary", trials: int) -> dict:
        """Fresh per-trial strategy arrays (name -> 1-d ndarray)."""
        return {}

    @abc.abstractmethod
    def jam_candidates(
        self,
        model: "AdaptiveAdversary",
        arrays: dict,
        round_index: int,
        codes: np.ndarray,
    ) -> np.ndarray:
        """Boolean per-trial mask of rounds the strategy wants jammed.

        ``codes`` is the faithful feedback of the live trials; the mask
        may read *and update* the strategy arrays (e.g. arming on the
        first faithful success) but must not mutate ``codes``.
        """

    def observe(
        self,
        model: "AdaptiveAdversary",
        arrays: dict,
        round_index: int,
        delivered: np.ndarray,
    ) -> None:
        """Update strategy arrays from the round's *delivered* codes."""
        return None


class _GreedyStrategy(AdaptiveStrategy):
    """Jam every faithful success while budget lasts.

    The canonical success-suppression adversary: with budget ``b`` it
    destroys exactly the first ``b`` would-be successes, so a protocol
    needs ``b + 1`` single-transmitter rounds to finish - the adaptive
    analogue of the oblivious jammer's ``budget + 1`` floor, but without
    ever wasting a unit on a silent or collided round.
    """

    name: ClassVar[str] = "greedy"

    def jam_candidates(
        self,
        model: "AdaptiveAdversary",
        arrays: dict,
        round_index: int,
        codes: np.ndarray,
    ) -> np.ndarray:
        return codes == FB_SUCCESS


class _StreakStrategy(AdaptiveStrategy):
    """Spend budget only on successes that look *imminent*.

    Tracks the delivered-silence streak per trial (the same signal the
    reactive jammer uses) and jams a faithful success only once the
    protocol has thinned out - ``patience`` or more consecutive delivered
    silent rounds, the regime where the next success would likely end
    the execution.  Early, lucky successes are let through; the budget
    is hoarded for the endgame.
    """

    name: ClassVar[str] = "streak"

    def init_arrays(self, model: "AdaptiveAdversary", trials: int) -> dict:
        return {"streak": np.zeros(trials, dtype=np.int64)}

    def jam_candidates(
        self,
        model: "AdaptiveAdversary",
        arrays: dict,
        round_index: int,
        codes: np.ndarray,
    ) -> np.ndarray:
        return (codes == FB_SUCCESS) & (arrays["streak"] >= model.patience)

    def observe(
        self,
        model: "AdaptiveAdversary",
        arrays: dict,
        round_index: int,
        delivered: np.ndarray,
    ) -> None:
        streak = arrays["streak"]
        silent = delivered == FB_SILENCE
        streak[silent] += 1
        streak[~silent] = 0


class _SchedulerStrategy(AdaptiveStrategy):
    """Front- or back-load the whole budget as one burst.

    ``mode="front"`` burns budget from round one, jamming every round
    that is not already a collision - a denial-of-service opening burst.
    ``mode="back"`` waits, letting the execution run untouched until the
    first faithful success appears, then arms and spends the remaining
    budget on every subsequent non-collision round - a burst timed to
    when the protocol has converged, the worst case for schedules whose
    success probability peaks once.
    """

    name: ClassVar[str] = "scheduler"

    def init_arrays(self, model: "AdaptiveAdversary", trials: int) -> dict:
        if model.mode == "front":
            return {}
        return {"armed": np.zeros(trials, dtype=bool)}

    def jam_candidates(
        self,
        model: "AdaptiveAdversary",
        arrays: dict,
        round_index: int,
        codes: np.ndarray,
    ) -> np.ndarray:
        if model.mode == "front":
            return np.ones(codes.shape, dtype=bool)
        armed = arrays["armed"]
        armed |= codes == FB_SUCCESS
        return armed.copy()


#: Strategy name -> singleton, the adaptive adversary's policy vocabulary.
ADAPTIVE_STRATEGIES: dict[str, AdaptiveStrategy] = {}


def register_adaptive_strategy(strategy: AdaptiveStrategy) -> AdaptiveStrategy:
    """Register a strategy under its ``name`` (open, like the registries
    of :mod:`repro.scenarios.registry`); returns it for chaining."""
    if strategy.name in ADAPTIVE_STRATEGIES:
        raise ValueError(f"adaptive strategy {strategy.name!r} already registered")
    ADAPTIVE_STRATEGIES[strategy.name] = strategy
    return strategy


register_adaptive_strategy(_GreedyStrategy())
register_adaptive_strategy(_StreakStrategy())
register_adaptive_strategy(_SchedulerStrategy())


class _AdaptiveBatchState(BatchFaultState):
    """Per-trial budget/strategy arrays of one adaptive adversary batch.

    The single authoritative implementation of the adversary's round
    step; the scalar :class:`_AdaptiveState` wraps a one-trial instance,
    so scalar/batch bit-identity holds by construction.  Budget
    accounting invariant (property-tested): ``remaining + spent ==
    budget`` per trial, preserved by :meth:`perturb` and :meth:`filter`.
    """

    def __init__(self, model: "AdaptiveAdversary", trials: int) -> None:
        self._model = model
        self._strategy = ADAPTIVE_STRATEGIES[model.strategy]
        self.remaining = np.full(trials, model.budget, dtype=np.int64)
        self.spent = np.zeros(trials, dtype=np.int64)
        self.arrays = self._strategy.init_arrays(model, trials)

    def perturb(
        self,
        round_index: int,
        codes: np.ndarray,
        fault_draws: np.ndarray | None,
    ) -> np.ndarray:
        jam = self._strategy.jam_candidates(
            self._model, self.arrays, round_index, codes
        )
        # Full information means no waste: never pay to jam a round that
        # is already a collision, never jam without budget.
        jam &= (self.remaining > 0) & (codes != FB_COLLISION)
        if jam.any():
            codes[jam] = FB_COLLISION
            self.remaining[jam] -= 1
            self.spent[jam] += 1
        self._strategy.observe(self._model, self.arrays, round_index, codes)
        return codes

    def filter(self, keep: np.ndarray) -> None:
        self.remaining = self.remaining[keep]
        self.spent = self.spent[keep]
        for key, array in self.arrays.items():
            self.arrays[key] = array[keep]


class _AdaptiveState(FaultState):
    """Scalar view: a one-trial batch state plus the delivered history."""

    def __init__(self, model: "AdaptiveAdversary") -> None:
        self._batch = _AdaptiveBatchState(model, 1)
        #: Full delivered-feedback history, the adversary's information
        #: set (the strategy arrays are its sufficient statistic).
        self.history: list[Feedback] = []

    @property
    def remaining(self) -> int:
        return int(self._batch.remaining[0])

    @property
    def jams_used(self) -> int:
        return int(self._batch.spent[0])

    def deliver(
        self, round_index: int, feedback: Feedback, rng: np.random.Generator
    ) -> Feedback:
        codes = np.array([_CODE_OF_FEEDBACK[feedback]], dtype=np.int64)
        delivered = self._batch.perturb(round_index, codes, None)
        out = _FEEDBACK_OF_CODE[int(delivered[0])]
        self.history.append(out)
        return out


@dataclass(frozen=True)
class AdaptiveAdversary(ChannelModel):
    """A budgeted full-information jammer with a pluggable strategy.

    The strongest adversary the channel model admits (the adaptive
    adversary of the contention-resolution robustness literature): its
    per-trial state sees the entire delivered-feedback history *and* the
    faithful outcome of the current round before deciding whether to
    spend one of ``budget`` jams turning the round into a collision.
    ``strategy`` picks the policy from :data:`ADAPTIVE_STRATEGIES`:

    * ``"greedy"`` - jam every faithful success; the tightest
      success-suppression floor (``budget + 1`` successes needed).
    * ``"streak"`` - jam a faithful success only after ``patience``
      consecutive delivered-silent rounds, hoarding budget for successes
      that look imminent.
    * ``"scheduler"`` - one burst: ``mode="front"`` from round one,
      ``mode="back"`` armed by the first faithful success.

    ``patience`` and ``mode`` are read only by their strategies and kept
    at their defaults otherwise.  All built-in strategies are
    deterministic, so the model consumes no engine randomness and runs
    bit-identically on the scalar, stacked-uniform, batch-player and
    open-system engines; it is deliberately **not** fusable - each
    scenario point keeps its own adversary and runs solo.
    """

    name: ClassVar[str] = "jam-adaptive"

    budget: int
    strategy: str = "greedy"
    patience: int = 1
    mode: str = "back"

    def __post_init__(self) -> None:
        _check_count(self.budget, "jam budget", 0)
        if self.strategy not in ADAPTIVE_STRATEGIES:
            raise ValueError(
                f"unknown adaptive strategy {self.strategy!r}; known "
                f"strategies: {', '.join(sorted(ADAPTIVE_STRATEGIES))}"
            )
        _check_count(self.patience, "streak patience", 1)
        if self.mode not in ("front", "back"):
            raise ValueError(
                f"scheduler mode must be 'front' or 'back', got {self.mode!r}"
            )

    @property
    def fusable(self) -> bool:
        return False

    def is_null(self) -> bool:
        return self.budget == 0

    def scalar_state(self) -> FaultState:
        return _AdaptiveState(self)

    def batch_state(self, trials: int) -> BatchFaultState:
        return _AdaptiveBatchState(self, trials)

    def params(self) -> dict:
        return {
            "budget": self.budget,
            "strategy": self.strategy,
            "patience": self.patience,
            "mode": self.mode,
        }


# ----------------------------------------------------------------------
# Noisy feedback
# ----------------------------------------------------------------------


class _NoisyState(FaultState):
    def __init__(self, model: "NoisyChannel") -> None:
        self._threshold = {
            Feedback.SILENCE: model.silence_to_collision,
            Feedback.SUCCESS: model.success_erasure,
            Feedback.COLLISION: model.collision_to_silence,
        }
        self._flip_to = {
            Feedback.SILENCE: Feedback.COLLISION,
            Feedback.SUCCESS: Feedback.SILENCE,
            Feedback.COLLISION: Feedback.SILENCE,
        }

    def deliver(
        self, round_index: int, feedback: Feedback, rng: np.random.Generator
    ) -> Feedback:
        # One uniform per round regardless of the feedback, matching the
        # batch engines' one-fault-draw-per-live-trial-per-round stream.
        if rng.random() < self._threshold[feedback]:
            return self._flip_to[feedback]
        return feedback


class _NoisyBatchState(BatchFaultState):
    def __init__(self, model: "NoisyChannel") -> None:
        # Indexed by feedback code: flip threshold and flip target.
        self._threshold = np.array(
            [
                model.silence_to_collision,
                model.success_erasure,
                model.collision_to_silence,
            ]
        )
        self._flip_to = np.array(
            [FB_COLLISION, FB_SILENCE, FB_SILENCE], dtype=np.int64
        )

    def perturb(
        self,
        round_index: int,
        codes: np.ndarray,
        fault_draws: np.ndarray | None,
    ) -> np.ndarray:
        assert fault_draws is not None
        flip = fault_draws < self._threshold[codes]
        if flip.any():
            codes[flip] = self._flip_to[codes[flip]]
        return codes


@dataclass(frozen=True)
class NoisyChannel(ChannelModel):
    """Unreliable feedback: independent per-round flips and erasures.

    Each round, after the faithful outcome is drawn: silence is reported
    as a collision with probability ``silence_to_collision``, a collision
    as silence with probability ``collision_to_silence``, and a success
    is erased - delivered as silence, execution continues - with
    probability ``success_erasure``.  Consumes one uniform per live
    trial per round on every engine.
    """

    name: ClassVar[str] = "noise"

    silence_to_collision: float = 0.0
    collision_to_silence: float = 0.0
    success_erasure: float = 0.0

    def __post_init__(self) -> None:
        for field in fields(self):
            _check_probability(getattr(self, field.name), field.name.replace("_", " "))

    @property
    def needs_fault_draws(self) -> bool:
        return True

    def is_null(self) -> bool:
        return (
            self.silence_to_collision == 0.0
            and self.collision_to_silence == 0.0
            and self.success_erasure == 0.0
        )

    def scalar_state(self) -> FaultState:
        return _NoisyState(self)

    def batch_state(self, trials: int) -> BatchFaultState:
        return _NoisyBatchState(self)

    def params(self) -> dict:
        return {
            "silence_to_collision": self.silence_to_collision,
            "collision_to_silence": self.collision_to_silence,
            "success_erasure": self.success_erasure,
        }


# ----------------------------------------------------------------------
# Player crashes
# ----------------------------------------------------------------------


class _CrashState(FaultState):
    def __init__(self, model: "CrashModel") -> None:
        self._q = model.probability
        self._rejoin_after = model.rejoin_after
        self.dead = 0
        self._rejoins: deque[int] = deque()  # absolute re-activation rounds
        self._crashed_now = False

    def active_count(self, k: int, round_index: int) -> int:
        while self._rejoins and self._rejoins[0] <= round_index:
            self._rejoins.popleft()
            self.dead -= 1
        return max(k - self.dead, 0)

    def take_crash(self) -> bool:
        crashed, self._crashed_now = self._crashed_now, False
        return crashed

    def deliver(
        self, round_index: int, feedback: Feedback, rng: np.random.Generator
    ) -> Feedback:
        if feedback is not Feedback.SUCCESS:
            return feedback
        if rng.random() >= self._q:
            return feedback
        if self._rejoin_after != 0:
            # rejoin_after = 0 is pure message loss: the player survives.
            self._crashed_now = True
            self.dead += 1
            if self._rejoin_after is not None:
                self._rejoins.append(round_index + self._rejoin_after + 1)
        return Feedback.SILENCE


class _CrashBatchState(BatchFaultState):
    """The ``rejoin_after = 0`` crash: exactly a success erasure."""

    def __init__(self, model: "CrashModel") -> None:
        self._q = model.probability

    def perturb(
        self,
        round_index: int,
        codes: np.ndarray,
        fault_draws: np.ndarray | None,
    ) -> np.ndarray:
        assert fault_draws is not None
        crash = (codes == FB_SUCCESS) & (fault_draws < self._q)
        if crash.any():
            codes[crash] = FB_SILENCE
        return codes


class _CrashRejoinBatchState(BatchFaultState):
    """The rejoin-delay crash on the uniform batch engines.

    Per-trial dead counts plus (for finite delays) a rejoin ring buffer:
    a crash at round ``r`` schedules its re-activation at round
    ``r + d + 1`` - exactly the scalar :class:`_CrashState` arithmetic -
    by writing slot ``(r + d + 1) % (d + 2)`` of the trial's ring.  The
    ring has ``d + 2`` slots, so a slot written at ``r`` is next read
    precisely at ``r + d + 1`` (and a later crash cannot reuse it before
    then); :meth:`active_counts`, called once per round before the
    round's draw, pops the due slot and shrinks nothing else.

    One fault uniform is consumed per live trial per round (the batch
    pre-draw stream), whereas the scalar loop draws only on successful
    rounds - so scalar/batch agreement is statistical, not bit-exact,
    with the scalar loop as the correctness oracle (the same contract as
    the randomized noise model).
    """

    def __init__(self, model: "CrashModel", trials: int) -> None:
        self._q = model.probability
        self._delay = model.rejoin_after  # None (never returns) or > 0
        self.dead = np.zeros(trials, dtype=np.int64)
        self._ring = (
            np.zeros((trials, self._delay + 2), dtype=np.int64)
            if self._delay is not None
            else None
        )

    def active_counts(self, ks: np.ndarray, round_index: int) -> np.ndarray:
        if self._ring is not None:
            slot = round_index % (self._delay + 2)
            due = self._ring[:, slot]
            if due.any():
                self.dead -= due
                self._ring[:, slot] = 0
        return np.maximum(ks - self.dead, 0)

    def perturb(
        self,
        round_index: int,
        codes: np.ndarray,
        fault_draws: np.ndarray | None,
    ) -> np.ndarray:
        assert fault_draws is not None
        crash = (codes == FB_SUCCESS) & (fault_draws < self._q)
        if crash.any():
            codes[crash] = FB_SILENCE
            self.dead[crash] += 1
            if self._ring is not None:
                slot = (round_index + self._delay + 1) % (self._delay + 2)
                self._ring[crash, slot] += 1
        return codes

    def filter(self, keep: np.ndarray) -> None:
        self.dead = self.dead[keep]
        if self._ring is not None:
            self._ring = self._ring[keep]


@dataclass(frozen=True)
class CrashModel(ChannelModel):
    """Crash the lone transmitter of a successful round with probability q.

    The crashed round is delivered as silence (the message is lost).
    ``rejoin_after`` controls what happens to the player itself:

    * ``0`` - the player survives; only the message was lost.  This is
      the batchable form (it is exactly a success erasure).
    * ``d > 0`` - the player leaves the execution for ``d`` rounds and
      rejoins with a **fresh** session (a restart, not a resume).
    * ``None`` (default) - the player never returns.

    Non-zero rejoin delays change the live participant count mid-trial.
    The uniform batch engines express that through
    :attr:`shrinks_population` (per-trial band edges from
    :meth:`BatchFaultState.active_counts`, with the scalar loop as the
    statistical oracle); the batch *player* engine cannot - it has no
    vectorized leave/rejoin-with-a-fresh-session transition - so those
    variants are :attr:`player_batchable` ``= False`` and route player
    protocols to the scalar per-player loop.
    """

    name: ClassVar[str] = "crash"

    probability: float
    rejoin_after: int | None = None

    def __post_init__(self) -> None:
        _check_probability(self.probability, "crash probability")
        if self.rejoin_after is not None:
            _check_count(self.rejoin_after, "rejoin delay", 0)

    @property
    def player_batchable(self) -> bool:
        return self.rejoin_after == 0

    @property
    def shrinks_population(self) -> bool:
        return self.rejoin_after != 0

    @property
    def needs_fault_draws(self) -> bool:
        return True

    def is_null(self) -> bool:
        return self.probability == 0.0

    def scalar_state(self) -> FaultState:
        return _CrashState(self)

    def batch_state(self, trials: int) -> BatchFaultState:
        if self.rejoin_after == 0:
            # Pure message loss: exactly a success erasure, stateless.
            return _CrashBatchState(self)
        return _CrashRejoinBatchState(self, trials)

    def params(self) -> dict:
        return {"probability": self.probability, "rejoin_after": self.rejoin_after}


# ----------------------------------------------------------------------
# Registry / serialization
# ----------------------------------------------------------------------

#: Model name -> constructor, the serializable channel-model vocabulary.
CHANNEL_MODELS: dict[str, type[ChannelModel]] = {
    ObliviousJammer.name: ObliviousJammer,
    ReactiveJammer.name: ReactiveJammer,
    AdaptiveAdversary.name: AdaptiveAdversary,
    NoisyChannel.name: NoisyChannel,
    CrashModel.name: CrashModel,
}


def channel_model_from_dict(data: Mapping) -> ChannelModel:
    """Build a model from its ``{"name": ..., "params": {...}}`` mapping.

    Raises :class:`ValueError` with an actionable message for unknown
    model names (listing the valid ones), unknown parameters, and
    out-of-range values; the scenario layer wraps these into
    :class:`~repro.scenarios.spec.ScenarioError` at spec-parse time so a
    malformed sweep fails before any point runs.
    """
    if not isinstance(data, Mapping):
        raise ValueError(
            f"channel model must be a mapping, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - {"name", "params"})
    if unknown:
        raise ValueError(
            f"unknown channel model field(s) {', '.join(map(repr, unknown))}; "
            "allowed: name, params"
        )
    name = data.get("name")
    if name not in CHANNEL_MODELS:
        raise ValueError(
            f"unknown channel model {name!r}; known models: "
            f"{', '.join(sorted(CHANNEL_MODELS))}"
        )
    params = data.get("params", {})
    if not isinstance(params, Mapping):
        raise ValueError(
            f"channel model params must be a mapping, got {type(params).__name__}"
        )
    constructor = CHANNEL_MODELS[name]
    allowed = [field.name for field in fields(constructor)]  # type: ignore[arg-type]
    bad = sorted(set(params) - set(allowed))
    if bad:
        raise ValueError(
            f"unknown parameter(s) {', '.join(map(repr, bad))} for channel "
            f"model {name!r}; allowed: {', '.join(allowed)}"
        )
    return constructor(**dict(params))
