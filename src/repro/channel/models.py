"""Adversarial channel models: fault injection between truth and observation.

The faithful :class:`~repro.channel.channel.Channel` maps the round's
transmitter count straight to ground-truth feedback.  A
:class:`ChannelModel` sits between that ground truth and what the
execution engines deliver to the protocols, injecting faults drawn from
the adversarial contention-resolution literature:

* :class:`ObliviousJammer` - a budgeted adversary that fixes its jam
  schedule before the execution starts (round ``start``, then every
  ``period`` rounds, until ``budget`` jams are spent).  A jammed round is
  delivered as a collision whatever actually happened - including
  destroying a success.
* :class:`ReactiveJammer` - a budgeted adversary that listens: after
  ``quiet_streak`` consecutive *delivered* silent rounds it jams the next
  round (spending one unit of budget), modelling a jammer that waits for
  the protocol to thin out before striking.
* :class:`NoisyChannel` - unreliable feedback: each round, independently,
  silence is reported as a collision with probability
  ``silence_to_collision``, a collision as silence with probability
  ``collision_to_silence``, and a success is erased (delivered as
  silence; the execution does *not* halt) with probability
  ``success_erasure``.
* :class:`CrashModel` - a crash/restart fault: when a round has exactly
  one transmitter, that transmitter crashes with probability
  ``probability`` - its message is lost (the round is delivered as
  silence).  With ``rejoin_after = 0`` the player itself survives (a pure
  message-loss fault); with ``rejoin_after = d > 0`` it leaves the
  execution for ``d`` rounds and rejoins with a fresh session; with
  ``rejoin_after = None`` it never returns.

Engine contract
---------------
Every model exposes two execution-side views:

* :meth:`ChannelModel.scalar_state` - a scalar :class:`FaultState` consumed by
  the reference loops in :mod:`repro.channel.simulator`; one state per
  execution, ``deliver()`` called once per round on the ground-truth
  feedback.
* :meth:`ChannelModel.batch_state` - a vectorized
  :class:`BatchFaultState` consumed by the lockstep engines; one state
  per batch, ``perturb()`` called once per round on the live trials'
  feedback-code array *after* the faithful trichotomy outcome was drawn,
  so the band-sampling contract of :mod:`repro.channel.batch` is
  untouched.  Models whose faults are random
  (:attr:`ChannelModel.needs_fault_draws`) receive one extra uniform per
  live trial per round, pre-drawn by the engine from the point's own
  generator; deterministic jammers receive ``None`` and consume no
  randomness at all.

:attr:`ChannelModel.batchable` is the routing capability: crash models
with a non-zero rejoin delay change the live participant count mid-trial,
which the static ``(point, k)`` band tables of the batch engines cannot
express - those models force the scalar reference loops (the Monte Carlo
router and the fused sweep executor honour this automatically).

A model whose parameters make it a no-op (zero budget, all-zero flip
probabilities, zero crash probability) reports :meth:`ChannelModel.is_null`;
:attr:`Channel.active_model <repro.channel.channel.Channel.active_model>`
reduces such models to ``None`` so zero-fault runs are bit-identical to
faithful ones on every engine.
"""

from __future__ import annotations

import abc
from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass, fields
from typing import ClassVar

import numpy as np

from ..core.feedback import Feedback

__all__ = [
    "FB_SILENCE",
    "FB_SUCCESS",
    "FB_COLLISION",
    "FaultState",
    "BatchFaultState",
    "ChannelModel",
    "ObliviousJammer",
    "ReactiveJammer",
    "NoisyChannel",
    "CrashModel",
    "CHANNEL_MODELS",
    "channel_model_from_dict",
]

#: Integer feedback codes used by the vectorized engines: the ground-truth
#: trichotomy of a round.  Distinct from the OBS_* observation codes -
#: feedback is what happened, observation is what protocols may see.
FB_SILENCE = 0
FB_SUCCESS = 1
FB_COLLISION = 2

_FEEDBACK_OF_CODE = {
    FB_SILENCE: Feedback.SILENCE,
    FB_SUCCESS: Feedback.SUCCESS,
    FB_COLLISION: Feedback.COLLISION,
}
_CODE_OF_FEEDBACK = {feedback: code for code, feedback in _FEEDBACK_OF_CODE.items()}


class FaultState:
    """Scalar per-execution fault state (the reference-loop side).

    The scalar engines call :meth:`active_count` before each round's
    binomial draw (only the crash model shrinks it) and :meth:`deliver`
    on each round's ground-truth feedback; :meth:`take_crash` reports -
    and clears - a "the successful transmitter just crashed" event so the
    player loop can suspend the right session.
    """

    def active_count(self, k: int, round_index: int) -> int:
        """Live participant count for this round (crash faults shrink it)."""
        return k

    def take_crash(self) -> bool:
        """Whether the last :meth:`deliver` crashed the transmitter."""
        return False

    def deliver(
        self, round_index: int, feedback: Feedback, rng: np.random.Generator
    ) -> Feedback:
        """The feedback actually delivered to the protocol this round."""
        raise NotImplementedError


class BatchFaultState:
    """Vectorized fault state over the live trials of one batch.

    State arrays stay aligned with the engine's flat live-trial rows:
    the engine calls :meth:`filter` with the same keep-mask it applies to
    its own per-trial arrays whenever trials retire, and :meth:`perturb`
    once per round with the live trials' faithful feedback codes (which
    it may mutate in place and must return).
    """

    def perturb(
        self,
        round_index: int,
        codes: np.ndarray,
        fault_draws: np.ndarray | None,
    ) -> np.ndarray:
        raise NotImplementedError

    def filter(self, keep: np.ndarray) -> None:  # stateless models: no-op
        return None


class ChannelModel(abc.ABC):
    """A fault-injecting layer between ground truth and delivery.

    Concrete models are frozen dataclasses (hashable, comparable - they
    ride inside the frozen :class:`~repro.channel.channel.Channel`), and
    serialize to ``{"name": ..., "params": {...}}`` mappings that
    :func:`channel_model_from_dict` inverts exactly.
    """

    name: ClassVar[str]

    @abc.abstractmethod
    def is_null(self) -> bool:
        """Whether these parameters make the model a provable no-op."""

    @property
    def batchable(self) -> bool:
        """Whether the lockstep batch engines can express this model."""
        return True

    @property
    def needs_fault_draws(self) -> bool:
        """Whether the batch state consumes one uniform per live round."""
        return False

    @abc.abstractmethod
    def scalar_state(self) -> FaultState:
        """A fresh scalar per-execution state."""

    @abc.abstractmethod
    def batch_state(self, trials: int) -> BatchFaultState:
        """A fresh vectorized state over ``trials`` live rows."""

    @abc.abstractmethod
    def params(self) -> dict:
        """JSON-native parameter mapping (full round-trip form)."""

    def to_dict(self) -> dict:
        return {"name": self.name, "params": self.params()}

    def label(self) -> str:
        """Compact human-readable identity for metadata and tables."""
        inner = ",".join(f"{key}={value}" for key, value in self.params().items())
        return f"{self.name}({inner})"


def _check_count(value: object, what: str, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{what} must be an integer, got {value!r}")
    if value < minimum:
        raise ValueError(f"{what} must be >= {minimum}, got {value}")
    return value


def _check_probability(value: object, what: str) -> float:
    try:
        probability = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ValueError(f"{what} must be a number, got {value!r}") from None
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"{what} must be in [0, 1], got {value!r}")
    return probability


# ----------------------------------------------------------------------
# Jamming adversaries
# ----------------------------------------------------------------------


class _ObliviousJamState(FaultState):
    def __init__(self, model: "ObliviousJammer") -> None:
        self._model = model
        self.jams_used = 0

    def deliver(
        self, round_index: int, feedback: Feedback, rng: np.random.Generator
    ) -> Feedback:
        if self._model.jams_round(round_index):
            self.jams_used += 1
            return Feedback.COLLISION
        return feedback


class _ObliviousJamBatchState(BatchFaultState):
    def __init__(self, model: "ObliviousJammer") -> None:
        self._model = model
        self.jams_used = 0

    def perturb(
        self,
        round_index: int,
        codes: np.ndarray,
        fault_draws: np.ndarray | None,
    ) -> np.ndarray:
        if self._model.jams_round(round_index):
            self.jams_used += 1
            codes[:] = FB_COLLISION
        return codes


@dataclass(frozen=True)
class ObliviousJammer(ChannelModel):
    """A budgeted jammer whose round schedule is fixed in advance.

    Jams rounds ``start, start + period, start + 2*period, ...`` until
    ``budget`` jams are spent; a jammed round is delivered as a collision
    regardless of the faithful outcome.  Deterministic: consumes no
    randomness on any engine, so it stacks and fuses freely.
    """

    name: ClassVar[str] = "jam-oblivious"

    budget: int
    start: int = 1
    period: int = 1

    def __post_init__(self) -> None:
        _check_count(self.budget, "jam budget", 0)
        _check_count(self.start, "jam start round", 1)
        _check_count(self.period, "jam period", 1)

    def jams_round(self, round_index: int) -> bool:
        """Whether the fixed schedule jams this (1-based) round."""
        if self.budget == 0 or round_index < self.start:
            return False
        offset = round_index - self.start
        return offset % self.period == 0 and offset // self.period < self.budget

    def is_null(self) -> bool:
        return self.budget == 0

    def scalar_state(self) -> FaultState:
        return _ObliviousJamState(self)

    def batch_state(self, trials: int) -> BatchFaultState:
        return _ObliviousJamBatchState(self)

    def params(self) -> dict:
        return {"budget": self.budget, "start": self.start, "period": self.period}


class _ReactiveJamState(FaultState):
    def __init__(self, model: "ReactiveJammer") -> None:
        self._need = model.quiet_streak
        self.remaining = model.budget
        self.streak = 0
        self.jams_used = 0

    def deliver(
        self, round_index: int, feedback: Feedback, rng: np.random.Generator
    ) -> Feedback:
        if self.remaining > 0 and self.streak >= self._need:
            self.remaining -= 1
            self.jams_used += 1
            delivered = Feedback.COLLISION
        else:
            delivered = feedback
        self.streak = self.streak + 1 if delivered is Feedback.SILENCE else 0
        return delivered


class _ReactiveJamBatchState(BatchFaultState):
    """Per-trial streak/budget arrays - the stackable reactive jammer."""

    def __init__(self, model: "ReactiveJammer", trials: int) -> None:
        self._need = model.quiet_streak
        self.remaining = np.full(trials, model.budget, dtype=np.int64)
        self.streak = np.zeros(trials, dtype=np.int64)

    def perturb(
        self,
        round_index: int,
        codes: np.ndarray,
        fault_draws: np.ndarray | None,
    ) -> np.ndarray:
        jam = (self.remaining > 0) & (self.streak >= self._need)
        if jam.any():
            codes[jam] = FB_COLLISION
            self.remaining[jam] -= 1
        silent = codes == FB_SILENCE
        self.streak[silent] += 1
        self.streak[~silent] = 0
        return codes

    def filter(self, keep: np.ndarray) -> None:
        self.remaining = self.remaining[keep]
        self.streak = self.streak[keep]


@dataclass(frozen=True)
class ReactiveJammer(ChannelModel):
    """A budgeted jammer that strikes after a quiet streak.

    Listens to the *delivered* feedback of its own trial: once
    ``quiet_streak`` consecutive rounds were delivered silent, the next
    round is jammed (one budget unit), delivered as a collision, and the
    streak resets.  Deterministic given the trial's delivered sequence,
    so it still stacks (per-trial state arrays) and fuses; it just cannot
    share jam schedules across trials the way the oblivious variant does.
    """

    name: ClassVar[str] = "jam-reactive"

    budget: int
    quiet_streak: int = 1

    def __post_init__(self) -> None:
        _check_count(self.budget, "jam budget", 0)
        _check_count(self.quiet_streak, "quiet streak", 1)

    def is_null(self) -> bool:
        return self.budget == 0

    def scalar_state(self) -> FaultState:
        return _ReactiveJamState(self)

    def batch_state(self, trials: int) -> BatchFaultState:
        return _ReactiveJamBatchState(self, trials)

    def params(self) -> dict:
        return {"budget": self.budget, "quiet_streak": self.quiet_streak}


# ----------------------------------------------------------------------
# Noisy feedback
# ----------------------------------------------------------------------


class _NoisyState(FaultState):
    def __init__(self, model: "NoisyChannel") -> None:
        self._threshold = {
            Feedback.SILENCE: model.silence_to_collision,
            Feedback.SUCCESS: model.success_erasure,
            Feedback.COLLISION: model.collision_to_silence,
        }
        self._flip_to = {
            Feedback.SILENCE: Feedback.COLLISION,
            Feedback.SUCCESS: Feedback.SILENCE,
            Feedback.COLLISION: Feedback.SILENCE,
        }

    def deliver(
        self, round_index: int, feedback: Feedback, rng: np.random.Generator
    ) -> Feedback:
        # One uniform per round regardless of the feedback, matching the
        # batch engines' one-fault-draw-per-live-trial-per-round stream.
        if rng.random() < self._threshold[feedback]:
            return self._flip_to[feedback]
        return feedback


class _NoisyBatchState(BatchFaultState):
    def __init__(self, model: "NoisyChannel") -> None:
        # Indexed by feedback code: flip threshold and flip target.
        self._threshold = np.array(
            [
                model.silence_to_collision,
                model.success_erasure,
                model.collision_to_silence,
            ]
        )
        self._flip_to = np.array(
            [FB_COLLISION, FB_SILENCE, FB_SILENCE], dtype=np.int64
        )

    def perturb(
        self,
        round_index: int,
        codes: np.ndarray,
        fault_draws: np.ndarray | None,
    ) -> np.ndarray:
        assert fault_draws is not None
        flip = fault_draws < self._threshold[codes]
        if flip.any():
            codes[flip] = self._flip_to[codes[flip]]
        return codes


@dataclass(frozen=True)
class NoisyChannel(ChannelModel):
    """Unreliable feedback: independent per-round flips and erasures.

    Each round, after the faithful outcome is drawn: silence is reported
    as a collision with probability ``silence_to_collision``, a collision
    as silence with probability ``collision_to_silence``, and a success
    is erased - delivered as silence, execution continues - with
    probability ``success_erasure``.  Consumes one uniform per live
    trial per round on every engine.
    """

    name: ClassVar[str] = "noise"

    silence_to_collision: float = 0.0
    collision_to_silence: float = 0.0
    success_erasure: float = 0.0

    def __post_init__(self) -> None:
        for field in fields(self):
            _check_probability(getattr(self, field.name), field.name.replace("_", " "))

    @property
    def needs_fault_draws(self) -> bool:
        return True

    def is_null(self) -> bool:
        return (
            self.silence_to_collision == 0.0
            and self.collision_to_silence == 0.0
            and self.success_erasure == 0.0
        )

    def scalar_state(self) -> FaultState:
        return _NoisyState(self)

    def batch_state(self, trials: int) -> BatchFaultState:
        return _NoisyBatchState(self)

    def params(self) -> dict:
        return {
            "silence_to_collision": self.silence_to_collision,
            "collision_to_silence": self.collision_to_silence,
            "success_erasure": self.success_erasure,
        }


# ----------------------------------------------------------------------
# Player crashes
# ----------------------------------------------------------------------


class _CrashState(FaultState):
    def __init__(self, model: "CrashModel") -> None:
        self._q = model.probability
        self._rejoin_after = model.rejoin_after
        self.dead = 0
        self._rejoins: deque[int] = deque()  # absolute re-activation rounds
        self._crashed_now = False

    def active_count(self, k: int, round_index: int) -> int:
        while self._rejoins and self._rejoins[0] <= round_index:
            self._rejoins.popleft()
            self.dead -= 1
        return max(k - self.dead, 0)

    def take_crash(self) -> bool:
        crashed, self._crashed_now = self._crashed_now, False
        return crashed

    def deliver(
        self, round_index: int, feedback: Feedback, rng: np.random.Generator
    ) -> Feedback:
        if feedback is not Feedback.SUCCESS:
            return feedback
        if rng.random() >= self._q:
            return feedback
        if self._rejoin_after != 0:
            # rejoin_after = 0 is pure message loss: the player survives.
            self._crashed_now = True
            self.dead += 1
            if self._rejoin_after is not None:
                self._rejoins.append(round_index + self._rejoin_after + 1)
        return Feedback.SILENCE


class _CrashBatchState(BatchFaultState):
    """The ``rejoin_after = 0`` crash: exactly a success erasure."""

    def __init__(self, model: "CrashModel") -> None:
        self._q = model.probability

    def perturb(
        self,
        round_index: int,
        codes: np.ndarray,
        fault_draws: np.ndarray | None,
    ) -> np.ndarray:
        assert fault_draws is not None
        crash = (codes == FB_SUCCESS) & (fault_draws < self._q)
        if crash.any():
            codes[crash] = FB_SILENCE
        return codes


@dataclass(frozen=True)
class CrashModel(ChannelModel):
    """Crash the lone transmitter of a successful round with probability q.

    The crashed round is delivered as silence (the message is lost).
    ``rejoin_after`` controls what happens to the player itself:

    * ``0`` - the player survives; only the message was lost.  This is
      the batchable form (it is exactly a success erasure).
    * ``d > 0`` - the player leaves the execution for ``d`` rounds and
      rejoins with a **fresh** session (a restart, not a resume).
    * ``None`` (default) - the player never returns.

    Non-zero rejoin delays change the live participant count mid-trial,
    which the static band tables of the batch engines cannot express -
    those variants are :attr:`batchable` ``= False`` and route to the
    scalar reference loops.
    """

    name: ClassVar[str] = "crash"

    probability: float
    rejoin_after: int | None = None

    def __post_init__(self) -> None:
        _check_probability(self.probability, "crash probability")
        if self.rejoin_after is not None:
            _check_count(self.rejoin_after, "rejoin delay", 0)

    @property
    def batchable(self) -> bool:
        return self.rejoin_after == 0

    @property
    def needs_fault_draws(self) -> bool:
        return True

    def is_null(self) -> bool:
        return self.probability == 0.0

    def scalar_state(self) -> FaultState:
        return _CrashState(self)

    def batch_state(self, trials: int) -> BatchFaultState:
        if not self.batchable:
            raise ValueError(
                "crash model with a non-zero rejoin delay changes the live "
                "participant count mid-trial; use the scalar engine"
            )
        return _CrashBatchState(self)

    def params(self) -> dict:
        return {"probability": self.probability, "rejoin_after": self.rejoin_after}


# ----------------------------------------------------------------------
# Registry / serialization
# ----------------------------------------------------------------------

#: Model name -> constructor, the serializable channel-model vocabulary.
CHANNEL_MODELS: dict[str, type[ChannelModel]] = {
    ObliviousJammer.name: ObliviousJammer,
    ReactiveJammer.name: ReactiveJammer,
    NoisyChannel.name: NoisyChannel,
    CrashModel.name: CrashModel,
}


def channel_model_from_dict(data: Mapping) -> ChannelModel:
    """Build a model from its ``{"name": ..., "params": {...}}`` mapping.

    Raises :class:`ValueError` with an actionable message for unknown
    model names (listing the valid ones), unknown parameters, and
    out-of-range values; the scenario layer wraps these into
    :class:`~repro.scenarios.spec.ScenarioError` at spec-parse time so a
    malformed sweep fails before any point runs.
    """
    if not isinstance(data, Mapping):
        raise ValueError(
            f"channel model must be a mapping, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - {"name", "params"})
    if unknown:
        raise ValueError(
            f"unknown channel model field(s) {', '.join(map(repr, unknown))}; "
            "allowed: name, params"
        )
    name = data.get("name")
    if name not in CHANNEL_MODELS:
        raise ValueError(
            f"unknown channel model {name!r}; known models: "
            f"{', '.join(sorted(CHANNEL_MODELS))}"
        )
    params = data.get("params", {})
    if not isinstance(params, Mapping):
        raise ValueError(
            f"channel model params must be a mapping, got {type(params).__name__}"
        )
    constructor = CHANNEL_MODELS[name]
    allowed = [field.name for field in fields(constructor)]  # type: ignore[arg-type]
    bad = sorted(set(params) - set(allowed))
    if bad:
        raise ValueError(
            f"unknown parameter(s) {', '.join(map(repr, bad))} for channel "
            f"model {name!r}; allowed: {', '.join(allowed)}"
        )
    return constructor(**dict(params))
