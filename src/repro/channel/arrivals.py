"""Arrival models: non-i.i.d. participant-count processes.

The Monte Carlo estimators accept any *size source* exposing
``sample(rng)`` / ``sample_many(rng, count)`` (the duck-typed protocol of
:mod:`repro.analysis.montecarlo`).  :class:`~repro.infotheory.distributions.
SizeDistribution` covers the i.i.d. workloads of Section 2.2; this module
adds processes whose per-trial counts are *correlated across trials* - the
adversarial arrival territory surveyed by the contention-resolution
literature that a fixed pmf cannot express.

* :class:`MarkovBurstArrivals` - a two-regime Markov-modulated activation
  model: the network idles in a *calm* regime (each of ``devices`` nodes
  awake independently with a small probability) and occasionally enters a
  *burst* regime (a correlated wake-up - alarm fan-out, synchronized
  retries - activating a large fraction).  Regime sojourns are geometric,
  so a whole batch of trials is sampled with a handful of vectorized
  draws: run lengths via ``rng.geometric``, counts via one
  ``rng.binomial`` over the per-trial rate vector.

* :class:`TraceArrivals` - replay an explicit count sequence (measured
  traces, hand-crafted adversarial schedules), cycling when the batch
  outruns the trace.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["MarkovBurstArrivals", "TraceArrivals"]

#: Counts below 2 are clamped up: contention resolution is only defined
#: for k >= 1 and the paper's distributional setting assumes k >= 2.
MIN_COUNT = 2


class MarkovBurstArrivals:
    """Bursty activation: a two-state Markov chain modulating wake-up rates.

    Each trial the process sits in the *calm* or *burst* regime; the count
    is ``Binomial(devices, rate)`` for the regime's rate, clamped into
    ``[2, devices]`` (an empty or singleton round is not a contention
    instance).  The regime persists between trials: transitions happen
    with probability ``burst_arrival`` (calm -> burst) and
    ``burst_departure`` (burst -> calm) per trial, giving geometric
    sojourn times - consecutive trials of a batch see correlated load,
    which is exactly what an i.i.d. :class:`SizeDistribution` cannot
    model.

    Parameters
    ----------
    devices:
        Population size ``n`` (counts never exceed it).
    calm_rate / burst_rate:
        Per-device activation probability in each regime.
    burst_arrival / burst_departure:
        Per-trial regime switch probabilities (``0`` pins the regime).
    start_in_burst:
        Initial regime (default calm).
    """

    def __init__(
        self,
        devices: int,
        *,
        calm_rate: float,
        burst_rate: float,
        burst_arrival: float,
        burst_departure: float,
        start_in_burst: bool = False,
        name: str | None = None,
    ) -> None:
        if devices < MIN_COUNT:
            raise ValueError(f"devices must be >= {MIN_COUNT}, got {devices}")
        for label, value in (
            ("calm_rate", calm_rate),
            ("burst_rate", burst_rate),
            ("burst_arrival", burst_arrival),
            ("burst_departure", burst_departure),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {value}")
        self.devices = devices
        self.calm_rate = float(calm_rate)
        self.burst_rate = float(burst_rate)
        self.burst_arrival = float(burst_arrival)
        self.burst_departure = float(burst_departure)
        self.start_in_burst = bool(start_in_burst)
        self._in_burst = self.start_in_burst
        self.name = name or (
            f"markov-burst(n={devices},calm={calm_rate:g},burst={burst_rate:g})"
        )

    @property
    def n(self) -> int:
        """Maximum possible count (size-source interface parity)."""
        return self.devices

    def reset(self) -> None:
        """Return the regime chain to its initial state."""
        self._in_burst = self.start_in_burst

    def _regimes(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Per-trial regime flags (True = burst) for the next ``count`` trials.

        Sampled run-by-run: a geometric sojourn in the current regime is
        one ``rng.geometric`` draw, then the regime flips - so the cost is
        proportional to the number of regime *switches*, not trials.
        """
        regimes = np.empty(count, dtype=bool)
        position = 0
        while position < count:
            leave = self.burst_departure if self._in_burst else self.burst_arrival
            if leave <= 0.0:
                # Zero switch probability pins the regime: fill the rest of
                # the batch and leave the chain state untouched.
                regimes[position:] = self._in_burst
                break
            sojourn = int(rng.geometric(leave))
            take = min(sojourn, count - position)
            regimes[position : position + take] = self._in_burst
            position += take
            if take == sojourn:
                # The sojourn completed inside this batch: switch regime.
                self._in_burst = not self._in_burst
        return regimes

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` consecutive participant counts (vectorized)."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        regimes = self._regimes(rng, count)
        rates = np.where(regimes, self.burst_rate, self.calm_rate)
        draws = rng.binomial(self.devices, rates)
        return np.clip(draws, MIN_COUNT, self.devices).astype(np.int64)

    def sample(self, rng: np.random.Generator) -> int:
        """Draw the next participant count (one chain step)."""
        return int(self.sample_many(rng, 1)[0])

    def __repr__(self) -> str:
        return f"<MarkovBurstArrivals {self.name!r}>"


class TraceArrivals:
    """Replay an explicit participant-count sequence, cycling at the end.

    Wraps measured traces or hand-built adversarial schedules as a size
    source; ``sample_many`` hands out consecutive trace entries (one
    vectorized slice, no per-trial Python work) and a cursor keeps scalar
    and batch consumption consistent.
    """

    def __init__(self, counts: Sequence[int], *, name: str = "trace") -> None:
        trace = np.asarray(list(counts), dtype=np.int64)
        if trace.ndim != 1 or trace.size == 0:
            raise ValueError("trace must be a non-empty 1-d count sequence")
        if (trace < 1).any():
            raise ValueError("trace counts must all be >= 1")
        self._trace = trace
        self._position = 0
        self.name = name

    @property
    def n(self) -> int:
        """Largest count in the trace."""
        return int(self._trace.max())

    def reset(self) -> None:
        """Rewind the replay cursor."""
        self._position = 0

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """The next ``count`` trace entries (cycling past the end)."""
        del rng  # replay is deterministic
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        indices = (self._position + np.arange(count)) % self._trace.size
        self._position = int((self._position + count) % self._trace.size)
        return self._trace[indices]

    def sample(self, rng: np.random.Generator) -> int:
        """The next trace entry."""
        return int(self.sample_many(rng, 1)[0])

    def __repr__(self) -> str:
        return f"<TraceArrivals {self.name!r} length={self._trace.size}>"
