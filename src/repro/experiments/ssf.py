"""``SSF``: strongly selective families and the non-interactive bound.

The deterministic Section 3 lower bounds rest on combinatorics this
experiment certifies directly:

* the constructions (singletons, bit family, polynomial family) are
  verified strongly selective - exhaustively at small sizes, by randomized
  refutation at larger ones;
* for tiny ``n``, exhaustive search over *all* families certifies that a
  correct non-interactive scheme needs at least ``n`` transmitter sets,
  i.e. ``b(n) >= log2 n`` advice bits (Theorem 3.3 / Theorem 3.2's
  conclusion);
* the Theorem 3.4 / 3.5 reductions are executed: the deterministic advice
  protocols are compiled into non-interactive schemes, verified correct on
  every participant set, with the advice-length accounting reported.
"""

from __future__ import annotations

import math

from ..channel.channel import with_collision_detection, without_collision_detection
from ..core.advice import MinIdPrefixAdvice
from ..lowerbounds.noninteractive import (
    exhaustive_minimum_weak_family_size,
    scheme_from_protocol,
    theorem_3_3_bound,
    verify_scheme,
)
from ..lowerbounds.selective_families import (
    bit_family,
    is_strongly_selective,
    polynomial_family,
    random_selectivity_counterexample,
    singleton_family,
    theorem_3_2_threshold,
)
from ..protocols.advice_deterministic import (
    DeterministicScanProtocol,
    DeterministicTreeDescentProtocol,
)
from ..scenarios import (
    AdviceSpec,
    ChannelSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_scenario,
)
from .base import ExperimentConfig, ExperimentResult

__all__ = ["run"]


def _reduction_exec_spec(
    config: ExperimentConfig,
    *,
    protocol_id: str,
    n: int,
    b: int,
    max_rounds: int,
    collision_detection: bool,
) -> ScenarioSpec:
    """The reduction's protocol execution as a declarative scenario point.

    A single worst-case run (the ``suffix`` adversary packs both
    participants at the top of the id space), mirroring the T2-DET cells:
    the measured solving round certifies, by execution, that the
    ``worst_case_rounds`` budget handed to the Theorem 3.4/3.5 compiler
    is sufficient.
    """
    return ScenarioSpec(
        name=f"ssf-{protocol_id}/b={b}",
        protocol=ProtocolSpec(protocol_id, {"advice_bits": b}),
        workload=WorkloadSpec("fixed", {"k": 2}),
        channel=ChannelSpec(collision_detection=collision_detection),
        advice=AdviceSpec(function="min-id-prefix", bits=b),
        adversary="suffix",
        n=n,
        trials=1,
        max_rounds=max_rounds,
        seed=config.seed,
        batch=config.batch_mode(),
    )


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = config.rng()
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}

    # --- constructions -------------------------------------------------
    for n in (8, 16):
        singles = singleton_family(n)
        checks[f"singletons are ({n},{n})-strongly selective"] = (
            is_strongly_selective(singles, n, min(n, 4))
        )
        rows.append([f"singleton({n})", n, n, len(singles), "exhaustive k<=4"])
        bits = bit_family(n)
        checks[f"bit family is ({n},2)-strongly selective"] = (
            is_strongly_selective(bits, n, 2)
        )
        rows.append([f"bit({n})", n, 2, len(bits), "exhaustive"])
    for n, k in ((16, 3), (64, 4)):
        family = polynomial_family(n, k)
        if n <= 16:
            valid = is_strongly_selective(family, n, k)
            method = "exhaustive"
        else:
            valid = (
                random_selectivity_counterexample(
                    family, n, k, rng, trials=400 if config.quick else 2000
                )
                is None
            )
            method = "randomized refuter"
        checks[f"polynomial family is ({n},{k})-strongly selective"] = valid
        rows.append([f"poly({n},{k})", n, k, len(family), method])

    # --- Theorem 3.2 / 3.3: exhaustive minimums at tiny n ---------------
    max_n = 4 if config.quick else 5
    for n in range(2, max_n + 1):
        minimum = exhaustive_minimum_weak_family_size(n, max_size=n)
        rows.append(
            [
                f"min-noninteractive({n})",
                n,
                n,
                minimum if minimum is not None else ">n",
                "exhaustive over all families",
            ]
        )
        checks[
            f"n={n}: minimal non-interactive family size == n "
            f"(=> b >= log2 n = {theorem_3_3_bound(n):.2f} bits)"
        ] = minimum == n
        checks[f"n={n}: k={n} exceeds the sqrt(2n) threshold of Thm 3.2"] = (
            n >= theorem_3_2_threshold(n)
        )

    # --- Theorem 3.4 / 3.5 reductions, executed -------------------------
    n_red = 16
    b = 2
    width = math.ceil(math.log2(n_red))

    # Budget certification on scenario points (the estimator-driven part
    # of this experiment, migrated onto the scenario API like the T2-DET
    # cells): one worst-case execution per protocol shows the compiler's
    # max_rounds budget is reachable but sufficient.
    for protocol_id, worst_case, collision_detection in (
        ("deterministic-scan", DeterministicScanProtocol(b).worst_case_rounds(n_red), False),
        ("tree-descent", DeterministicTreeDescentProtocol(b).worst_case_rounds(n_red), True),
    ):
        point = run_scenario(
            _reduction_exec_spec(
                config,
                protocol_id=protocol_id,
                n=n_red,
                b=b,
                max_rounds=worst_case + 1,
                collision_detection=collision_detection,
            ),
            rng=rng,
        )
        solved = point.success.rate == 1.0
        measured = int(point.rounds.mean) if solved else None
        rows.append(
            [
                f"{protocol_id}-exec(b={b})",
                n_red,
                2,
                f"{measured if measured is not None else '>'+str(worst_case)} rounds",
                f"scenario point ({point.engine}), suffix adversary",
            ]
        )
        checks[
            f"{protocol_id}: worst-case execution solves within the "
            f"t = {worst_case} budget handed to the reduction"
        ] = solved and measured <= worst_case

    scan = DeterministicScanProtocol(b)
    scheme, _ = scheme_from_protocol(
        scan,
        MinIdPrefixAdvice(b),
        n_red,
        without_collision_detection(),
        max_rounds=scan.worst_case_rounds(n_red),
    )
    failure = verify_scheme(scheme)
    checks[
        f"Theorem 3.4 reduction: scan(b={b}) compiles to a correct "
        f"non-interactive scheme on n={n_red}"
    ] = failure is None
    advice_bits = b + math.ceil(math.log2(scan.worst_case_rounds(n_red) + 1))
    rows.append(
        [
            "thm3.4-reduction",
            n_red,
            "-",
            f"{advice_bits} bits",
            f"b + ceil(log t) vs floor {theorem_3_3_bound(n_red):.0f}",
        ]
    )
    checks[
        "Theorem 3.4 accounting: b + ceil(log t) >= log2 n"
    ] = advice_bits >= theorem_3_3_bound(n_red) - 1e-9

    descent = DeterministicTreeDescentProtocol(b)
    scheme_cd, _ = scheme_from_protocol(
        descent,
        MinIdPrefixAdvice(b),
        n_red,
        with_collision_detection(),
        max_rounds=descent.worst_case_rounds(n_red),
    )
    failure_cd = verify_scheme(scheme_cd)
    checks[
        f"Theorem 3.5 reduction: descent(b={b}) compiles to a correct "
        f"non-interactive scheme on n={n_red}"
    ] = failure_cd is None
    advice_bits_cd = (
        b
        + math.ceil(math.log2(descent.worst_case_rounds(n_red) + 1))
        + descent.worst_case_rounds(n_red)
    )
    rows.append(
        [
            "thm3.5-reduction",
            n_red,
            "-",
            f"{advice_bits_cd} bits",
            f"b + log t + history vs floor {theorem_3_3_bound(n_red):.0f}",
        ]
    )
    checks[
        "Theorem 3.5 accounting: b + t >= log2 n (within the +log t header)"
    ] = b + descent.worst_case_rounds(n_red) >= theorem_3_3_bound(n_red) - 1e-9

    checks[f"det-CD worst case {width - b + 1} matches Table 2 log n - b + 1"] = (
        descent.worst_case_rounds(n_red) == width - b + 1
    )
    return ExperimentResult(
        experiment_id="SSF",
        title="Strongly selective families and non-interactive advice",
        reference="Definition 3.1, Theorems 3.2-3.5",
        headers=["object", "n", "k", "size / advice", "verification"],
        rows=rows,
        checks=checks,
        notes=[
            "exhaustive minimums search every family of subsets - feasible"
            f" only for n <= {max_n}; singleton families witness the minimum",
            "reductions are executed on every participant set of [n]",
        ],
    )
