"""Table 1, no-CD column: entropy scaling without collision detection.

Two experiments:

* ``T1-NCD-UP`` (:func:`run_upper`) - Theorem 2.12 / Corollary 2.15: the
  sorted-probing algorithm, fed the true distribution, solves within the
  ``O(2^{2H})`` budget with probability at least 1/16, across an entropy
  sweep ``H(c(X)) in {0, 1, ..., log2 log2 n}``.

* ``T1-NCD-LOW`` (:func:`run_lower`) - Theorem 2.4 via Lemmas 2.5 + 2.7:
  RF-Construction applied to concrete uniform schedules (decay, sorted
  probing, an adversarial random schedule) yields range-finding sequences
  whose expected solve time respects the entropy floor
  ``2^H / (4 alpha log log n)``, and whose target-distance codes respect
  the Source Coding Theorem floor ``E[len] >= H``.

The entropy dial is ``range_uniform_subset``: equal mass on ``m`` evenly
spaced ranges gives ``H = log2 m`` exactly.
"""

from __future__ import annotations

import math

from ..analysis.metrics import loglog_slope
from ..analysis.montecarlo import estimate_uniform_rounds
from ..channel.channel import without_collision_detection
from ..core.predictions import Prediction
from ..infotheory.condense import num_ranges
from ..infotheory.distributions import SizeDistribution
from ..lowerbounds.bounds import table1_nocd_lower, table1_nocd_upper
from ..lowerbounds.range_finding import default_sequence_tolerance
from ..lowerbounds.rf_construction import rf_range_finder
from ..lowerbounds.target_distance_coding import SequenceTargetDistanceCode
from ..protocols.decay import DecayProtocol
from ..protocols.sorted_probing import SortedProbingProtocol
from ..scenarios import (
    ChannelSpec,
    PredictionSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_scenario,
)
from .base import ExperimentConfig, ExperimentResult
from .pliam import exact_guesswork

__all__ = [
    "run_upper",
    "run_lower",
    "entropy_sweep_distributions",
    "entropy_sweep_range_sets",
    "entropy_workload_spec",
]

#: Success-probability floor of Theorem 2.12.
SUCCESS_FLOOR = 1.0 / 16.0

#: Tolerance multiplier for the range-finding reductions.  Lemma 2.7 only
#: guarantees existence of *some* constant alpha >= 1; alpha = 2 covers the
#: window width log2(6 log2 n) at every n used by the experiments.
RF_ALPHA = 2.0


def entropy_sweep_range_sets(n: int, *, quick: bool = False) -> list[list[int]]:
    """The range subsets behind the entropy sweep, ``m = 1, 2, 4, ..., L``.

    The declarative form of the sweep: each entry is the ``ranges``
    parameter of a ``range_uniform_subset`` workload spec (the
    distributions themselves come from :func:`entropy_sweep_distributions`
    or scenario resolution).
    """
    count = num_ranges(n)
    sets: list[list[int]] = []
    m = 1
    while m <= count:
        # Centre the selected ranges in their strides so the m=1 workload
        # is a mid-board point mass - representative of "the predictor
        # knows the size" rather than the degenerate smallest network.
        ranges = sorted(
            {
                min(count, max(1, int((2 * i + 1) * count / (2 * m) + 0.5)))
                for i in range(m)
            }
        )
        sets.append(ranges)
        m *= 4 if quick else 2
    return sets


def _sweep_name(ranges: list[int]) -> str:
    return f"H={math.log2(len(ranges)):.2f}b"


def entropy_workload_spec(ranges: list[int]) -> WorkloadSpec:
    """The scenario workload spec for one entropy-sweep range subset."""
    return WorkloadSpec(
        kind="distribution",
        params={
            "family": "range_uniform_subset",
            "ranges": list(ranges),
            "name": _sweep_name(ranges),
        },
    )


def entropy_sweep_distributions(
    n: int, *, quick: bool = False
) -> list[SizeDistribution]:
    """Workloads with ``H(c(X)) = log2 m`` for ``m = 1, 2, 4, ..., L``.

    The ``m`` selected ranges are spread evenly over ``L(n)`` so the
    workloads exercise small and large sizes alike.
    """
    return [
        SizeDistribution.range_uniform_subset(n, ranges, name=_sweep_name(ranges))
        for ranges in entropy_sweep_range_sets(n, quick=quick)
    ]


def run_upper(config: ExperimentConfig) -> ExperimentResult:
    """``T1-NCD-UP``: sorted probing within the ``2^{2H}`` budget.

    Migrated onto the scenario API: each sweep point is a declarative
    :class:`ScenarioSpec` executed by :func:`run_scenario` with the
    experiment's shared generator, which keeps the RNG stream - and hence
    the measured table - identical to the former hand-wired estimator
    calls (guarded by the scenario-equivalence tests).
    """
    rng = config.rng()
    trials = config.effective_trials()
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    entropies: list[float] = []
    mean_rounds: list[float] = []

    for ranges in entropy_sweep_range_sets(config.n, quick=config.quick):
        workload = entropy_workload_spec(ranges)
        distribution = SizeDistribution.range_uniform_subset(
            config.n, ranges, name=_sweep_name(ranges)
        )
        entropy_bits = distribution.condensed_entropy()
        budget = max(1, math.ceil(table1_nocd_upper(entropy_bits)))
        # One pass of sorted probing is at most L rounds; the budget may be
        # smaller at low entropy, which is the point of the theorem.
        estimate = run_scenario(
            ScenarioSpec(
                name=f"t1-ncd-up/{workload.params['name']}",
                protocol=ProtocolSpec("sorted-probing", {"one_shot": True}),
                prediction=PredictionSpec("truth"),
                workload=workload,
                channel=ChannelSpec(collision_detection=False),
                n=config.n,
                trials=trials,
                max_rounds=budget,
                seed=config.seed,
                batch=config.batch_mode(),
            ),
            rng=rng,
        )
        lower_shape = table1_nocd_lower(entropy_bits, config.n)
        rows.append(
            [
                distribution.name,
                entropy_bits,
                budget,
                estimate.success.rate,
                estimate.success.lower,
                estimate.rounds.mean,
                lower_shape,
            ]
        )
        entropies.append(entropy_bits)
        mean_rounds.append(max(estimate.rounds.mean, 1e-9))
        checks[
            f"H={entropy_bits:.2f}: success within 2^(2H)={budget} rounds "
            f">= 1/16 (Wilson lower bound)"
        ] = estimate.success.lower >= SUCCESS_FLOOR

    # Shape checks.  The one-shot pass is only L rounds long, so at high
    # entropy the 2^(2H) budget is slack by construction; the exponential-
    # in-entropy cost shows in the deterministic expected probe position of
    # the true range (the guesswork of the probe order), which must scale
    # linearly with 2^H for this uniform-over-m family.
    guessworks = [
        exact_guesswork(distribution)
        for distribution in entropy_sweep_distributions(
            config.n, quick=config.quick
        )
    ]
    positive = [
        (2.0**h, g) for h, g in zip(entropies, guessworks) if h > 0
    ]
    if len(positive) >= 2:
        slope = loglog_slope([x for x, _ in positive], [y for _, y in positive])
        checks[
            "expected probe position of the true range scales ~linearly "
            "with 2^H (log-log slope in [0.7, 1.3])"
        ] = 0.7 <= slope <= 1.3
    checks["mean solving rounds non-decreasing in H (within 20% noise)"] = all(
        mean_rounds[i + 1] >= 0.8 * mean_rounds[i]
        for i in range(len(mean_rounds) - 1)
    )
    return ExperimentResult(
        experiment_id="T1-NCD-UP",
        title="No-CD upper bound: sorted probing across the entropy sweep",
        reference="Theorem 2.12 / Corollary 2.15 (Table 1, no-CD upper)",
        headers=[
            "workload",
            "H(c(X)) bits",
            "budget 2^(2H)",
            "success rate",
            "success CI lo",
            "mean rounds",
            "lower shape 2^H/llog n",
        ],
        rows=rows,
        checks=checks,
        notes=[
            f"n={config.n}, trials/point={trials}, one-shot passes, Y = X",
            "success is measured within the theorem's own budget;"
            " the floor is Theorem 2.12's 1/16",
        ],
    )


def run_lower(config: ExperimentConfig) -> ExperimentResult:
    """``T1-NCD-LOW``: RF-Construction obeys the entropy floor."""
    rng = config.rng()
    channel = without_collision_detection()
    trials = max(200, config.effective_trials() // 4)
    count = num_ranges(config.n)
    tolerance = default_sequence_tolerance(config.n, RF_ALPHA)
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}

    # Schedules long enough that every workload is solved: two decay passes
    # cover all ranges; the random schedule is a shuffled double pass.
    decay = DecayProtocol(config.n)
    passes = 4
    decay_schedule = decay.schedule.cycled(passes * len(decay.schedule))

    for distribution in entropy_sweep_distributions(config.n, quick=config.quick):
        entropy_bits = distribution.condensed_entropy()
        condensed = distribution.condense()
        prediction = Prediction(distribution)
        sorted_schedule = SortedProbingProtocol(
            prediction, one_shot=False
        ).schedule.cycled(passes * count)
        shuffled = list(decay.schedule.probabilities) * passes
        rng.shuffle(shuffled)

        for label, schedule, protocol in (
            ("decay", decay_schedule, DecayProtocol(config.n)),
            (
                "sorted-probing",
                sorted_schedule,
                SortedProbingProtocol(prediction, one_shot=False),
            ),
            ("shuffled-decay", shuffled, None),
        ):
            finder = rf_range_finder(schedule, config.n, alpha=RF_ALPHA)
            expected_z = finder.expected_time(condensed)
            floor = 2.0**entropy_bits / (4.0 * tolerance)
            code = SequenceTargetDistanceCode(finder)
            expected_len = code.expected_length(condensed)
            if protocol is not None:
                algorithm_rounds = estimate_uniform_rounds(
                    protocol,
                    distribution,
                    rng,
                    channel=channel,
                    trials=trials,
                    max_rounds=64 * count,
                    batch=config.batch_mode(),
                ).rounds.mean
            else:
                algorithm_rounds = float("nan")
            rows.append(
                [
                    distribution.name,
                    label,
                    entropy_bits,
                    expected_z,
                    floor,
                    expected_len,
                    algorithm_rounds,
                ]
            )
            checks[
                f"H={entropy_bits:.2f} {label}: E[Z] >= 2^H/(4*alpha*llog n)"
                f" = {floor:.3f} (Lemma 2.5)"
            ] = expected_z >= floor - 1e-9
            checks[
                f"H={entropy_bits:.2f} {label}: code E[len] >= H "
                "(Source Coding Theorem 2.2)"
            ] = expected_len >= entropy_bits - 1e-9
            if protocol is not None and not math.isnan(algorithm_rounds):
                checks[
                    f"H={entropy_bits:.2f} {label}: E[Z] <= 2*E[alg rounds] "
                    "(Lemma 2.7)"
                ] = expected_z <= 2.0 * algorithm_rounds + 1e-6
    return ExperimentResult(
        experiment_id="T1-NCD-LOW",
        title="No-CD lower bound: RF-Construction vs the entropy floor",
        reference="Theorem 2.4 via Lemmas 2.5 and 2.7 (Table 1, no-CD lower)",
        headers=[
            "workload",
            "schedule",
            "H(c(X)) bits",
            "E[Z] range finding",
            "floor 2^H/(4a llog n)",
            "code E[len] bits",
            "E[alg rounds]",
        ],
        rows=rows,
        checks=checks,
        notes=[
            f"n={config.n}, alpha={RF_ALPHA}, tolerance={tolerance:.2f} ranges",
            "E[Z] uses the exact range-finding solve times; algorithm rounds"
            " are Monte Carlo (cycling protocols)",
        ],
    )
