"""``JAM-ROBUST``: rounds-to-success under a budgeted jamming adversary.

The paper's protocols are analysed on a faithful channel; the adversarial
contention-resolution literature it sits in asks what happens when an
adversary can force collisions for a bounded number of rounds.  This
experiment runs the CD protocols - Willard (classical baseline), decay,
and sorted probing (the Section 2.4 prediction algorithm, under clean and
range-shifted predictions) - against the oblivious jammer of
:mod:`repro.channel.models` at a ladder of budgets and records the
robustness curve: mean rounds-to-success as a function of the adversary's
budget.

Shape checks pin the curve's anatomy rather than absolute constants:

* the jam floor - the oblivious jammer forces collisions in rounds
  ``1..B``, so no trial can solve before round ``B + 1``;
* graceful degradation - every protocol still solves essentially every
  trial at the largest budget (the adversary delays, it does not kill);
* monotonicity - mean rounds never improve as the budget grows, and the
  largest budget is strictly worse than the faithful channel (budget 0,
  which the null-model reduction runs bit-identically to no model at
  all).

Every measured cell is a declarative
:class:`~repro.scenarios.spec.ScenarioSpec` carrying the channel-model
spec inline, so each cell is reproducible from its JSON serialization
alone, and the cells route through the same engine selection the
scenario CLI uses (batch history/schedule engines - the jammer is
stackable per-trial state).
"""

from __future__ import annotations

from ..scenarios import ScenarioSpec, run_scenario
from .base import ExperimentConfig, ExperimentResult

__all__ = ["run"]

_RANGES = [2, 4, 6]

_SHIFTED_PREDICTION = {
    "source": "distribution",
    "params": {
        "family": "perturbed",
        "base": {"family": "range_uniform_subset", "ranges": _RANGES},
        "shift": 3,
        "floor": 1e-6,
    },
}


def _cell_spec(
    label: str,
    protocol: dict,
    prediction: object,
    budget: int,
    *,
    n: int,
    trials: int,
    max_rounds: int,
    seed: int,
    batch: bool | None,
) -> ScenarioSpec:
    return ScenarioSpec.from_dict(
        {
            "name": f"jam-robust/{label}/budget={budget}",
            "protocol": protocol,
            "workload": {
                "kind": "distribution",
                "params": {
                    "family": "range_uniform_subset",
                    "ranges": _RANGES,
                },
            },
            "channel": {
                "collision_detection": True,
                "model": {
                    "name": "jam-oblivious",
                    "params": {"budget": budget},
                },
            },
            "prediction": prediction,
            "n": n,
            "trials": trials,
            "max_rounds": max_rounds,
            "seed": seed,
            **({"batch": batch} if batch is not None else {}),
        }
    )


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = config.rng()
    n = min(config.n, 2**10)
    trials = max(150, config.effective_trials() // 4)
    max_rounds = 512
    budgets = [0, 16] if config.quick else [0, 8, 16, 32]

    settings = [
        ("willard/truth", {"id": "willard", "params": {}}, "truth"),
        ("decay/truth", {"id": "decay", "params": {}}, "truth"),
        (
            "sorted-probing/truth",
            {"id": "sorted-probing", "params": {"one_shot": False}},
            "truth",
        ),
        (
            "sorted-probing/shifted",
            {"id": "sorted-probing", "params": {"one_shot": False}},
            _SHIFTED_PREDICTION,
        ),
    ]

    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    for label, protocol, prediction in settings:
        means: list[float] = []
        for budget in budgets:
            result = run_scenario(
                _cell_spec(
                    label,
                    protocol,
                    prediction,
                    budget,
                    n=n,
                    trials=trials,
                    max_rounds=max_rounds,
                    seed=config.seed,
                    batch=config.batch_mode(),
                ),
                rng=rng,
            )
            means.append(result.rounds.mean)
            rows.append(
                [
                    label,
                    budget,
                    result.engine,
                    result.success.rate,
                    result.rounds.mean,
                    result.rounds.p90,
                ]
            )
            if budget > 0:
                checks[
                    f"{label} budget={budget}: no success before round "
                    f"{budget + 1} (jam floor)"
                ] = result.rounds.minimum >= budget + 1
            checks[
                f"{label} budget={budget}: solves >= 90% within the budget"
            ] = result.success.rate >= 0.9
        checks[f"{label}: mean rounds never improve with more jamming"] = all(
            later >= earlier - 1e-9 for earlier, later in zip(means, means[1:])
        )
        checks[
            f"{label}: the largest budget is strictly worse than faithful"
        ] = means[-1] > means[0]
    return ExperimentResult(
        experiment_id="JAM-ROBUST",
        title="Budgeted jamming: robustness curves for the CD protocols",
        reference=(
            "adversarial-channel extension of the paper's CD protocols "
            "(prediction quality per Section 2.4)"
        ),
        headers=[
            "protocol/prediction",
            "jam budget",
            "engine",
            "success rate",
            "mean rounds",
            "p90 rounds",
        ],
        rows=rows,
        checks=checks,
        notes=[
            f"n={n}, trials/point={trials}, max_rounds={max_rounds}; "
            "oblivious jammer forces collisions in rounds 1..budget",
            "budget 0 reduces to the faithful channel (null-model "
            "reduction), anchoring each curve's baseline",
            "workload draws k from range_uniform_subset"
            f"({_RANGES}); the shifted arm feeds sorted probing "
            "systematically wrong predictions (shift 3)",
        ],
    )
