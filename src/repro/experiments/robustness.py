"""``ADVICE-ROBUST``: what faulty advice does, and what a fallback costs.

Section 3 assumes perfect advice; the paper's related-work discussion
raises the faulty-advice question explicitly.  This experiment corrupts
the advice bits of the Section 3.2 deterministic protocols and measures:

* the *bare* protocols' failure rate as corruption grows (they trust the
  advice, so a flipped prefix bit points the scan/descent at a subtree
  with no active player);
* the repaired protocols -
  :class:`~repro.protocols.restart.FallbackPlayerProtocol` grants the
  primary its worst-case budget, then switches every player to a
  know-nothing fallback (decay / Willard as per-player protocols) - which
  restore a 100% solve rate at a cost that degrades smoothly with the
  corruption level: the ski-rental-flavoured robustness the
  predictions-literature the paper cites aims for.
"""

from __future__ import annotations

from ..analysis.montecarlo import estimate_player_rounds
from ..channel.channel import with_collision_detection, without_collision_detection
from ..channel.network import RandomAdversary
from ..core.advice import MinIdPrefixAdvice
from ..core.faulty_advice import BitFlipAdvice
from ..protocols.adapters import UniformAsPlayerProtocol
from ..protocols.advice_deterministic import (
    DeterministicScanProtocol,
    DeterministicTreeDescentProtocol,
)
from ..protocols.decay import DecayProtocol
from ..protocols.restart import FallbackPlayerProtocol
from ..protocols.willard import WillardProtocol
from .base import ExperimentConfig, ExperimentResult

__all__ = ["run"]


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = config.rng()
    n = min(config.n, 2**10)  # the scan fallback path scales with n/2^b
    b = 4
    k = 6
    trials = max(150, config.effective_trials() // 4)
    adversary = RandomAdversary()
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}

    flip_levels = [0.0, 0.25] if config.quick else [0.0, 0.1, 0.25, 0.5]

    settings = [
        (
            "scan",
            DeterministicScanProtocol(b),
            UniformAsPlayerProtocol(DecayProtocol(n)),
            without_collision_detection(),
        ),
        (
            "descent",
            DeterministicTreeDescentProtocol(b),
            UniformAsPlayerProtocol(WillardProtocol(n)),
            with_collision_detection(),
        ),
    ]
    for label, primary, fallback_protocol, channel in settings:
        budget = primary.worst_case_rounds(n)
        fallback = FallbackPlayerProtocol(primary, fallback_protocol, budget)
        bare_failure_rates = []
        repaired_means = []
        for flip in flip_levels:
            advice = BitFlipAdvice(MinIdPrefixAdvice(b), flip, rng)

            def draw_participants(generator):
                return adversary.checked_select(n, k, generator)

            # batch is threaded for signature parity; the player engine has
            # no vectorized path yet, so these stay on the scalar loop.
            bare = estimate_player_rounds(
                primary,
                draw_participants,
                n,
                rng,
                channel=channel,
                advice_function=advice,
                trials=trials,
                max_rounds=budget,
                batch=config.batch_mode(),
            )
            repaired = estimate_player_rounds(
                fallback,
                draw_participants,
                n,
                rng,
                channel=channel,
                advice_function=advice,
                trials=trials,
                max_rounds=100 * budget,
                batch=config.batch_mode(),
            )
            bare_failure = 1.0 - bare.success.rate
            bare_failure_rates.append(bare_failure)
            repaired_means.append(repaired.rounds.mean)
            rows.append(
                [
                    label,
                    flip,
                    bare_failure,
                    repaired.success.rate,
                    repaired.rounds.mean,
                    budget,
                ]
            )
            checks[
                f"{label} flip={flip}: fallback restores a 100% solve rate"
            ] = repaired.success.rate == 1.0
        checks[f"{label}: clean advice never fails the bare protocol"] = (
            bare_failure_rates[0] == 0.0
        )
        checks[f"{label}: bare failure rate grows with corruption"] = (
            bare_failure_rates[-1] > bare_failure_rates[0]
        )
        checks[
            f"{label}: repaired cost degrades smoothly "
            "(worst within budget + 40x clean cost)"
        ] = max(repaired_means) <= budget + 40.0 * max(repaired_means[0], 1.0)
    return ExperimentResult(
        experiment_id="ADVICE-ROBUST",
        title="Faulty advice: failure modes and the fallback repair",
        reference=(
            "Section 1.3's faulty-advice challenge applied to the Section "
            "3.2 protocols"
        ),
        headers=[
            "protocol",
            "bit-flip prob",
            "bare failure rate",
            "repaired success",
            "repaired mean rounds",
            "primary budget",
        ],
        rows=rows,
        checks=checks,
        notes=[
            f"n={n}, b={b}, k={k}, trials/point={trials}; corruption flips "
            "each advice bit independently",
            "fallback switches all players after the primary's worst-case "
            "budget (correct advice therefore never triggers it)",
        ],
    )
