"""``ADVICE-ROBUST``: what faulty advice does, and what a fallback costs.

Section 3 assumes perfect advice; the paper's related-work discussion
raises the faulty-advice question explicitly.  This experiment corrupts
the advice bits of the Section 3.2 deterministic protocols and measures:

* the *bare* protocols' failure rate as corruption grows (they trust the
  advice, so a flipped prefix bit points the scan/descent at a subtree
  with no active player);
* the repaired protocols -
  :class:`~repro.protocols.restart.FallbackPlayerProtocol` grants the
  primary its worst-case budget, then switches every player to a
  know-nothing fallback (decay / Willard as per-player protocols) - which
  restore a 100% solve rate at a cost that degrades smoothly with the
  corruption level: the ski-rental-flavoured robustness the
  predictions-literature the paper cites aims for.

Every measured cell is a declarative :class:`~repro.scenarios.spec.
ScenarioSpec`: the bare and repaired protocols are registry references
(the repaired one a nested ``fallback`` wrapper spec), corruption is an
advice-spec field, and :func:`~repro.scenarios.runner.run_scenario` with
the shared generator reproduces the pre-migration tables bit-for-bit
(guarded by the scenario-equivalence tests).
"""

from __future__ import annotations

from ..channel.channel import with_collision_detection, without_collision_detection
from ..protocols.advice_deterministic import (
    DeterministicScanProtocol,
    DeterministicTreeDescentProtocol,
)
from ..scenarios import (
    AdviceSpec,
    ChannelSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_scenario,
)
from .base import ExperimentConfig, ExperimentResult

__all__ = ["run"]


def _fallback_spec(primary: dict, fallback_inner: str) -> ProtocolSpec:
    """The repaired protocol: primary + uniform fallback after its budget."""
    return ProtocolSpec(
        "fallback",
        {
            "primary": primary,
            "fallback": {
                "id": "uniform-as-player",
                "params": {"inner": {"id": fallback_inner, "params": {}}},
            },
            "budget_rounds": "worst-case",
        },
    )


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = config.rng()
    n = min(config.n, 2**10)  # the scan fallback path scales with n/2^b
    b = 4
    k = 6
    trials = max(150, config.effective_trials() // 4)
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}

    flip_levels = [0.0, 0.25] if config.quick else [0.0, 0.1, 0.25, 0.5]

    settings = [
        (
            "scan",
            {"id": "deterministic-scan", "params": {"advice_bits": b}},
            "decay",
            DeterministicScanProtocol(b),
            without_collision_detection(),
        ),
        (
            "descent",
            {"id": "tree-descent", "params": {"advice_bits": b}},
            "willard",
            DeterministicTreeDescentProtocol(b),
            with_collision_detection(),
        ),
    ]
    for label, primary, fallback_inner, primary_protocol, channel in settings:
        budget = primary_protocol.worst_case_rounds(n)
        bare_failure_rates = []
        repaired_means = []
        for flip in flip_levels:
            advice = AdviceSpec(
                function="min-id-prefix",
                bits=b,
                corruption={"model": "bit-flip", "probability": flip},
            )

            def cell_spec(protocol: ProtocolSpec, max_rounds: int, tag: str):
                return ScenarioSpec(
                    name=f"advice-robust/{label}/{tag}/flip={flip}",
                    protocol=protocol,
                    workload=WorkloadSpec("fixed", {"k": k}),
                    channel=ChannelSpec(channel.collision_detection),
                    advice=advice,
                    adversary="random",
                    n=n,
                    trials=trials,
                    max_rounds=max_rounds,
                    seed=config.seed,
                    batch=config.batch_mode(),
                )

            bare = run_scenario(
                cell_spec(ProtocolSpec.from_dict(primary), budget, "bare"),
                rng=rng,
            )
            repaired = run_scenario(
                cell_spec(
                    _fallback_spec(primary, fallback_inner),
                    100 * budget,
                    "repaired",
                ),
                rng=rng,
            )
            bare_failure = 1.0 - bare.success.rate
            bare_failure_rates.append(bare_failure)
            repaired_means.append(repaired.rounds.mean)
            rows.append(
                [
                    label,
                    flip,
                    bare_failure,
                    repaired.success.rate,
                    repaired.rounds.mean,
                    budget,
                ]
            )
            checks[
                f"{label} flip={flip}: fallback restores a 100% solve rate"
            ] = repaired.success.rate == 1.0
        checks[f"{label}: clean advice never fails the bare protocol"] = (
            bare_failure_rates[0] == 0.0
        )
        checks[f"{label}: bare failure rate grows with corruption"] = (
            bare_failure_rates[-1] > bare_failure_rates[0]
        )
        checks[
            f"{label}: repaired cost degrades smoothly "
            "(worst within budget + 40x clean cost)"
        ] = max(repaired_means) <= budget + 40.0 * max(repaired_means[0], 1.0)
    return ExperimentResult(
        experiment_id="ADVICE-ROBUST",
        title="Faulty advice: failure modes and the fallback repair",
        reference=(
            "Section 1.3's faulty-advice challenge applied to the Section "
            "3.2 protocols"
        ),
        headers=[
            "protocol",
            "bit-flip prob",
            "bare failure rate",
            "repaired success",
            "repaired mean rounds",
            "primary budget",
        ],
        rows=rows,
        checks=checks,
        notes=[
            f"n={n}, b={b}, k={k}, trials/point={trials}; corruption flips "
            "each advice bit independently",
            "fallback switches all players after the primary's worst-case "
            "budget (correct advice therefore never triggers it)",
        ],
    )
