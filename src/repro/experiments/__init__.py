"""Reproduction experiments: one module per paper artefact.

See DESIGN.md Section 3 for the experiment index and
:mod:`repro.experiments.registry` for the id -> runner mapping.
"""

from .base import ExperimentConfig, ExperimentResult
from .registry import (
    EXPERIMENTS,
    experiment_ids,
    get_experiment,
    run_all,
    run_experiment,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "EXPERIMENTS",
    "experiment_ids",
    "get_experiment",
    "run_experiment",
    "run_all",
]
