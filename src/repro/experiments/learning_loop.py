"""``LEARN``: the observe-predict-resolve loop converges.

The paper's introduction motivates the entire setup with predictions
produced by models that "observe the behavior of a given environment over
time", and promises algorithms that "improve for free as the machine
learning models ... improve".  This experiment closes that loop
empirically:

* **stationary world**: a histogram learner watches i.i.d. instances; its
  prediction's divergence from the truth falls towards 0, and the
  prediction protocol's rounds converge to the clairvoyant oracle's -
  Theorems 2.12/2.16 with a vanishing ``D`` term;
* **drifting world**: the environment shifts mid-run; a decaying-memory
  learner re-converges while the frozen learner keeps paying the
  divergence forever.
"""

from __future__ import annotations

import math

import numpy as np

from ..channel.channel import without_collision_detection
from ..infotheory.condense import num_ranges
from ..infotheory.distributions import SizeDistribution
from ..learning.estimators import DecayingHistogramLearner, HistogramLearner
from ..learning.online import OnlineReport, run_online
from .base import ExperimentConfig, ExperimentResult

__all__ = ["run"]


def _window_rounds(report: OnlineReport, window: int) -> np.ndarray:
    """Learner rounds over the last ``window`` instances, as an array."""
    return np.asarray(
        [record.learner_rounds for record in report.records[-window:]],
        dtype=float,
    )


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = config.rng()
    channel = without_collision_detection()
    n = config.n
    count = num_ranges(n)
    instances = 120 if config.quick else 400
    tail = max(20, instances // 8)
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}

    # --- stationary world ------------------------------------------------
    stationary_truth = SizeDistribution.range_uniform_subset(
        n, [max(1, count // 3), max(2, 2 * count // 3)], name="stationary"
    )
    learner = HistogramLearner(n)
    report = run_online(
        lambda instance: stationary_truth,
        learner,
        channel,
        rng,
        instances=instances,
        batch=config.batch,
    )
    early_divergence = report.records[min(4, instances - 1)].divergence_bits
    late_divergence = report.final_divergence()
    early_rounds = report.mean_rounds(first=tail)
    late_rounds = report.mean_rounds(last=tail)
    oracle_rounds = report.mean_oracle_rounds()
    baseline_rounds = report.mean_baseline_rounds()
    rows.append(
        [
            "stationary/histogram",
            instances,
            early_divergence,
            late_divergence,
            early_rounds,
            late_rounds,
            oracle_rounds,
            baseline_rounds,
        ]
    )
    checks["stationary: prediction divergence shrinks by >= 4x"] = (
        late_divergence <= early_divergence / 4.0
    )
    checks[
        "stationary: converged learner within 1.6x of the clairvoyant oracle"
    ] = late_rounds <= 1.6 * oracle_rounds + 0.5
    # At quick scale the converged-learner-vs-decay gap sits inside the
    # tail window's sampling noise (a 20-sample learner tail against the
    # baseline's run mean), so *only there* the claim carries the same
    # 3-sigma allowance as the drift check below; at full scale the
    # margin is zero and this is strictly "beats the baseline".
    if config.quick:
        tail_rounds = _window_rounds(report, tail)
        baseline_margin = 3.0 * float(tail_rounds.std()) / math.sqrt(tail)
    else:
        baseline_margin = 0.0
    checks[
        "stationary: converged learner beats the decay baseline "
        "(3-sigma tail allowance at quick scale)"
    ] = late_rounds < baseline_rounds + baseline_margin

    # --- drifting world ---------------------------------------------------
    shift_at = instances // 2
    low = SizeDistribution.range_uniform_subset(
        n, [max(1, count // 4)], name="pre-drift"
    )
    high = SizeDistribution.range_uniform_subset(
        n, [max(2, 3 * count // 4)], name="post-drift"
    )

    def drifting_truth(instance: int) -> SizeDistribution:
        return low if instance < shift_at else high

    # Light smoothing: a decaying learner's effective sample size is only
    # ~1/(1-decay), so the default Laplace prior would drown the data.
    adaptive = DecayingHistogramLearner(n, decay=0.95, smoothing=0.05)
    adaptive_report = run_online(
        drifting_truth, adaptive, channel, rng, instances=instances,
        batch=config.batch,
    )
    # The frozen learner: a histogram trained pre-drift and never updated
    # afterwards is emulated by a decaying learner with memory ~infinite
    # relative to the run (decay extremely close to 1 keeps old mass).
    frozen = DecayingHistogramLearner(n, decay=0.9999, smoothing=0.05)
    frozen_report = run_online(
        drifting_truth, frozen, channel, rng, instances=instances,
        batch=config.batch,
    )
    adaptive_tail = adaptive_report.mean_rounds(last=tail)
    frozen_tail = frozen_report.mean_rounds(last=tail)
    adaptive_final_divergence = adaptive_report.final_divergence()
    frozen_final_divergence = frozen_report.final_divergence()
    rows.append(
        [
            "drift/decaying(0.95)",
            instances,
            adaptive_report.records[shift_at].divergence_bits,
            adaptive_final_divergence,
            adaptive_report.mean_rounds(first=tail),
            adaptive_tail,
            adaptive_report.mean_oracle_rounds(),
            adaptive_report.mean_baseline_rounds(),
        ]
    )
    rows.append(
        [
            "drift/frozen(0.9999)",
            instances,
            frozen_report.records[shift_at].divergence_bits,
            frozen_final_divergence,
            frozen_report.mean_rounds(first=tail),
            frozen_tail,
            frozen_report.mean_oracle_rounds(),
            frozen_report.mean_baseline_rounds(),
        ]
    )
    checks["drift: adaptive learner re-converges (final divergence < 0.5 bits)"] = (
        adaptive_final_divergence < 0.5
    )
    checks["drift: frozen learner keeps paying (divergence stays > adaptive)"] = (
        frozen_final_divergence > adaptive_final_divergence
    )
    # The per-instance rounds of cycling sorted probing are heavy-tailed
    # (geometric attempts), so a raw tail-mean comparison between the two
    # learners flips sign seed-to-seed: the ~1-bit divergence the frozen
    # learner keeps paying costs well under one round per instance at this
    # workload, far below the sampling noise.  The divergence checks above
    # carry the "keeps paying" claim; the rounds claim that *is* resolvable
    # at this scale is one-sided with a noise margin: the adaptive learner
    # is never measurably (3 sigma over the post-drift window) worse.
    window = instances - shift_at - 20  # past the adaptive re-convergence
    adaptive_window = _window_rounds(adaptive_report, window)
    frozen_window = _window_rounds(frozen_report, window)
    margin = 3.0 * math.hypot(
        float(adaptive_window.std()) / math.sqrt(window),
        float(frozen_window.std()) / math.sqrt(window),
    )
    checks[
        "drift: adaptive rounds not measurably worse than frozen "
        "(post-drift window, 3-sigma margin)"
    ] = float(adaptive_window.mean()) <= float(frozen_window.mean()) + margin
    return ExperimentResult(
        experiment_id="LEARN",
        title="Online learning loop: observe, predict, resolve",
        reference=(
            "Section 1 motivation; Theorems 2.12/2.16 with learned Y"
        ),
        headers=[
            "scenario",
            "instances",
            "early D_KL",
            "final D_KL",
            "early rounds",
            "tail rounds",
            "oracle rounds",
            "baseline rounds",
        ],
        rows=rows,
        checks=checks,
        notes=[
            f"n={n}, no-CD channel, cycling sorted probing; tail = last "
            f"{tail} instances",
            "oracle = prediction protocol fed the true distribution; "
            "baseline = decay",
        ],
    )
