"""The cost of bad predictions: round complexity vs KL divergence.

Theorems 2.12 and 2.16 charge prediction error through
``D = D_KL(c(X) || c(Y))``: the no-CD budget is ``2^(2H + 2D)`` and the CD
budget ``O((H + D)^2)``.  These experiments fix a truth ``X`` and sweep a
family of increasingly wrong predictions ``Y`` (systematic range shifts,
support-floored so the divergence stays finite), verifying that

* the algorithms still succeed with their constant probability within the
  *divergence-inflated* budget, and
* the measured rounds grow with ``D`` (predictions degrade gracefully,
  the paper's headline property), and
* bounded-factor mispredictions cost ``O(1)``: small mixing noise leaves
  the rounds within a constant factor of the perfect-prediction rounds.

Every measured rung is a declarative
:class:`~repro.scenarios.spec.ScenarioSpec`: the truth is a
``range_uniform_subset`` workload, the degraded prediction a
``perturbed``-family prediction spec (the declarative view of
:mod:`repro.infotheory.perturb`), and
:func:`~repro.scenarios.runner.run_scenario` with the shared generator
reproduces the pre-migration tables bit-for-bit (guarded by the
scenario-equivalence tests).
"""

from __future__ import annotations

import math

from ..infotheory.condense import num_ranges
from ..infotheory.distributions import SizeDistribution
from ..infotheory.perturb import divergence_between
from ..lowerbounds.bounds import table1_nocd_upper
from ..scenarios import (
    ChannelSpec,
    PredictionSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_scenario,
)
from ..scenarios.workloads import resolve_distribution
from .base import ExperimentConfig, ExperimentResult
from .table1_cd import BUDGET_CONSTANT, SUCCESS_FLOOR as CD_SUCCESS_FLOOR
from .table1_nocd import SUCCESS_FLOOR as NOCD_SUCCESS_FLOOR

__all__ = ["run_nocd", "run_cd", "prediction_ladder", "truth_params"]


def truth_params(n: int) -> dict:
    """Workload params of the mid-entropy truth: four mid-board ranges."""
    count = num_ranges(n)
    anchors = sorted({max(1, count // 5), max(2, 2 * count // 5),
                      max(3, 3 * count // 5), max(4, 4 * count // 5)})
    return {
        "family": "range_uniform_subset",
        "ranges": anchors,
        "name": "truth-H2",
    }


def _truth(n: int) -> SizeDistribution:
    """A mid-entropy truth: equal mass on four mid-board ranges."""
    return resolve_distribution(n, truth_params(n))


def prediction_ladder(
    n: int, *, quick: bool = False
) -> list[tuple[str, SizeDistribution, float, dict]]:
    """Predictions of increasing divergence from the truth, as specs.

    Rungs: the truth itself, mild mixing noise (the bounded-constant-factor
    regime of the theorems' corollaries), then systematic range shifts of
    growing magnitude (floored so ``D`` stays finite).  Each rung's
    distribution is resolved through the same ``perturbed`` family its
    declarative params name, so the spec *is* the prediction.  Returns
    ``(label, prediction, divergence_bits, prediction_params)`` sorted by
    divergence.
    """
    truth = _truth(n)
    rungs: list[tuple[str, dict | None]] = [
        ("perfect", None),
        ("mix 10%", {"mix": 0.10}),
        ("mix 50%", {"mix": 0.50}),
    ]
    shifts = (1, 3) if quick else (1, 2, 3, 4)
    for delta in shifts:
        rungs.append((f"shift +{delta}", {"shift": delta, "floor": 2e-2}))
    graded = []
    for label, perturbation in rungs:
        params = (
            truth_params(n)
            if perturbation is None
            else {"family": "perturbed", "base": truth_params(n), **perturbation}
        )
        prediction = resolve_distribution(n, params)
        graded.append(
            (label, prediction, divergence_between(truth, prediction), params)
        )
    graded.sort(key=lambda item: item[2])
    return graded


def _rung_spec(
    config: ExperimentConfig,
    *,
    cell: str,
    protocol: ProtocolSpec,
    prediction_params: dict,
    label: str,
    budget: int,
    collision_detection: bool,
) -> ScenarioSpec:
    """One divergence-ladder rung as a scenario point."""
    return ScenarioSpec(
        name=f"{cell}/{label}",
        protocol=protocol,
        workload=WorkloadSpec("distribution", truth_params(config.n)),
        prediction=PredictionSpec("distribution", prediction_params),
        channel=ChannelSpec(collision_detection=collision_detection),
        n=config.n,
        trials=config.effective_trials(),
        max_rounds=budget,
        seed=config.seed,
        batch=config.batch_mode(),
    )


def run_nocd(config: ExperimentConfig) -> ExperimentResult:
    """``KL-NCD``: sorted probing under degrading predictions."""
    rng = config.rng()
    trials = config.effective_trials()
    entropy_bits = _truth(config.n).condensed_entropy()
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    means: list[float] = []
    divergences: list[float] = []

    for label, _, divergence, params in prediction_ladder(
        config.n, quick=config.quick
    ):
        budget = max(1, math.ceil(table1_nocd_upper(entropy_bits, divergence)))
        estimate = run_scenario(
            _rung_spec(
                config,
                cell="kl-ncd",
                protocol=ProtocolSpec("sorted-probing", {"one_shot": True}),
                prediction_params=params,
                label=label,
                budget=budget,
                collision_detection=False,
            ),
            rng=rng,
        )
        rows.append(
            [
                label,
                divergence,
                budget,
                estimate.success.rate,
                estimate.success.lower,
                estimate.rounds.mean,
            ]
        )
        means.append(estimate.rounds.mean)
        divergences.append(divergence)
        checks[
            f"{label} (D={divergence:.2f}): success within 2^(2H+2D) budget "
            ">= 1/16"
        ] = estimate.success.lower >= NOCD_SUCCESS_FLOOR
    checks["mean rounds non-decreasing in divergence (within 20% noise)"] = all(
        means[i + 1] >= means[i] * 0.8 for i in range(len(means) - 1)
    )
    # Bounded-factor regime: the mix-10% rung must stay within a constant
    # factor of perfect prediction (Theorem 2.12's D_KL = O(1) discussion).
    perfect = means[0]
    mild = means[1] if len(means) > 1 else perfect
    checks["10% mixing noise costs at most 3x the perfect-prediction rounds"] = (
        mild <= 3.0 * max(perfect, 1.0)
    )
    return ExperimentResult(
        experiment_id="KL-NCD",
        title="Prediction-error cost, no collision detection",
        reference="Theorem 2.12 divergence term (Section 2.5)",
        headers=[
            "prediction",
            "D_KL bits",
            "budget 2^(2H+2D)",
            "success rate",
            "success CI lo",
            "mean rounds",
        ],
        rows=rows,
        checks=checks,
        notes=[
            f"n={config.n}, truth entropy H={entropy_bits:.2f} bits,"
            f" trials/point={trials}",
            "shifted predictions are support-floored (2%) so D stays finite,"
            " mirroring deployed-predictor smoothing",
        ],
    )


def run_cd(config: ExperimentConfig) -> ExperimentResult:
    """``KL-CD``: code-class search under degrading predictions."""
    rng = config.rng()
    trials = config.effective_trials()
    repetitions = 3
    entropy_bits = _truth(config.n).condensed_entropy()
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    means: list[float] = []

    for label, _, divergence, params in prediction_ladder(
        config.n, quick=config.quick
    ):
        base = entropy_bits + divergence + 1.0
        budget = max(1, math.ceil(BUDGET_CONSTANT * repetitions * base * base))
        estimate = run_scenario(
            _rung_spec(
                config,
                cell="kl-cd",
                protocol=ProtocolSpec(
                    "code-search",
                    {"repetitions": repetitions, "one_shot": True},
                ),
                prediction_params=params,
                label=label,
                budget=budget,
                collision_detection=True,
            ),
            rng=rng,
        )
        rows.append(
            [
                label,
                divergence,
                budget,
                estimate.success.rate,
                estimate.success.lower,
                estimate.rounds.mean,
            ]
        )
        means.append(estimate.rounds.mean)
        checks[
            f"{label} (D={divergence:.2f}): success within (H+D+1)^2 budget "
            f">= {CD_SUCCESS_FLOOR}"
        ] = estimate.success.lower >= CD_SUCCESS_FLOOR
    perfect = means[0]
    checks["mean rounds stay within the inflated budgets across the ladder"] = all(
        mean <= row[2] for mean, row in zip(means, rows)
    )
    checks["10% mixing noise costs at most 3x the perfect-prediction rounds"] = (
        len(means) < 2 or means[1] <= 3.0 * max(perfect, 1.0)
    )
    return ExperimentResult(
        experiment_id="KL-CD",
        title="Prediction-error cost, collision detection",
        reference="Theorem 2.16 divergence term (Section 2.6)",
        headers=[
            "prediction",
            "D_KL bits",
            "budget ~(H+D+1)^2",
            "success rate",
            "success CI lo",
            "mean rounds",
        ],
        rows=rows,
        checks=checks,
        notes=[
            f"n={config.n}, truth entropy H={entropy_bits:.2f} bits,"
            f" trials/point={trials}, repetitions={repetitions}",
        ],
    )
