"""The experiment registry: id -> runner.

One entry per experiment in DESIGN.md's index; the CLI and the benchmark
suite both dispatch through :func:`get_experiment` / :func:`run_experiment`
so the set of reproducible artefacts is defined in exactly one place.
"""

from __future__ import annotations

from collections.abc import Callable

from . import coding, crossover, divergence, lemmas, pliam, ssf
from . import adapt_robust, jam_robust, learning_loop, robustness
from . import table1_cd, table1_nocd, table2
from .base import ExperimentConfig, ExperimentResult

__all__ = [
    "EXPERIMENTS",
    "experiment_ids",
    "get_experiment",
    "run_experiment",
    "run_all",
]

Runner = Callable[[ExperimentConfig], ExperimentResult]

#: Experiment id -> (runner, one-line description).
EXPERIMENTS: dict[str, tuple[Runner, str]] = {
    "T1-NCD-UP": (
        table1_nocd.run_upper,
        "Table 1 no-CD upper: sorted probing within 2^(2H) (Thm 2.12)",
    ),
    "T1-NCD-LOW": (
        table1_nocd.run_lower,
        "Table 1 no-CD lower: RF-Construction entropy floor (Thm 2.4)",
    ),
    "T1-CD-UP": (
        table1_cd.run_upper,
        "Table 1 CD upper: code-class search within O(H^2) (Thm 2.16)",
    ),
    "T1-CD-LOW": (
        table1_cd.run_lower,
        "Table 1 CD lower: tree-construction entropy floor (Thm 2.8)",
    ),
    "T2-DET-NCD": (
        table2.run_det_nocd,
        "Table 2 deterministic no-CD: Theta(n/2^b) (Thm 3.4)",
    ),
    "T2-DET-CD": (
        table2.run_det_cd,
        "Table 2 deterministic CD: Theta(log n - b) (Thm 3.5)",
    ),
    "T2-RAND-NCD": (
        table2.run_rand_nocd,
        "Table 2 randomized no-CD: Theta(log n / 2^b) (Thm 3.6)",
    ),
    "T2-RAND-CD": (
        table2.run_rand_cd,
        "Table 2 randomized CD: Theta(log log n - b) (Thm 3.7)",
    ),
    "KL-NCD": (
        divergence.run_nocd,
        "Divergence cost, no-CD: budget 2^(2H+2D) (Thm 2.12)",
    ),
    "KL-CD": (
        divergence.run_cd,
        "Divergence cost, CD: budget (H+D+1)^2 (Thm 2.16)",
    ),
    "SRC-CODE": (
        coding.run,
        "Source coding and cross-coding sandwiches (Thms 2.2/2.3)",
    ),
    "PLIAM": (
        pliam.run,
        "Entropy vs guesswork separation (Sec 2.5 conjecture)",
    ),
    "LEMMA-PROBS": (
        lemmas.run,
        "Success-probability windows (Lemmas 2.6/2.10/2.13)",
    ),
    "BASELINE-X": (
        crossover.run,
        "Prediction protocols vs decay/Willard across entropy",
    ),
    "SSF": (
        ssf.run,
        "Strongly selective families + non-interactive advice (Sec 3.2)",
    ),
    "LEARN": (
        learning_loop.run,
        "Online learning loop: divergence falls, rounds converge (Sec 1)",
    ),
    "ADVICE-ROBUST": (
        robustness.run,
        "Faulty advice failure modes + fallback repair (Sec 1.3)",
    ),
    "JAM-ROBUST": (
        jam_robust.run,
        "Budgeted jamming robustness curves for the CD protocols",
    ),
    "ADAPT-ROBUST": (
        adapt_robust.run,
        "Adaptive-adversary stress curves: predictions vs robust baselines",
    ),
}


def experiment_ids() -> list[str]:
    """All registered experiment ids, in registry order."""
    return list(EXPERIMENTS)


def get_experiment(experiment_id: str) -> Runner:
    """The runner for ``experiment_id``; raises ``KeyError`` with options."""
    try:
        return EXPERIMENTS[experiment_id][0]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: "
            f"{', '.join(EXPERIMENTS)}"
        ) from None


def run_experiment(
    experiment_id: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """Run one experiment under ``config`` (default config otherwise)."""
    runner = get_experiment(experiment_id)
    return runner(config if config is not None else ExperimentConfig())


def run_all(config: ExperimentConfig | None = None) -> list[ExperimentResult]:
    """Run the full registry in order (the EXPERIMENTS.md regeneration)."""
    return [run_experiment(experiment_id, config) for experiment_id in EXPERIMENTS]
