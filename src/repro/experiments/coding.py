"""``SRC-CODE``: the information-theoretic scaffolding, verified end-to-end.

The paper's Theorems 2.2 (Source Coding) and 2.3 (cross-coding sandwich)
are load-bearing for every bound; this experiment exercises them over a
gallery of matched and mismatched distribution pairs:

* matched Huffman coding: ``H <= E[len] <= H + 1``;
* mismatched Shannon coding: ``H + D <= E[len] <= H + D + 1``;
* Huffman-vs-Shannon dominance: Huffman expected length never exceeds the
  Shannon code's on the same source.
"""

from __future__ import annotations

import numpy as np

from ..infotheory.entropy import kl_divergence
from ..infotheory.huffman import huffman_code
from ..infotheory.source_coding import (
    cross_coding_report,
    expected_code_length,
    shannon_code,
    source_coding_report,
)
from .base import ExperimentConfig, ExperimentResult

__all__ = ["run", "distribution_gallery"]


def distribution_gallery(
    rng: np.random.Generator, *, quick: bool = False
) -> list[tuple[str, list[float]]]:
    """Sources covering the regimes the proofs lean on.

    Dyadic (Huffman-tight), uniform (max entropy), near-degenerate
    (entropy ~0), Zipf-ish heavy tails and random Dirichlet draws.
    """
    gallery: list[tuple[str, list[float]]] = [
        ("dyadic-8", [2.0**-i for i in range(1, 8)] + [2.0**-7]),
        ("uniform-16", [1.0 / 16.0] * 16),
        ("near-point", [0.97] + [0.03 / 7] * 7),
        (
            "zipf-12",
            (lambda w: [x / sum(w) for x in w])([1.0 / i for i in range(1, 13)]),
        ),
    ]
    draws = 2 if quick else 6
    for index in range(draws):
        weights = rng.dirichlet(np.ones(12)).tolist()
        gallery.append((f"dirichlet-{index}", weights))
    return gallery


def run(config: ExperimentConfig) -> ExperimentResult:
    """Verify Theorems 2.2 / 2.3 over the distribution gallery."""
    rng = config.rng()
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}

    gallery = distribution_gallery(rng, quick=config.quick)
    for name, source in gallery:
        matched = source_coding_report(source)
        rows.append(
            [
                name,
                "matched",
                matched.entropy_bits,
                0.0,
                matched.expected_length_bits,
                matched.lower_slack_bits,
                matched.upper_slack_bits,
            ]
        )
        checks[f"{name} matched: H <= E[len] (Theorem 2.2)"] = (
            matched.satisfies_lower_bound()
        )
        checks[f"{name} matched: E[len] <= H + 1 (Huffman optimality)"] = (
            matched.satisfies_upper_bound()
        )
        # Huffman never loses to the Shannon profile on its own source.
        shannon = shannon_code(source)
        huffman = huffman_code(source)
        checks[f"{name}: Huffman E[len] <= Shannon E[len]"] = (
            expected_code_length(huffman, source)
            <= expected_code_length(shannon, source) + 1e-12
        )

    # Mismatched pairs: code designed for one gallery member, fed another
    # of the same alphabet size.
    for (name_a, source), (name_b, design) in zip(gallery, gallery[1:]):
        if len(source) != len(design):
            continue
        report = cross_coding_report(source, design)
        divergence = kl_divergence(source, design)
        rows.append(
            [
                f"{name_a}|{name_b}",
                "cross",
                report.entropy_bits,
                divergence,
                report.expected_length_bits,
                report.lower_slack_bits,
                report.upper_slack_bits,
            ]
        )
        checks[
            f"{name_a} via code({name_b}): H + D <= E[len] <= H + D + 1 "
            "(Theorem 2.3)"
        ] = report.satisfies_lower_bound() and report.satisfies_upper_bound()

    return ExperimentResult(
        experiment_id="SRC-CODE",
        title="Source coding and cross-coding sandwiches",
        reference="Theorems 2.2 and 2.3 (Section 2.2)",
        headers=[
            "source",
            "mode",
            "H bits",
            "D bits",
            "E[len] bits",
            "lower slack",
            "upper slack",
        ],
        rows=rows,
        checks=checks,
        notes=[
            "matched rows use Huffman codes; cross rows use Shannon codes"
            " for the design distribution (see source_coding.py for why)",
            f"entropy() here is over raw alphabets, not condensed ranges;"
            f" seed={config.seed}",
        ],
    )
