"""``ADAPT-ROBUST``: stress curves under the adversary information hierarchy.

``JAM-ROBUST`` measures the CD protocols against a single *oblivious*
jammer.  This experiment climbs the information hierarchy on the no-CD
side: the same budget is handed to an oblivious jammer (commits its
schedule in advance, spread over the horizon), a reactive jammer
(triggers on delivered quiet streaks), and the full-information
:class:`~repro.channel.models.AdaptiveAdversary` (observes the faithful
outcome *before* delivery and greedily erases successes).  The protocol
grid pits the paper's prediction algorithm (sorted probing, under clean
and range-shifted advice) against plain decay and the Jiang-Zheng
sawtooth - the robust no-CD baseline built precisely for this threat
model.

Shape checks pin the hierarchy and the degradation mode:

* information ordering - at every budget, grid-aggregated damage
  (mean-rounds excess over the faithful baseline, summed over the
  protocol grid) satisfies adaptive >= reactive >= oblivious, and the
  adaptive adversary out-damages both lower tiers by a wide multiple
  (it never wastes a jam; they mostly do);
* budget monotonicity - the adaptive curve never improves as the budget
  grows, and the largest budget is strictly worse than faithful;
* graceful degradation - every cell still solves >= 95% of trials (the
  adversary delays, it does not kill), and the prediction-augmented
  protocols degrade *like the robust baseline*: under the adaptive
  adversary they stay within 1.5x of Jiang-Zheng at equal budget rather
  than collapsing;
* strategy panel - at the largest budget the greedy strategy dominates
  the streak and scheduler strategies (full information, spent only on
  certain kills, is the strongest play in the registry).

Every cell is a declarative :class:`~repro.scenarios.spec.ScenarioSpec`
with the channel-model spec inline, routed through the same engine
selection the scenario CLI uses; the adaptive model's per-trial state
arrays run on the stacked schedule engine.
"""

from __future__ import annotations

from ..scenarios import ScenarioSpec, run_scenario
from .base import ExperimentConfig, ExperimentResult

__all__ = ["run"]

_RANGES = [2, 4, 6]

_SHIFTED_PREDICTION = {
    "source": "distribution",
    "params": {
        "family": "perturbed",
        "base": {"family": "range_uniform_subset", "ranges": _RANGES},
        "shift": 3,
        "floor": 1e-6,
    },
}

# The three rungs of the information hierarchy, at equal budget.  The
# oblivious jammer is the *spread* variant (period 8): with no feedback
# it must hedge across the horizon, which is exactly why it wastes most
# of its budget on rounds that would not have succeeded anyway.
_ADVERSARIES: list[tuple[str, dict]] = [
    ("oblivious", {"name": "jam-oblivious", "params": {"period": 8}}),
    ("reactive", {"name": "jam-reactive", "params": {"quiet_streak": 1}}),
    ("adaptive", {"name": "jam-adaptive", "params": {"strategy": "greedy"}}),
]

# Registry strategies compared head-to-head at the largest budget.
_STRATEGIES: list[tuple[str, dict]] = [
    ("greedy", {"strategy": "greedy"}),
    ("streak", {"strategy": "streak", "patience": 2}),
    ("scheduler", {"strategy": "scheduler", "mode": "back"}),
]


def _cell_spec(
    label: str,
    protocol: dict,
    prediction: object,
    model: dict | None,
    *,
    n: int,
    trials: int,
    max_rounds: int,
    seed: int,
    batch: bool | None,
) -> ScenarioSpec:
    return ScenarioSpec.from_dict(
        {
            "name": f"adapt-robust/{label}",
            "protocol": protocol,
            "workload": {
                "kind": "distribution",
                "params": {
                    "family": "range_uniform_subset",
                    "ranges": _RANGES,
                },
            },
            "channel": {
                "collision_detection": False,
                **({"model": model} if model is not None else {}),
            },
            "prediction": prediction,
            "n": n,
            "trials": trials,
            "max_rounds": max_rounds,
            "seed": seed,
            **({"batch": batch} if batch is not None else {}),
        }
    )


def _with_budget(model: dict, budget: int) -> dict:
    return {"name": model["name"], "params": {**model["params"], "budget": budget}}


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = config.rng()
    n = min(config.n, 2**10)
    trials = max(400, config.effective_trials() // 2)
    max_rounds = 4096
    budgets = [0, 16] if config.quick else [0, 8, 16, 32]

    settings = [
        ("decay/truth", {"id": "decay", "params": {}}, "truth"),
        ("jiang-zheng/truth", {"id": "jiang-zheng", "params": {}}, "truth"),
        (
            "sorted-probing/truth",
            {"id": "sorted-probing", "params": {"one_shot": False}},
            "truth",
        ),
        (
            "sorted-probing/shifted",
            {"id": "sorted-probing", "params": {"one_shot": False}},
            _SHIFTED_PREDICTION,
        ),
    ]

    def measure(label, protocol, prediction, model):
        return run_scenario(
            _cell_spec(
                label,
                protocol,
                prediction,
                model,
                n=n,
                trials=trials,
                max_rounds=max_rounds,
                seed=config.seed,
                batch=config.batch_mode(),
            ),
            rng=rng,
        )

    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    # damage[adversary][budget] accumulates mean-rounds excess over the
    # faithful baseline, summed across the protocol grid.
    damage: dict[str, dict[int, float]] = {
        name: {} for name, _ in _ADVERSARIES
    }
    adaptive_means: dict[str, dict[int, float]] = {}

    for label, protocol, prediction in settings:
        baseline = measure(label, protocol, prediction, None)
        base_mean = baseline.rounds.mean
        rows.append(
            [
                label,
                "none",
                0,
                baseline.engine,
                baseline.success.rate,
                base_mean,
                baseline.rounds.p90,
            ]
        )
        checks[f"{label} faithful: solves >= 95%"] = (
            baseline.success.rate >= 0.95
        )
        adaptive_means[label] = {0: base_mean}
        for adversary, model in _ADVERSARIES:
            for budget in budgets:
                if budget == 0:
                    continue
                result = measure(
                    f"{label}/{adversary}/budget={budget}",
                    protocol,
                    prediction,
                    _with_budget(model, budget),
                )
                rows.append(
                    [
                        label,
                        adversary,
                        budget,
                        result.engine,
                        result.success.rate,
                        result.rounds.mean,
                        result.rounds.p90,
                    ]
                )
                checks[
                    f"{label} {adversary} budget={budget}: solves >= 95% "
                    "(delays, does not kill)"
                ] = result.success.rate >= 0.95
                excess = result.rounds.mean - base_mean
                damage[adversary][budget] = (
                    damage[adversary].get(budget, 0.0) + excess
                )
                if adversary == "adaptive":
                    adaptive_means[label][budget] = result.rounds.mean
        curve = [adaptive_means[label][b] for b in budgets]
        checks[
            f"{label}: adaptive mean rounds never improve with more budget"
        ] = all(later >= earlier - 1e-9 for earlier, later in zip(curve, curve[1:]))
        checks[
            f"{label}: adaptive at the largest budget is strictly worse "
            "than faithful"
        ] = curve[-1] > curve[0]

    for budget in budgets:
        if budget == 0:
            continue
        oblivious = damage["oblivious"][budget]
        reactive = damage["reactive"][budget]
        adaptive = damage["adaptive"][budget]
        checks[
            f"budget={budget}: grid damage ordering adaptive >= reactive "
            ">= oblivious"
        ] = adaptive >= reactive - 1e-9 and reactive >= oblivious - 1e-9
        checks[
            f"budget={budget}: full information out-damages both lower "
            "tiers by >= 2x"
        ] = adaptive >= 2.0 * max(reactive, oblivious, 1e-9)

    # Prediction algorithms degrade like the robust baseline, not worse.
    for label in ("sorted-probing/truth", "sorted-probing/shifted"):
        for budget in budgets:
            if budget == 0:
                continue
            checks[
                f"{label} adaptive budget={budget}: within 1.5x of the "
                "Jiang-Zheng robust baseline"
            ] = (
                adaptive_means[label][budget]
                <= 1.5 * adaptive_means["jiang-zheng/truth"][budget]
            )

    # Strategy panel: every registry strategy at the largest budget, on
    # the strongest prediction protocol and the robust baseline.
    top = budgets[-1]
    for label, protocol, prediction in (settings[1], settings[2]):
        by_strategy: dict[str, float] = {}
        for strategy, params in _STRATEGIES:
            result = measure(
                f"{label}/adaptive[{strategy}]/budget={top}",
                protocol,
                prediction,
                {"name": "jam-adaptive", "params": {**params, "budget": top}},
            )
            by_strategy[strategy] = result.rounds.mean
            rows.append(
                [
                    label,
                    f"adaptive[{strategy}]",
                    top,
                    result.engine,
                    result.success.rate,
                    result.rounds.mean,
                    result.rounds.p90,
                ]
            )
        checks[
            f"{label}: greedy dominates the other registry strategies at "
            f"budget {top}"
        ] = all(
            by_strategy["greedy"] >= by_strategy[other] - 1e-9
            for other in ("streak", "scheduler")
        )

    return ExperimentResult(
        experiment_id="ADAPT-ROBUST",
        title="Adaptive adversaries: the information hierarchy on no-CD protocols",
        reference=(
            "adversarial-channel extension: prediction protocols vs the "
            "Jiang-Zheng (2021) robust baseline under oblivious, reactive "
            "and full-information jamming"
        ),
        headers=[
            "protocol/prediction",
            "adversary",
            "budget",
            "engine",
            "success rate",
            "mean rounds",
            "p90 rounds",
        ],
        rows=rows,
        checks=checks,
        notes=[
            f"n={n}, trials/point={trials}, max_rounds={max_rounds}; "
            "damage = mean rounds minus the faithful baseline, summed "
            "over the protocol grid for the ordering checks",
            "oblivious = spread jammer (period 8, schedule committed in "
            "advance); reactive = quiet-streak trigger on delivered "
            "feedback; adaptive = full-information greedy (jams only "
            "faithful successes, never wastes budget)",
            "budget 0 reduces every adversary to the faithful channel "
            "(null-model reduction), anchoring each curve",
            "advice-quality axis: the shifted arm feeds sorted probing "
            "systematically wrong predictions (shift 3); under heavy "
            "jamming the adversary, not the advice error, dominates",
        ],
    )
