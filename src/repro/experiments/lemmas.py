"""``LEMMA-PROBS``: the success-probability lemmas, swept numerically.

Lemmas 2.6, 2.10 and 2.13 are exact statements about
``P(success) = k p (1-p)^(k-1)``; this experiment sweeps them over wide
``(k, p)`` grids:

* outside the Lemma 2.6 window, success probability stays below
  ``1/(2 log n)``;
* outside the Lemma 2.10 window, below ``1/(2 log log n)``;
* inside the Lemma 2.13 probe interval ``[1/(2k), 1/k]``, at least 1/8;

plus a Monte Carlo spot check that the analytic formula matches simulated
transmission counts.
"""

from __future__ import annotations

import numpy as np

from ..lowerbounds.success_bounds import (
    lemma_2_6_threshold,
    lemma_2_6_window,
    lemma_2_10_threshold,
    lemma_2_10_window,
    lemma_2_13_lower_bound,
    single_success_probability,
    window_violation,
)
from .base import ExperimentConfig, ExperimentResult

__all__ = ["run"]


def _probability_grid(points: int) -> np.ndarray:
    """Log-spaced probabilities spanning ``[1e-9, 1]``."""
    return np.concatenate(
        [np.logspace(-9, 0, points, endpoint=False), [1.0]]
    )


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = config.rng()
    n = config.n
    grid_points = 60 if config.quick else 300
    probabilities = _probability_grid(grid_points)
    ks = [2, 3, 10, 100, 1000, 10_000, 100_000]
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}

    for k in ks:
        if k > n:
            continue
        # Lemma 2.6 (no-CD window).
        window_26 = lemma_2_6_window(k, n)
        threshold_26 = lemma_2_6_threshold(n)
        violations_26 = [
            p
            for p in probabilities
            if window_violation(
                k, n, float(p), window=window_26, threshold=threshold_26
            )
            is not None
        ]
        # Lemma 2.10 (CD window).
        window_210 = lemma_2_10_window(k, n)
        threshold_210 = lemma_2_10_threshold(n)
        violations_210 = [
            p
            for p in probabilities
            if window_violation(
                k, n, float(p), window=window_210, threshold=threshold_210
            )
            is not None
        ]
        # Lemma 2.13 (probe interval floor).
        probe_grid = np.linspace(1.0 / (2.0 * k), 1.0 / k, 25)
        in_window_min = min(
            single_success_probability(k, float(p)) for p in probe_grid
        )
        rows.append(
            [
                k,
                f"[{window_26[0]:.2e}, {window_26[1]:.2e}]",
                len(violations_26),
                f"[{window_210[0]:.2e}, {window_210[1]:.2e}]",
                len(violations_210),
                in_window_min,
            ]
        )
        checks[f"k={k}: no Lemma 2.6 violations on the probability grid"] = (
            not violations_26
        )
        checks[f"k={k}: no Lemma 2.10 violations on the probability grid"] = (
            not violations_210
        )
        if k >= 2:
            checks[
                f"k={k}: min success on [1/(2k), 1/k] >= 1/8 (Lemma 2.13)"
            ] = in_window_min >= lemma_2_13_lower_bound()

    # Monte Carlo spot check of the analytic formula.
    spot_k, spot_p = 200, 1.0 / 150.0
    trials = config.effective_trials(quick_trials=2000)
    simulated = float(
        np.mean(rng.binomial(spot_k, spot_p, size=max(trials, 2000)) == 1)
    )
    analytic = single_success_probability(spot_k, spot_p)
    checks[
        "Monte Carlo success frequency matches k p (1-p)^(k-1) within 3 sigma"
    ] = abs(simulated - analytic) <= 3.0 * np.sqrt(
        analytic * (1 - analytic) / max(trials, 2000)
    )
    return ExperimentResult(
        experiment_id="LEMMA-PROBS",
        title="Success-probability windows (Lemmas 2.6, 2.10, 2.13)",
        reference="Lemmas 2.6, 2.10 and 2.13",
        headers=[
            "k",
            "2.6 window",
            "2.6 violations",
            "2.10 window",
            "2.10 violations",
            "min success on [1/2k, 1/k]",
        ],
        rows=rows,
        checks=checks,
        notes=[
            f"n={n}, beta=6 (the constant Lemma 2.6's proof derives),"
            f" probability grid of {len(probabilities)} log-spaced points",
        ],
    )
