"""Table 1, CD column: entropy scaling with collision detection.

* ``T1-CD-UP`` (:func:`run_upper`) - Theorem 2.16 / Corollary 2.18: the
  code-class search, fed the true distribution, solves within an
  ``O((H+1)^2)`` budget with constant probability across the entropy
  sweep.

* ``T1-CD-LOW`` (:func:`run_lower`) - Theorem 2.8 via Lemmas 2.9 + 2.11:
  the labelled-tree construction applied to concrete CD algorithms
  (Willard's search, the code-class search) yields range-finding trees
  whose expected solve depth and target-distance code lengths respect the
  entropy floors ``H - O(log log log log n)`` and ``H`` respectively.
"""

from __future__ import annotations

import math

from ..analysis.metrics import linear_fit
from ..analysis.montecarlo import estimate_uniform_rounds
from ..channel.channel import with_collision_detection
from ..core.predictions import Prediction
from ..infotheory.condense import num_ranges
from ..lowerbounds.bounds import loglogloglog, table1_cd_upper
from ..lowerbounds.range_finding import default_tree_tolerance
from ..lowerbounds.target_distance_coding import TreeTargetDistanceCode
from ..lowerbounds.tree_construction import build_range_finding_tree
from ..infotheory.distributions import SizeDistribution
from ..protocols.adapters import as_history_policy
from ..protocols.code_search import CodeSearchProtocol
from ..protocols.willard import WillardProtocol
from ..scenarios import (
    ChannelSpec,
    PredictionSpec,
    ProtocolSpec,
    ScenarioSpec,
    run_scenario,
)
from .base import ExperimentConfig, ExperimentResult
from .table1_nocd import (
    entropy_sweep_distributions,
    entropy_sweep_range_sets,
    entropy_workload_spec,
)

__all__ = ["run_upper", "run_lower"]

#: Constant-probability floor we require of the one-shot CD search.  The
#: paper proves "constant probability" without pinning the constant; the
#: search with 3-vote majorities empirically clears 1/4 with a wide margin.
SUCCESS_FLOOR = 0.25

#: Budget constant: one-shot code search through all classes up to length
#: ``l`` costs about ``repetitions * sum_{j<=l} ceil(log2|pi_j|+1)`` rounds;
#: ``BUDGET_CONSTANT * repetitions * (H + D + 2)^2`` upper-bounds it with
#: room for the Markov-inequality factor 2 of Theorem 2.16's proof.
BUDGET_CONSTANT = 4.0


def cd_budget(entropy_bits: float, repetitions: int) -> int:
    """Rounds allowed by the Theorem 2.16 budget at divergence 0."""
    return max(
        1,
        math.ceil(BUDGET_CONSTANT * repetitions * table1_cd_upper(entropy_bits)),
    )


def run_upper(config: ExperimentConfig) -> ExperimentResult:
    """``T1-CD-UP``: code-class search within the ``O(H^2)`` budget.

    Migrated onto the scenario API (declarative sweep points through
    :func:`run_scenario` with the shared generator - same RNG stream,
    same table as the former hand-wired estimator calls).
    """
    rng = config.rng()
    trials = config.effective_trials()
    repetitions = 3
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    entropies: list[float] = []
    means: list[float] = []

    for ranges in entropy_sweep_range_sets(config.n, quick=config.quick):
        workload = entropy_workload_spec(ranges)
        distribution = SizeDistribution.range_uniform_subset(
            config.n, ranges, name=workload.params["name"]
        )
        entropy_bits = distribution.condensed_entropy()
        budget = cd_budget(entropy_bits, repetitions)
        estimate = run_scenario(
            ScenarioSpec(
                name=f"t1-cd-up/{workload.params['name']}",
                protocol=ProtocolSpec(
                    "code-search",
                    {"repetitions": repetitions, "one_shot": True},
                ),
                prediction=PredictionSpec("truth"),
                workload=workload,
                channel=ChannelSpec(collision_detection=True),
                n=config.n,
                trials=trials,
                max_rounds=budget,
                seed=config.seed,
                batch=config.batch_mode(),
            ),
            rng=rng,
        )
        rows.append(
            [
                distribution.name,
                entropy_bits,
                budget,
                estimate.success.rate,
                estimate.success.lower,
                estimate.rounds.mean,
            ]
        )
        entropies.append(entropy_bits)
        means.append(estimate.rounds.mean)
        checks[
            f"H={entropy_bits:.2f}: success within budget {budget} rounds "
            f">= {SUCCESS_FLOOR} (Wilson lower bound)"
        ] = estimate.success.lower >= SUCCESS_FLOOR

    # Shape check: mean rounds grow at most quadratically in H - regress
    # mean rounds against (H+1)^2 and require a positive, bounded slope.
    if len(entropies) >= 3:
        xs = [(h + 1.0) ** 2 for h in entropies]
        slope, _ = linear_fit(xs, means)
        checks[
            "mean rounds vs (H+1)^2 slope within (0, 3*repetitions] "
            "(Table 1's CD upper shape)"
        ] = 0.0 < slope <= 3.0 * repetitions
    return ExperimentResult(
        experiment_id="T1-CD-UP",
        title="CD upper bound: code-class search across the entropy sweep",
        reference="Theorem 2.16 / Corollary 2.18 (Table 1, CD upper)",
        headers=[
            "workload",
            "H(c(X)) bits",
            "budget ~(H+1)^2",
            "success rate",
            "success CI lo",
            "mean rounds",
        ],
        rows=rows,
        checks=checks,
        notes=[
            f"n={config.n}, trials/point={trials}, repetitions={repetitions},"
            " one-shot sweeps, Y = X",
            f"budget = {BUDGET_CONSTANT} * repetitions * (H+1)^2 rounds",
        ],
    )


def run_lower(config: ExperimentConfig) -> ExperimentResult:
    """``T1-CD-LOW``: tree construction obeys the entropy floors."""
    rng = config.rng()
    channel = with_collision_detection()
    trials = max(200, config.effective_trials() // 4)
    tolerance = default_tree_tolerance(config.n)
    slack = loglogloglog(config.n)
    count = num_ranges(config.n)
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}

    for distribution in entropy_sweep_distributions(config.n, quick=config.quick):
        entropy_bits = distribution.condensed_entropy()
        condensed = distribution.condense()
        prediction = Prediction(distribution)
        for label, protocol in (
            ("willard", WillardProtocol(config.n, repetitions=1)),
            (
                "code-search",
                CodeSearchProtocol(prediction, repetitions=1, one_shot=False),
            ),
        ):
            policy = as_history_policy(protocol)
            tree = build_range_finding_tree(policy, config.n, extra_depth=2)
            expected_depth = tree.expected_depth(condensed, tolerance)
            code = TreeTargetDistanceCode(tree, tolerance)
            expected_len = code.expected_length(condensed)
            algorithm_rounds = estimate_uniform_rounds(
                protocol,
                distribution,
                rng,
                channel=channel,
                trials=trials,
                max_rounds=32 * count,
                batch=config.batch_mode(),
            ).rounds.mean
            paper_floor = max(0.0, entropy_bits - slack)
            rows.append(
                [
                    distribution.name,
                    label,
                    entropy_bits,
                    expected_depth,
                    paper_floor,
                    expected_len,
                    algorithm_rounds,
                ]
            )
            checks[
                f"H={entropy_bits:.2f} {label}: code E[len] >= H "
                "(Source Coding Theorem 2.2)"
            ] = expected_len >= entropy_bits - 1e-9
            checks[
                f"H={entropy_bits:.2f} {label}: E[depth] <= 2*E[alg rounds] "
                "(Lemma 2.11)"
            ] = expected_depth <= 2.0 * algorithm_rounds + 1e-6

    # The paper's additive floor H - O(llll n) carries an unknown constant
    # and the tree depths at L = 16 ranges are all tiny, so the floor is
    # evaluated through the *hard* codeword check above (E[len] >= H, the
    # Source Coding Theorem - it binds: slack is a few header bits).  The
    # H/2 leading term is checked on the algorithm itself across n: max-
    # entropy workloads at growing n must cost Willard's search more
    # rounds, tracking H = log log n.
    cross_rows: list[tuple[int, float, float]] = []
    for cross_n in (2**4, 2**8, 2**16):
        workload = entropy_sweep_distributions(cross_n, quick=True)[-1]
        cross_entropy_bits = workload.condensed_entropy()
        cross_rounds = estimate_uniform_rounds(
            WillardProtocol(cross_n, repetitions=1),
            workload,
            rng,
            channel=channel,
            trials=trials,
            max_rounds=32 * num_ranges(cross_n),
            batch=config.batch_mode(),
        ).rounds.mean
        cross_rows.append((cross_n, cross_entropy_bits, cross_rounds))
        rows.append(
            [
                f"max-H(n=2^{int(math.log2(cross_n))})",
                "willard",
                cross_entropy_bits,
                float("nan"),
                max(0.0, cross_entropy_bits / 2.0 - slack),
                float("nan"),
                cross_rounds,
            ]
        )
        checks[
            f"n={cross_n}: E[willard rounds] >= H/2 - llll(n) "
            f"(Theorem 2.8 floor with c=1)"
        ] = cross_rounds >= max(
            0.0, cross_entropy_bits / 2.0 - loglogloglog(cross_n)
        )
    checks[
        "E[willard rounds] at max entropy increases with n "
        "(H = log log n scaling of Theorem 2.8)"
    ] = all(
        cross_rows[i + 1][2] > cross_rows[i][2]
        for i in range(len(cross_rows) - 1)
    )
    return ExperimentResult(
        experiment_id="T1-CD-LOW",
        title="CD lower bound: tree construction vs the entropy floor",
        reference="Theorem 2.8 via Lemmas 2.9 and 2.11 (Table 1, CD lower)",
        headers=[
            "workload",
            "algorithm",
            "H(c(X)) bits",
            "E[depth]",
            "floor H - llll n",
            "code E[len] bits",
            "E[alg rounds]",
        ],
        rows=rows,
        checks=checks,
        notes=[
            f"n={config.n}, tree tolerance={tolerance:.2f} ranges "
            "(alpha * log log log n with alpha=1)",
            "codes add an Elias-gamma depth header for unique decodability;"
            " see target_distance_coding.py for the accounting",
        ],
    )
