"""``PLIAM``: support for the Section 2.5 conjecture via Pliam's separation.

The paper conjectures the extra factor in the exponent of Theorem 2.12 is
fundamental for the natural sorted-probing strategy, citing Pliam [19]:
entropy does not control *guesswork* (the expected number of sequential
guesses), so for every constant ``alpha`` there is a distribution
``X_alpha`` on which sorted probing needs more than
``alpha * 2^{H(c(X_alpha))}`` rounds.

The separating family (:meth:`SizeDistribution.pliam`) puts mass 1/2 on
one range and spreads 1/2 over ``m`` others: entropy grows like
``1 + log2(m)/2`` (so ``2^H ~ 2 sqrt(m)``) while guesswork grows like
``m/4`` - the ratio diverges as ``sqrt(m)/8``.  We compute the guesswork
*exactly* from the probe order and confirm with simulated one-shot runs.
"""

from __future__ import annotations

import math

from ..analysis.montecarlo import estimate_uniform_rounds
from ..channel.channel import without_collision_detection
from ..core.predictions import Prediction
from ..infotheory.condense import num_ranges
from ..infotheory.distributions import SizeDistribution
from ..protocols.sorted_probing import SortedProbingProtocol
from .base import ExperimentConfig, ExperimentResult

__all__ = ["run", "exact_guesswork"]


def exact_guesswork(distribution: SizeDistribution) -> float:
    """Expected probe index of the true range under sorted probing.

    ``sum_i q_(pi_i) * i`` with ``pi`` the probe order - the exact number
    of rounds before (and including) the probe that has the Lemma 2.13
    success floor.  A hard lower bound on the strategy's expected solving
    round, since no earlier probe targets the true range.
    """
    prediction = Prediction(distribution)
    condensed = distribution.condense()
    return math.fsum(
        condensed.probability(range_index) * position
        for position, range_index in enumerate(prediction.probe_order, start=1)
    )


def run(config: ExperimentConfig) -> ExperimentResult:
    """Guesswork-to-``2^H`` ratio diverges on the Pliam family."""
    # Wide boards give the family room: use n = 2^20 regardless of the
    # configured n so m can reach 16 light ranges.
    n = max(config.n, 2**20)
    count = num_ranges(n)
    rng = config.rng()
    channel = without_collision_detection()
    trials = config.effective_trials()
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    ratios: list[float] = []

    # A heavy head (mass 0.9) keeps the entropy nearly flat in m while the
    # guesswork grows linearly: ratio ~ (1 + m/10) / (1.4 * m^0.1), strictly
    # increasing over this sweep and unbounded as m grows.
    light_counts = [2, 16] if config.quick else [2, 4, 8, 16]
    for light in light_counts:
        if light + 1 > count:
            continue
        distribution = SizeDistribution.pliam(n, light, heavy_mass=0.9)
        entropy_bits = distribution.condensed_entropy()
        power = 2.0**entropy_bits
        guesswork = exact_guesswork(distribution)
        protocol = SortedProbingProtocol(
            Prediction(distribution), one_shot=False
        )
        simulated = estimate_uniform_rounds(
            protocol,
            distribution,
            rng,
            channel=channel,
            trials=trials,
            max_rounds=256 * count,
            batch=config.batch_mode(),
        ).rounds.mean
        ratio = guesswork / power
        ratios.append(ratio)
        rows.append(
            [light, entropy_bits, power, guesswork, simulated, ratio]
        )
        checks[
            f"m={light}: simulated E[rounds] >= guesswork/2 (rounds track "
            "the probe order, with slack for adjacent-probe successes)"
        ] = simulated >= guesswork * 0.5

    checks["guesswork / 2^H strictly increasing in m (separation diverges)"] = all(
        ratios[i + 1] > ratios[i] for i in range(len(ratios) - 1)
    )
    checks["separation exceeds alpha = 1 somewhere in the sweep"] = any(
        ratio > 1.0 for ratio in ratios
    )
    return ExperimentResult(
        experiment_id="PLIAM",
        title="Entropy vs guesswork separation (conjecture support)",
        reference="Section 2.5 conjecture, footnote 3, Pliam [19]",
        headers=[
            "light ranges m",
            "H(c(X)) bits",
            "2^H",
            "guesswork (exact)",
            "simulated E[rounds]",
            "guesswork / 2^H",
        ],
        rows=rows,
        checks=checks,
        notes=[
            f"n={n}, heavy mass 0.9 on range 1, 0.1 spread over m ranges",
            "the ratio grows like m^0.9 (up to constants): any alpha is"
            " eventually exceeded, which is the conjecture's content",
        ],
    )
