"""``BASELINE-X``: prediction protocols vs classical baselines.

The paper's framing (Section 1): predictions should (a) massively beat the
worst-case baselines when the predicted distribution is informative (low
entropy) and (b) cost essentially nothing when it is not (high entropy).
This experiment sweeps entropy and races, per channel model:

* no-CD: sorted probing (cycling) vs decay [2] vs the fixed-probability
  oracle;
* CD: code-class search (cycling) vs Willard [22].

The headline numbers are the low-entropy speed-up factors and the
high-entropy overhead factors.
"""

from __future__ import annotations

from ..analysis.montecarlo import estimate_uniform_rounds
from ..channel.channel import with_collision_detection, without_collision_detection
from ..core.predictions import Prediction
from ..infotheory.condense import num_ranges
from ..protocols.code_search import CodeSearchProtocol
from ..protocols.decay import DecayProtocol
from ..protocols.sorted_probing import SortedProbingProtocol
from ..protocols.willard import WillardProtocol
from .base import ExperimentConfig, ExperimentResult
from .table1_nocd import entropy_sweep_distributions

__all__ = ["run"]


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = config.rng()
    nocd = without_collision_detection()
    cd = with_collision_detection()
    trials = config.effective_trials()
    count = num_ranges(config.n)
    budget = 64 * count
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    sweep = entropy_sweep_distributions(config.n, quick=config.quick)

    ratio_low_nocd = ratio_high_nocd = None
    ratio_low_cd = ratio_high_cd = None

    for distribution in sweep:
        entropy_bits = distribution.condensed_entropy()
        prediction = Prediction(distribution)
        sorted_rounds = estimate_uniform_rounds(
            SortedProbingProtocol(
                prediction, one_shot=False, support_only=True
            ),
            distribution,
            rng,
            channel=nocd,
            trials=trials,
            max_rounds=budget,
            batch=config.batch_mode(),
        ).rounds.mean
        decay_rounds = estimate_uniform_rounds(
            DecayProtocol(config.n),
            distribution,
            rng,
            channel=nocd,
            trials=trials,
            max_rounds=budget,
            batch=config.batch_mode(),
        ).rounds.mean
        code_rounds = estimate_uniform_rounds(
            CodeSearchProtocol(prediction, one_shot=False, support_only=True),
            distribution,
            rng,
            channel=cd,
            trials=trials,
            max_rounds=budget,
            batch=config.batch_mode(),
        ).rounds.mean
        willard_rounds = estimate_uniform_rounds(
            WillardProtocol(config.n),
            distribution,
            rng,
            channel=cd,
            trials=trials,
            max_rounds=budget,
            batch=config.batch_mode(),
        ).rounds.mean
        rows.append(
            [
                entropy_bits,
                sorted_rounds,
                decay_rounds,
                decay_rounds / sorted_rounds,
                code_rounds,
                willard_rounds,
                willard_rounds / code_rounds,
            ]
        )
        if distribution is sweep[0]:
            ratio_low_nocd = decay_rounds / sorted_rounds
            ratio_low_cd = willard_rounds / code_rounds
        if distribution is sweep[-1]:
            ratio_high_nocd = sorted_rounds / decay_rounds
            ratio_high_cd = code_rounds / willard_rounds

    checks[
        "low entropy, no-CD: sorted probing beats decay by >= 2x"
    ] = ratio_low_nocd is not None and ratio_low_nocd >= 2.0
    checks[
        "low entropy, CD: code search beats Willard by >= 1.2x"
    ] = ratio_low_cd is not None and ratio_low_cd >= 1.2
    checks[
        "max entropy, no-CD: sorted probing within 3x of decay"
    ] = ratio_high_nocd is not None and ratio_high_nocd <= 3.0
    checks[
        "max entropy, CD: code search within 3x of Willard"
    ] = ratio_high_cd is not None and ratio_high_cd <= 3.0
    return ExperimentResult(
        experiment_id="BASELINE-X",
        title="Prediction protocols vs worst-case baselines across entropy",
        reference="Section 1.1 framing; Tables 1 bounds at the extremes",
        headers=[
            "H(c(X)) bits",
            "sorted probing",
            "decay",
            "no-CD speed-up",
            "code search",
            "willard",
            "CD speed-up",
        ],
        rows=rows,
        checks=checks,
        notes=[
            f"n={config.n}, trials/point={trials}; all protocols in their"
            " cycling (expected-time) variants; entries are mean rounds",
            "speed-up = baseline rounds / prediction-protocol rounds",
        ],
    )
