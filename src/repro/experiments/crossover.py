"""``BASELINE-X``: prediction protocols vs classical baselines.

The paper's framing (Section 1): predictions should (a) massively beat the
worst-case baselines when the predicted distribution is informative (low
entropy) and (b) cost essentially nothing when it is not (high entropy).
This experiment sweeps entropy and races, per channel model:

* no-CD: sorted probing (cycling) vs decay [2] vs the fixed-probability
  oracle;
* CD: code-class search (cycling) vs Willard [22].

The headline numbers are the low-entropy speed-up factors and the
high-entropy overhead factors.

Each race arm is a declarative :class:`~repro.scenarios.spec.ScenarioSpec`
executed through :func:`~repro.scenarios.runner.run_scenario` with the
experiment's shared generator - the four arms per entropy point are
literally four scenario points differing only in protocol id and channel,
and the RNG stream (hence the measured table) is identical to the former
hand-wired estimator calls (guarded by the scenario-equivalence tests).
"""

from __future__ import annotations

from ..infotheory.condense import num_ranges
from ..infotheory.distributions import SizeDistribution
from ..scenarios import (
    ChannelSpec,
    PredictionSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_scenario,
)
from .base import ExperimentConfig, ExperimentResult
from .table1_nocd import entropy_sweep_range_sets, entropy_workload_spec

__all__ = ["run"]

#: The four race arms: (protocol spec, needs prediction, CD channel).
_ARMS: list[tuple[ProtocolSpec, bool, bool]] = [
    (
        ProtocolSpec("sorted-probing", {"one_shot": False, "support_only": True}),
        True,
        False,
    ),
    (ProtocolSpec("decay", {}), False, False),
    (
        ProtocolSpec("code-search", {"one_shot": False, "support_only": True}),
        True,
        True,
    ),
    (ProtocolSpec("willard", {}), False, True),
]


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = config.rng()
    trials = config.effective_trials()
    count = num_ranges(config.n)
    budget = 64 * count
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    range_sets = entropy_sweep_range_sets(config.n, quick=config.quick)

    ratio_low_nocd = ratio_high_nocd = None
    ratio_low_cd = ratio_high_cd = None

    for index, ranges in enumerate(range_sets):
        workload = entropy_workload_spec(ranges)
        entropy_bits = SizeDistribution.range_uniform_subset(
            config.n, ranges
        ).condensed_entropy()
        arm_rounds: list[float] = []
        for protocol, needs_prediction, collision_detection in _ARMS:
            result = run_scenario(
                _arm_spec(
                    config,
                    protocol,
                    needs_prediction,
                    collision_detection,
                    workload,
                    trials,
                    budget,
                ),
                rng=rng,
            )
            arm_rounds.append(result.rounds.mean)
        sorted_rounds, decay_rounds, code_rounds, willard_rounds = arm_rounds
        rows.append(
            [
                entropy_bits,
                sorted_rounds,
                decay_rounds,
                decay_rounds / sorted_rounds,
                code_rounds,
                willard_rounds,
                willard_rounds / code_rounds,
            ]
        )
        if index == 0:
            ratio_low_nocd = decay_rounds / sorted_rounds
            ratio_low_cd = willard_rounds / code_rounds
        if index == len(range_sets) - 1:
            ratio_high_nocd = sorted_rounds / decay_rounds
            ratio_high_cd = code_rounds / willard_rounds

    checks[
        "low entropy, no-CD: sorted probing beats decay by >= 2x"
    ] = ratio_low_nocd is not None and ratio_low_nocd >= 2.0
    checks[
        "low entropy, CD: code search beats Willard by >= 1.2x"
    ] = ratio_low_cd is not None and ratio_low_cd >= 1.2
    checks[
        "max entropy, no-CD: sorted probing within 3x of decay"
    ] = ratio_high_nocd is not None and ratio_high_nocd <= 3.0
    checks[
        "max entropy, CD: code search within 3x of Willard"
    ] = ratio_high_cd is not None and ratio_high_cd <= 3.0
    return ExperimentResult(
        experiment_id="BASELINE-X",
        title="Prediction protocols vs worst-case baselines across entropy",
        reference="Section 1.1 framing; Tables 1 bounds at the extremes",
        headers=[
            "H(c(X)) bits",
            "sorted probing",
            "decay",
            "no-CD speed-up",
            "code search",
            "willard",
            "CD speed-up",
        ],
        rows=rows,
        checks=checks,
        notes=[
            f"n={config.n}, trials/point={trials}; all protocols in their"
            " cycling (expected-time) variants; entries are mean rounds",
            "speed-up = baseline rounds / prediction-protocol rounds",
        ],
    )


def _arm_spec(
    config: ExperimentConfig,
    protocol: ProtocolSpec,
    needs_prediction: bool,
    collision_detection: bool,
    workload: WorkloadSpec,
    trials: int,
    budget: int,
) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"baseline-x/{protocol.id}/{workload.params['name']}",
        protocol=protocol,
        prediction=PredictionSpec("truth") if needs_prediction else None,
        workload=workload,
        channel=ChannelSpec(collision_detection=collision_detection),
        n=config.n,
        trials=trials,
        max_rounds=budget,
        seed=config.seed,
        batch=config.batch_mode(),
    )
