"""Experiment infrastructure: configs, results and shape checks.

Every experiment in the registry consumes an :class:`ExperimentConfig`
(scale knobs + RNG seed) and produces an :class:`ExperimentResult` - a
table of measured rows, a set of named boolean *shape checks* (the
operational meaning of "reproduced" for an asymptotic claim; see
DESIGN.md Section 3) and free-form notes.  The CLI and the benchmark
harness both render results through :meth:`ExperimentResult.render`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.tables import render_csv, render_table

__all__ = ["ExperimentConfig", "ExperimentResult"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and reproducibility knobs shared by all experiments.

    Attributes
    ----------
    n:
        Maximum network size (``2^16`` default: 16 condensed ranges).
    trials:
        Monte Carlo trials per measured point.
    seed:
        Root RNG seed; every experiment derives its generator from it.
    quick:
        Thinned sweeps and reduced trials, for benchmarks and CI.  The
        full scale is the documented EXPERIMENTS.md configuration.
    batch:
        Run uniform Monte Carlo estimation on the vectorized batch engine
        (the default; protocols that cannot batch fall back to the scalar
        loop automatically).  ``False`` forces the scalar reference loop
        everywhere - the ``--no-batch`` escape hatch for A/B-ing the two
        substrates.
    """

    n: int = 2**16
    trials: int = 3000
    seed: int = 2021
    quick: bool = False
    batch: bool = True

    def rng(self) -> np.random.Generator:
        """A fresh generator seeded from :attr:`seed`."""
        return np.random.default_rng(self.seed)

    def effective_trials(self, quick_trials: int = 400) -> int:
        """Trial count honouring the quick flag."""
        return min(self.trials, quick_trials) if self.quick else self.trials

    def batch_mode(self) -> bool | None:
        """The estimators' ``batch`` argument for this config.

        ``None`` (auto-detect with scalar fallback) when batching is on,
        ``False`` (forced scalar) when it is off - the config never forces
        ``batch=True`` because registry experiments mix batchable and
        non-batchable protocols.
        """
        return None if self.batch else False


@dataclass
class ExperimentResult:
    """A rendered-ready experiment outcome.

    ``checks`` maps a human-readable claim to whether the measurement
    satisfied it; an experiment "reproduces" its paper artefact when all
    checks pass.  ``reference`` names the paper artefact (table cell,
    theorem) being reproduced.
    """

    experiment_id: str
    title: str
    reference: str
    headers: list[str]
    rows: list[list[object]]
    checks: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def all_checks_pass(self) -> bool:
        """Whether every named shape check held."""
        return all(self.checks.values())

    def failed_checks(self) -> list[str]:
        """Names of the checks that did not hold."""
        return [name for name, passed in self.checks.items() if not passed]

    def render(self, *, precision: int = 3) -> str:
        """Full plain-text report: table, checks, notes."""
        parts = [
            f"== {self.experiment_id}: {self.title}",
            f"   reproduces: {self.reference}",
            "",
            render_table(self.headers, self.rows, precision=precision),
        ]
        if self.checks:
            parts.append("checks:")
            for name, passed in self.checks.items():
                parts.append(f"  [{'PASS' if passed else 'FAIL'}] {name}")
        if self.notes:
            parts.append("notes:")
            for note in self.notes:
                parts.append(f"  - {note}")
        return "\n".join(parts) + "\n"

    def to_csv(self) -> str:
        """The measurement table as CSV."""
        return render_csv(self.headers, self.rows)
