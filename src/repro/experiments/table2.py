"""Table 2: perfect-advice speed-up, all four cells.

Each experiment sweeps the advice budget ``b`` and checks the measured
round complexity against the paper's tight bound for that cell:

* ``T2-DET-NCD`` - deterministic, no CD: ``Theta(n / 2^b)``
  (Theorem 3.4 lower, candidate-scan upper);
* ``T2-DET-CD`` - deterministic, CD: ``Theta(log n - b)``
  (Theorem 3.5 lower, tree-descent upper);
* ``T2-RAND-NCD`` - randomized, no CD: ``Theta(log n / 2^b)``
  (Theorem 3.6, truncated decay);
* ``T2-RAND-CD`` - randomized, CD: ``Theta(log log n - b)``
  (Theorem 3.7, truncated Willard).

Deterministic rows use worst-case adversarial participant sets (the scan's
worst case packs participants at the top of the advised subtree; the
descent's worst case keeps them adjacent - both are the ``suffix``
adversary with ``k = 2``).  Randomized rows report the worst expected
time over the ranges of the advised block; truncated decay is evaluated
*exactly* (it is oblivious), truncated Willard by Monte Carlo.

Every measured cell is a declarative
:class:`~repro.scenarios.spec.ScenarioSpec` executed through
:func:`~repro.scenarios.runner.run_scenario` with the experiment's shared
generator (the deterministic cells route to the vectorized player engine;
being deterministic, they reproduce the pre-migration direct
``run_players`` executions exactly - guarded by the scenario-equivalence
tests).
"""

from __future__ import annotations

import math

from ..analysis.exact import schedule_solve_time
from ..core.advice import id_bit_width
from ..infotheory.condense import num_ranges, representative_size
from ..lowerbounds.bounds import (
    table2_det_cd_lower,
    table2_det_cd_upper,
    table2_det_nocd_lower,
    table2_det_nocd_upper,
    table2_rand_cd,
    table2_rand_nocd,
)
from ..protocols.advice_deterministic import (
    DeterministicScanProtocol,
    DeterministicTreeDescentProtocol,
)
from ..protocols.advice_randomized import (
    TruncatedDecayProtocol,
    advised_block,
    block_index_for,
)
from ..scenarios import (
    AdviceSpec,
    ChannelSpec,
    ProtocolSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_scenario,
)
from .base import ExperimentConfig, ExperimentResult

__all__ = ["run_det_nocd", "run_det_cd", "run_rand_nocd", "run_rand_cd"]


def _advice_sweep(maximum: int, *, quick: bool) -> list[int]:
    step = 2 if quick else 1
    return list(range(0, maximum + 1, step))


def _det_cell_spec(
    config: ExperimentConfig,
    *,
    protocol_id: str,
    n: int,
    b: int,
    max_rounds: int,
    collision_detection: bool,
) -> ScenarioSpec:
    """One deterministic Table-2 cell as a scenario point.

    A single worst-case execution: the ``suffix`` adversary packs both
    participants at the very top of the id space (``{n-2, n-1}``), which
    scans the advised subtree nearly to its end (no-CD) and forces a
    full descent to the participants' last differing bit (CD).
    """
    return ScenarioSpec(
        name=f"t2-{protocol_id}/b={b}",
        protocol=ProtocolSpec(protocol_id, {"advice_bits": b}),
        workload=WorkloadSpec("fixed", {"k": 2}),
        channel=ChannelSpec(collision_detection=collision_detection),
        advice=AdviceSpec(function="min-id-prefix", bits=b),
        adversary="suffix",
        n=n,
        trials=1,
        max_rounds=max_rounds,
        seed=config.seed,
        batch=config.batch_mode(),
    )


def run_det_nocd(config: ExperimentConfig) -> ExperimentResult:
    """``T2-DET-NCD``: candidate scan vs ``Theta(n / 2^b)``."""
    # Keep the worst case affordable: the b=0 scan visits up to n ids.
    n = min(config.n, 2**12)
    width = id_bit_width(n)
    rng = config.rng()
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}

    for b in _advice_sweep(width, quick=config.quick):
        protocol = DeterministicScanProtocol(b)
        result = run_scenario(
            _det_cell_spec(
                config,
                protocol_id="deterministic-scan",
                n=n,
                b=b,
                max_rounds=protocol.worst_case_rounds(n) + 1,
                collision_detection=False,
            ),
            rng=rng,
        )
        solved = result.success.rate == 1.0
        rounds = int(result.rounds.mean) if solved else math.nan
        upper = table2_det_nocd_upper(n, b)
        lower = table2_det_nocd_lower(n, b)
        rows.append([b, rounds, lower, upper, solved])
        checks[f"b={b}: solved within the upper bound {upper:.0f}"] = (
            solved and rounds <= upper
        )
        checks[
            f"b={b}: worst-case rounds >= lower bound n/2^b/2 = {lower:.1f}"
        ] = rounds >= lower - 1e-9
    ratios = [row[1] / max(row[3], 1.0) for row in rows]
    checks["worst-case rounds track the Theta(n/2^b) shape (ratio >= 1/4)"] = all(
        ratio >= 0.25 for ratio in ratios
    )
    return ExperimentResult(
        experiment_id="T2-DET-NCD",
        title="Deterministic advice without collision detection",
        reference="Theorem 3.4 + Section 3.2 upper bound (Table 2, det no-CD)",
        headers=["b bits", "rounds (worst case)", "lower n/2^b/2", "upper 2^(w-b)", "solved"],
        rows=rows,
        checks=checks,
        notes=[
            f"n={n} (capped for the b=0 scan), suffix adversary packs "
            "participants at the top of the advised subtree",
            "deterministic protocol: a single worst-case execution per b",
        ],
    )


def run_det_cd(config: ExperimentConfig) -> ExperimentResult:
    """``T2-DET-CD``: tree descent vs ``Theta(log n - b)``."""
    n = config.n
    width = id_bit_width(n)
    rng = config.rng()
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}

    for b in _advice_sweep(width, quick=config.quick):
        protocol = DeterministicTreeDescentProtocol(b)
        # Worst case: adjacent participants - the descent cannot isolate
        # either until it reaches their last differing bit.
        result = run_scenario(
            _det_cell_spec(
                config,
                protocol_id="tree-descent",
                n=n,
                b=b,
                max_rounds=protocol.worst_case_rounds(n) + 1,
                collision_detection=True,
            ),
            rng=rng,
        )
        solved = result.success.rate == 1.0
        rounds = int(result.rounds.mean) if solved else math.nan
        upper = table2_det_cd_upper(n, b)
        lower = table2_det_cd_lower(n, b)
        rows.append([b, rounds, lower, upper, solved])
        checks[f"b={b}: solved within the upper bound {upper:.0f}"] = (
            solved and rounds <= upper
        )
        checks[
            f"b={b}: worst-case rounds >= max(1, log n - b) - 1 = "
            f"{max(1.0, lower) - 1:.1f}"
        ] = rounds >= max(1.0, lower) - 1.0 - 1e-9
    return ExperimentResult(
        experiment_id="T2-DET-CD",
        title="Deterministic advice with collision detection",
        reference="Theorem 3.5 + Section 3.2 upper bound (Table 2, det CD)",
        headers=["b bits", "rounds (worst case)", "lower log n - b", "upper w-b+1", "solved"],
        rows=rows,
        checks=checks,
        notes=[
            f"n={n}, adjacent-participant suffix adversary forces a full "
            "descent",
            "upper bound is exact: w - b + 1 rounds with w = ceil(log2 n)",
        ],
    )


def _worst_block_sizes(n: int, b: int) -> list[int]:
    """Representative participant counts for each range of block 0's peers.

    For the randomized rows the adversary may pick any ``k``; the worst
    cases sit at the ranges of the advised block (the advice is consistent
    with all of them).  We probe every range of the block containing the
    *last* block entries too - in practice the first block suffices since
    blocks are symmetric; we use the block of the median range for balance.
    """
    count = num_ranges(n)
    median_range = max(1, count // 2)
    block = advised_block(n, b, block_index_for(n, b, representative_size(median_range)))
    return [min(representative_size(i), n) for i in block]


def run_rand_nocd(config: ExperimentConfig) -> ExperimentResult:
    """``T2-RAND-NCD``: truncated decay vs ``Theta(log n / 2^b)``."""
    n = config.n
    count = num_ranges(n)
    max_b = max(1, math.ceil(math.log2(count)))
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    measured: list[float] = []

    for b in _advice_sweep(max_b, quick=config.quick):
        worst = 0.0
        for k in _worst_block_sizes(n, b):
            protocol = TruncatedDecayProtocol.for_count(n, b, k)
            horizon = 64 * max(1, len(protocol.block))
            distribution = schedule_solve_time(
                protocol.schedule, k, horizon=horizon, cycle=True
            )
            worst = max(worst, distribution.expected_rounds_conditional())
        shape = table2_rand_nocd(n, b)
        rows.append([b, worst, shape, worst / shape])
        measured.append(worst)
        checks[
            f"b={b}: worst E[rounds] within [1/8, 8] x (log n / 2^b)"
        ] = shape / 8.0 <= worst <= 8.0 * shape
    checks["E[rounds] non-increasing in b"] = all(
        measured[i + 1] <= measured[i] + 1e-9 for i in range(len(measured) - 1)
    )
    return ExperimentResult(
        experiment_id="T2-RAND-NCD",
        title="Randomized advice without collision detection (truncated decay)",
        reference="Theorem 3.6 (Table 2, randomized no-CD)",
        headers=["b bits", "worst E[rounds]", "shape log n / 2^b", "ratio"],
        rows=rows,
        checks=checks,
        notes=[
            f"n={n}; expectation computed exactly (oblivious schedule),"
            " worst case over the ranges of the advised block",
        ],
    )


def run_rand_cd(config: ExperimentConfig) -> ExperimentResult:
    """``T2-RAND-CD``: truncated Willard vs ``Theta(log log n - b)``.

    Migrated onto the scenario API: each ``(b, k)`` cell is a declarative
    :class:`ScenarioSpec` (truncated Willard via the protocol registry,
    fixed-``k`` workload) executed with the shared generator, preserving
    the pre-migration RNG stream and table.
    """
    n = config.n
    count = num_ranges(n)
    max_b = max(1, math.ceil(math.log2(count)))
    rng = config.rng()
    trials = config.effective_trials()
    repetitions = 3
    rows: list[list[object]] = []
    checks: dict[str, bool] = {}
    measured: list[float] = []

    for b in _advice_sweep(max_b, quick=config.quick):
        worst = 0.0
        for k in _worst_block_sizes(n, b):
            estimate = run_scenario(
                ScenarioSpec(
                    name=f"t2-rand-cd/b={b}/k={k}",
                    protocol=ProtocolSpec(
                        "truncated-willard",
                        {
                            "advice_bits": b,
                            "k": k,
                            "repetitions": repetitions,
                            "restart": True,
                        },
                    ),
                    workload=WorkloadSpec("fixed", {"k": k}),
                    channel=ChannelSpec(collision_detection=True),
                    n=n,
                    trials=trials,
                    max_rounds=1024,
                    seed=config.seed,
                    batch=config.batch_mode(),
                ),
                rng=rng,
            )
            # max() would silently discard a NaN mean; a block size that
            # never solves must fail the shape checks loudly instead.
            worst = max(
                worst,
                estimate.rounds.mean if estimate.any_successes else math.inf,
            )
        shape = table2_rand_cd(n, b)
        rows.append([b, worst, shape, worst / shape])
        measured.append(worst)
        checks[
            f"b={b}: worst E[rounds] <= {4 * repetitions} x (log log n - b) "
            "shape"
        ] = worst <= 4.0 * repetitions * shape + 1e-9
    checks["E[rounds] non-increasing in b (within noise)"] = all(
        measured[i + 1] <= measured[i] * 1.25 + 0.5
        for i in range(len(measured) - 1)
    )
    checks["b=max solves in O(1): worst E[rounds] <= 2*repetitions + 1"] = (
        measured[-1] <= 2.0 * repetitions + 1.0
    )
    return ExperimentResult(
        experiment_id="T2-RAND-CD",
        title="Randomized advice with collision detection (truncated Willard)",
        reference="Theorem 3.7 (Table 2, randomized CD)",
        headers=["b bits", "worst E[rounds]", "shape log log n - b", "ratio"],
        rows=rows,
        checks=checks,
        notes=[
            f"n={n}, trials/point={trials}, repetitions={repetitions},"
            " worst case over the ranges of the advised block",
        ],
    )
