"""The perfect-advice model of Section 3.

An *advice function* ``f_A : P(V) -> {0,1}^b`` sees the exact participant
set ``P`` chosen by the adversary and hands every participant the same
``b``-bit string before round 1 (Section 3.1).  The protocols of Section 3
are co-designed with their advice functions; this module provides:

* :class:`AdviceFunction` - the interface, with budget validation;
* :class:`NullAdvice` - ``b = 0`` (the classical no-advice setting);
* :class:`MinIdPrefixAdvice` - the first ``b`` bits of the smallest active
  player's id, i.e. the first ``b`` steps of a balanced-binary-tree
  traversal towards an active leaf.  Drives both deterministic upper
  bounds of Section 3.2;
* :class:`RangeBlockAdvice` - identifies which of ``2^b`` consecutive
  blocks of the geometric ranges ``L(n)`` contains the true range
  ``ceil(log2 k)``.  Drives the randomized upper bounds (truncated decay,
  Theorem 3.6; truncated Willard, Theorem 3.7);
* :class:`FullIdAdvice` - ``b = ceil(log2 n)`` bits naming one active
  player outright (the ``b >= log n`` regime where one round suffices).
"""

from __future__ import annotations

import abc
import math
from collections.abc import Collection

from ..infotheory.condense import num_ranges, range_of_size

__all__ = [
    "AdviceFunction",
    "NullAdvice",
    "MinIdPrefixAdvice",
    "RangeBlockAdvice",
    "FullIdAdvice",
    "AdviceError",
    "id_bit_width",
    "id_to_bits",
    "bits_to_int",
    "range_blocks",
]


class AdviceError(ValueError):
    """Raised on malformed advice or violated advice budgets."""


def id_bit_width(n: int) -> int:
    """Bits needed to name any of ``n`` player ids ``0..n-1``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return max(1, math.ceil(math.log2(n)))


def id_to_bits(player_id: int, width: int) -> str:
    """Fixed-width big-endian binary encoding of a player id."""
    if player_id < 0:
        raise AdviceError(f"player id must be >= 0, got {player_id}")
    if player_id >= 2**width:
        raise AdviceError(f"player id {player_id} does not fit in {width} bits")
    return format(player_id, "b").zfill(width)


def bits_to_int(bits: str) -> int:
    """Decode a big-endian bit string to an integer (empty string -> 0)."""
    if any(bit not in "01" for bit in bits):
        raise AdviceError(f"malformed bit string {bits!r}")
    return int(bits, 2) if bits else 0


def range_blocks(total_ranges: int, bits: int) -> list[list[int]]:
    """Partition ranges ``1..total_ranges`` into ``2^bits`` consecutive blocks.

    Used by :class:`RangeBlockAdvice` and the randomized advice protocols:
    with ``b`` bits the search space shrinks from ``L`` ranges to a block of
    ``ceil(L / 2^b)``.  Trailing blocks may be empty when ``2^bits``
    exceeds the range count; they are returned empty so block indices and
    advice strings stay in bijection.
    """
    if total_ranges < 1:
        raise ValueError("total_ranges must be >= 1")
    if bits < 0:
        raise ValueError("bits must be >= 0")
    block_count = 2**bits
    block_size = math.ceil(total_ranges / block_count)
    blocks: list[list[int]] = []
    for index in range(block_count):
        start = index * block_size + 1
        stop = min(start + block_size - 1, total_ranges)
        blocks.append(list(range(start, stop + 1)) if start <= stop else [])
    return blocks


class AdviceFunction(abc.ABC):
    """Interface of Section 3.1's advice functions.

    Attributes
    ----------
    bits:
        The budget ``b``: every advice string must have exactly this many
        bits (shorter strings can always be padded, so fixing the length
        loses no generality and keeps decoding trivial).
    """

    def __init__(self, bits: int) -> None:
        if bits < 0:
            raise AdviceError(f"advice budget must be >= 0, got {bits}")
        self.bits = bits

    @abc.abstractmethod
    def advise(self, participants: Collection[int], n: int) -> str:
        """The advice string for participant set ``participants``.

        Implementations must return exactly :attr:`bits` bits; use
        :meth:`checked_advise` in harnesses to enforce the budget.
        """

    def checked_advise(self, participants: Collection[int], n: int) -> str:
        """Like :meth:`advise` but validates the budget and participant set."""
        if not participants:
            raise AdviceError("participant set must be non-empty")
        for player_id in participants:
            if not 0 <= player_id < n:
                raise AdviceError(
                    f"player id {player_id} outside 0..{n - 1}"
                )
        advice = self.advise(participants, n)
        if len(advice) != self.bits:
            raise AdviceError(
                f"advice {advice!r} has {len(advice)} bits, budget is {self.bits}"
            )
        if any(bit not in "01" for bit in advice):
            raise AdviceError(f"malformed advice {advice!r}")
        return advice

    def __repr__(self) -> str:
        return f"<{type(self).__name__} b={self.bits}>"


class NullAdvice(AdviceFunction):
    """No advice (``b = 0``): the classical setting."""

    def __init__(self) -> None:
        super().__init__(bits=0)

    def advise(self, participants: Collection[int], n: int) -> str:
        del participants, n
        return ""


class MinIdPrefixAdvice(AdviceFunction):
    """First ``b`` bits of the minimum active player's id.

    Viewing ids as leaves of a balanced binary tree of height
    ``ceil(log2 n)``, this is the first ``b`` steps of the root-to-leaf
    traversal towards the smallest participant - precisely the advice the
    paper's deterministic upper bounds deploy (Section 3.2).  Any fixed
    tie-break rule works; minimum-id keeps executions reproducible.
    """

    def advise(self, participants: Collection[int], n: int) -> str:
        width = id_bit_width(n)
        if self.bits > width:
            raise AdviceError(
                f"budget {self.bits} exceeds id width {width} for n={n}"
            )
        target = min(participants)
        return id_to_bits(target, width)[: self.bits]


class RangeBlockAdvice(AdviceFunction):
    """Index of the range block containing the true range ``ceil(log2 k)``.

    Partition ``L(n)`` into ``2^b`` consecutive blocks
    (:func:`range_blocks`); the advice is the ``b``-bit index of the block
    containing the participant count's range.  With ``b >= log2 L`` each
    block is a single range, i.e. the advice pins the range exactly - the
    regime Theorem 3.7 solves in ``O(1)``.

    Participant sets of size 1 are mapped to range 1 (the paper assumes
    ``k >= 2``; protocols handle ``k = 1`` with a dedicated all-transmit
    round, so the advice value is immaterial there).
    """

    def advise(self, participants: Collection[int], n: int) -> str:
        total = num_ranges(n)
        k = len(participants)
        true_range = 1 if k < 2 else range_of_size(k)
        blocks = range_blocks(total, self.bits)
        for index, block in enumerate(blocks):
            if true_range in block:
                return id_to_bits(index, self.bits) if self.bits else ""
        raise AdviceError(
            f"range {true_range} not covered by blocks for n={n}, b={self.bits}"
        )


class FullIdAdvice(AdviceFunction):
    """``ceil(log2 n)`` bits naming the minimum active player outright.

    The ``b >= log n`` endpoint of Section 3: contention resolution in one
    round, since every participant learns exactly who should transmit.
    """

    def __init__(self, n: int) -> None:
        super().__init__(bits=id_bit_width(n))
        self._n = n

    def advise(self, participants: Collection[int], n: int) -> str:
        if n != self._n:
            raise AdviceError(f"advice built for n={self._n}, used with n={n}")
        return id_to_bits(min(participants), self.bits)
