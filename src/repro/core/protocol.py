"""Protocol interfaces: how algorithms plug into the channel simulator.

Two families of protocols appear in the paper, and each gets an interface:

* **Uniform protocols** (Section 2.1): every participant uses the *same*
  transmission probability each round.  Without CD this is a fixed schedule
  ``p_1, p_2, ...``; with CD the probability may depend on the shared
  collision history.  Because behaviour is identity-oblivious, a uniform
  execution is fully described by the per-round probability, and the number
  of transmitters is exactly ``Binomial(k, p)`` - the simulator exploits
  this for an exact, fast simulation path.

* **Player protocols** (Section 3): deterministic or randomized algorithms
  where behaviour may depend on the player's identity and on advice bits.
  These require the full per-player simulation path.

Protocols are *factories* of per-execution sessions so a single protocol
object can be reused across thousands of Monte Carlo trials without state
leakage.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .feedback import Observation

if TYPE_CHECKING:  # pragma: no cover - import only for type checkers
    import numpy as np

__all__ = [
    "BatchSchedule",
    "UniformSession",
    "UniformProtocol",
    "PlayerSession",
    "PlayerBatchSessions",
    "PlayerProtocol",
    "ProtocolError",
    "ScheduleExhausted",
    "OBS_QUIET",
    "OBS_SILENCE",
    "OBS_COLLISION",
]

#: Integer observation codes used on the batch player path.  The scalar
#: engine hands each session an :class:`~repro.core.feedback.Observation`
#: enum member; the batch engine advances thousands of trials per call and
#: passes one int8 code per live trial instead, so sessions can branch with
#: vectorized compares rather than per-trial enum dispatch.  ``SUCCESS``
#: has no code - a successful trial retires and is never observed.
OBS_QUIET = 0
OBS_SILENCE = 1
OBS_COLLISION = 2


class ProtocolError(RuntimeError):
    """Raised when a protocol is driven outside its contract.

    Typical causes: asking for a probability after the schedule was
    exhausted, or running a CD-only protocol on a channel without collision
    detection.
    """


class ScheduleExhausted(ProtocolError):
    """A one-shot protocol has no further rounds.

    The simulator treats this as a clean (unsolved) termination rather
    than an error: one-shot algorithms such as the single pass of Section
    2.5 legitimately give up after their last scheduled round.
    """


@dataclass(frozen=True)
class BatchSchedule:
    """A uniform protocol's full probability schedule, known in advance.

    The vectorizable description of an *oblivious* (feedback-ignoring)
    uniform protocol: round ``r`` uses ``probabilities[(r - 1) % len]``
    when ``cycle`` is true, and the protocol exhausts after
    ``len(probabilities)`` rounds otherwise.  Returned by
    :meth:`UniformProtocol.batch_schedule` and consumed by the batch
    simulation engine (:mod:`repro.channel.batch`), which advances every
    Monte Carlo trial through the same precomputed schedule with one
    vectorized binomial draw per round.
    """

    probabilities: tuple[float, ...]
    cycle: bool

    def __post_init__(self) -> None:
        if len(self.probabilities) == 0:
            raise ValueError("batch schedule must contain at least one round")

    def horizon(self, max_rounds: int) -> int:
        """Rounds actually playable within ``max_rounds``."""
        if self.cycle:
            return max_rounds
        return min(max_rounds, len(self.probabilities))


class UniformSession(abc.ABC):
    """Per-execution state of a uniform protocol.

    The simulator alternates :meth:`next_probability` (before the round)
    and :meth:`observe` (after the round) until success or the round budget
    runs out.
    """

    def fork(self) -> "UniformSession":
        """An independent copy that continues from the same state.

        The batch engine forks a group's representative session when its
        trials' observation histories diverge (collision vs silence).  The
        default deep copy is always safe; sessions whose mutable state is
        all scalars/immutables override with a shallow copy to keep group
        splits cheap.
        """
        import copy

        return copy.deepcopy(self)

    @abc.abstractmethod
    def next_probability(self) -> float:
        """Transmission probability for the upcoming round (in ``[0, 1]``).

        Raises :class:`ProtocolError` when the protocol has no further
        rounds scheduled (one-shot protocols may exhaust; cycling protocols
        never do).
        """

    @abc.abstractmethod
    def observe(self, observation: Observation) -> None:
        """Receive the channel observation of the round just played.

        No-CD uniform algorithms are oblivious and typically ignore this;
        CD algorithms extend their collision history.  Never called with
        ``Observation.SUCCESS`` - success ends the execution.
        """


class UniformProtocol(abc.ABC):
    """Factory of :class:`UniformSession` executions.

    Attributes
    ----------
    name:
        Human-readable protocol name for reports.
    requires_collision_detection:
        Whether sessions branch on collision-vs-silence observations.  The
        simulator refuses to run such a protocol on a no-CD channel rather
        than silently feeding it degraded observations.
    deterministic_sessions:
        Whether every session is a deterministic function of its
        observation sequence.  True for all of the paper's uniform
        algorithms (``session()`` takes no randomness: no-CD schedules are
        fixed in advance, CD policies are functions of the shared collision
        history - Section 2.1), which is what lets the batch engine advance
        many trials through one representative session per distinct
        history.  Wrappers that inject per-session randomness must set this
        to ``False`` to keep the scalar path authoritative.
    """

    name: str = "uniform-protocol"
    requires_collision_detection: bool = False
    deterministic_sessions: bool = True

    @abc.abstractmethod
    def session(self) -> UniformSession:
        """Start a fresh execution."""

    def batch_schedule(self) -> BatchSchedule | None:
        """The full probability schedule, when it is known in advance.

        Oblivious protocols (the no-CD family of Section 2.1) override
        this to return a :class:`BatchSchedule`, unlocking the batch
        engine's fastest path: the per-round probability is an array
        lookup, with no session objects at all.  The default ``None``
        means the probability depends on feedback; the batch engine then
        falls back to history-indexed sessions (CD protocols) or the
        scalar reference loop.
        """
        return None

    def history_signature(self) -> tuple | None:
        """Hashable identity of the session *behaviour*, or ``None``.

        The memo hook of the array-based history engine
        (:func:`repro.channel.batch.run_history_stacked`): a uniform
        protocol with deterministic sessions is a function from
        observation histories to probabilities (Section 2.1), so the
        engine memoizes that function in a history trie - one
        ``next_probability()`` call and one session fork per *distinct
        history ever seen*.  Two protocols returning equal non-``None``
        signatures promise interchangeable sessions (identical
        probability / exhaustion responses to every observation
        sequence), letting a stacked run share a single trie across all
        scenario points with the same protocol spec.  The default
        ``None`` claims nothing: the point still runs on the history
        engine, it just keeps a private trie.  Protocols whose sessions
        are not deterministic must leave this ``None``.
        """
        return None

    def __repr__(self) -> str:
        detector = "CD" if self.requires_collision_detection else "no-CD"
        return f"<{type(self).__name__} {self.name!r} ({detector})>"


class PlayerSession(abc.ABC):
    """Per-execution, per-player state of an identity-aware protocol."""

    @abc.abstractmethod
    def decide(self) -> bool:
        """Whether this player transmits in the upcoming round."""

    @abc.abstractmethod
    def observe(self, observation: Observation, *, transmitted: bool) -> None:
        """Receive the round's observation; ``transmitted`` echoes the
        player's own action (a transmitter knows it transmitted)."""


class PlayerBatchSessions(abc.ABC):
    """Array-state sessions of *all* trials of a player-protocol batch.

    The per-player counterpart of the uniform batch hooks: one object
    holds the state of every ``(trial, player)`` pair as NumPy arrays and
    advances all live trials in lockstep.  The engine
    (:func:`repro.channel.batch_players.run_players_batch`) drives it with
    exactly one :meth:`decide` call per round, passing the indices of the
    still-live trials; solved, exhausted and budget-censored trials are
    never passed again, so state updates (and randomness consumption)
    stop for a trial the moment it retires - mirroring the scalar loop,
    where a finished execution's sessions are simply dropped.
    """

    @abc.abstractmethod
    def decide(self, live: "np.ndarray") -> "tuple[np.ndarray, np.ndarray]":
        """Transmission decisions for the live trials of the next round.

        ``live`` is a 1-d int array of trial indices.  Returns
        ``(decisions, exhausted)``: ``decisions`` is a boolean
        ``(len(live), players)`` array (padded player slots must be
        ``False``), ``exhausted`` a boolean ``(len(live),)`` array marking
        trials whose schedule is spent - the batch analogue of a scalar
        session raising :class:`ScheduleExhausted`.  Decision values of
        exhausted rows are ignored.  Randomized protocols must draw only
        for the ``live`` rows (retired trials stop consuming randomness).
        """

    @abc.abstractmethod
    def observe(
        self,
        live: "np.ndarray",
        observations: "np.ndarray",
        decisions: "np.ndarray",
    ) -> None:
        """Deliver the round's observation codes to the surviving trials.

        ``observations`` holds one :data:`OBS_QUIET` / :data:`OBS_SILENCE`
        / :data:`OBS_COLLISION` code per entry of ``live``; ``decisions``
        echoes the rows of the preceding :meth:`decide` call for those
        trials (a transmitter knows it transmitted).  Never called for
        solved trials - success ends the execution, as in the scalar
        engine.
        """


class PlayerProtocol(abc.ABC):
    """Factory of per-player sessions for identity/advice-aware algorithms.

    Attributes mirror :class:`UniformProtocol`; in addition
    :attr:`advice_bits` declares the advice-length budget ``b`` the
    protocol expects (0 for none), letting harnesses verify the advice
    function honours the bound of Section 3.1.
    """

    name: str = "player-protocol"
    requires_collision_detection: bool = False
    advice_bits: int = 0

    @abc.abstractmethod
    def session(
        self,
        player_id: int,
        n: int,
        advice: str,
        rng: "np.random.Generator | None" = None,
    ) -> PlayerSession:
        """Start a fresh execution for the player with id ``player_id``.

        ``advice`` is the bit string every participant receives from the
        advice function (empty when ``advice_bits == 0``); all participants
        of one execution receive the *same* string (Section 3.1).  ``rng``
        is the simulation generator; randomized player protocols draw from
        it, deterministic ones ignore it.
        """

    def supports_batch_sessions(self) -> bool:
        """Whether :meth:`batch_sessions` returns an engine-ready object.

        The routing capability probe (no participant data needed): the
        Monte Carlo harness auto-selects the vectorized player engine for
        protocols returning ``True`` and keeps everything else on the
        scalar reference loop.  Must agree with :meth:`batch_sessions` -
        a protocol may only claim support when the hook never returns
        ``None``.
        """
        return False

    def supports_fused_sessions(self) -> bool:
        """Whether batch sessions are randomness-free and row-independent.

        The fused sweep executor stacks trials of *different scenario
        points* into one :meth:`batch_sessions` run.  That is bit-identical
        per point only when the sessions (a) never draw from the engine
        ``rng`` - each point's stream must be consumed exactly as a solo
        run would - and (b) keep per-trial state independent given the
        engine's lockstep round counter, so one point's rows never
        perturb another's.  The deterministic Section 3.2 protocols
        qualify and override this to ``True``; randomized sessions
        (backoff, per-player uniform views) must keep the default
        ``False`` - they stay vectorized *within* a point but their
        points cannot fuse.
        """
        return False

    def batch_sessions(
        self,
        player_ids: "np.ndarray",
        n: int,
        advice: tuple[str, ...],
        rng: "np.random.Generator | None" = None,
    ) -> PlayerBatchSessions | None:
        """Array-state sessions for a whole batch of executions.

        ``player_ids`` is an int64 ``(trials, players)`` array of each
        trial's participant ids in ascending order, right-padded with
        ``-1`` where participant sets are smaller than the widest one;
        ``advice`` holds one advice string per trial (all participants of
        a trial share it, Section 3.1).  The default ``None`` keeps the
        protocol on the scalar per-player loop - wrappers whose per-round
        behaviour cannot be expressed as lockstep array updates (e.g. the
        fallback combinator) simply never override it.
        """
        del player_ids, n, advice, rng
        return None

    def __repr__(self) -> str:
        detector = "CD" if self.requires_collision_detection else "no-CD"
        return (
            f"<{type(self).__name__} {self.name!r} ({detector}, "
            f"b={self.advice_bits})>"
        )
