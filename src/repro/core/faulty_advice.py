"""Faulty advice: corrupted oracle bits and what they do to protocols.

Section 3 assumes *perfect* advice; the paper's related-work discussion
(Section 1.3) highlights that for learned advice "the challenge lies in
ensuring that they continue to perform well when the advice is faulty".
This module supplies the corruption models used by the robustness
experiment (``ADVICE-ROBUST``):

* :class:`BitFlipAdvice` - each advice bit flips independently with
  probability ``flip_probability`` (a noisy oracle);
* :class:`AdversarialAdvice` - the advice is replaced outright with
  probability ``error_probability`` by the bitwise complement (the worst
  single corruption for prefix advice: it points at the wrong subtree at
  the first flipped bit).

Corrupted advice can make the Section 3.2 deterministic protocols *fail*
(they trust the advice); the measured failure rates, and the cost of the
:class:`~repro.protocols.restart.FallbackProtocol` repair, are the
experiment's content.
"""

from __future__ import annotations

from collections.abc import Collection

import numpy as np

from .advice import AdviceFunction

__all__ = ["BitFlipAdvice", "AdversarialAdvice"]


class BitFlipAdvice(AdviceFunction):
    """Wraps an advice function; flips each bit independently.

    The RNG is injected at construction so corruption is reproducible;
    all participants of one execution still receive the *same* (possibly
    corrupted) string, preserving the Section 3.1 model - the oracle is
    noisy, not inconsistent.
    """

    def __init__(
        self,
        base: AdviceFunction,
        flip_probability: float,
        rng: np.random.Generator,
    ) -> None:
        if not 0.0 <= flip_probability <= 1.0:
            raise ValueError(
                f"flip probability must be in [0, 1], got {flip_probability}"
            )
        super().__init__(bits=base.bits)
        self.base = base
        self.flip_probability = flip_probability
        self._rng = rng

    def advise(self, participants: Collection[int], n: int) -> str:
        clean = self.base.advise(participants, n)
        if self.flip_probability == 0.0 or not clean:
            return clean
        flips = self._rng.random(len(clean)) < self.flip_probability
        return "".join(
            ("1" if bit == "0" else "0") if flipped else bit
            for bit, flipped in zip(clean, flips)
        )


class AdversarialAdvice(AdviceFunction):
    """Wraps an advice function; occasionally substitutes the complement.

    With probability ``error_probability`` the advice string is replaced
    by its bitwise complement - for :class:`~repro.core.advice.
    MinIdPrefixAdvice` this is the most damaging same-length string, since
    its very first bit steers the protocol into the wrong half of the id
    tree.
    """

    def __init__(
        self,
        base: AdviceFunction,
        error_probability: float,
        rng: np.random.Generator,
    ) -> None:
        if not 0.0 <= error_probability <= 1.0:
            raise ValueError(
                f"error probability must be in [0, 1], got {error_probability}"
            )
        super().__init__(bits=base.bits)
        self.base = base
        self.error_probability = error_probability
        self._rng = rng

    def advise(self, participants: Collection[int], n: int) -> str:
        clean = self.base.advise(participants, n)
        if not clean or self._rng.random() >= self.error_probability:
            return clean
        return "".join("1" if bit == "0" else "0" for bit in clean)
