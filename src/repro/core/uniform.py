"""Concrete uniform-protocol building blocks: schedules and history policies.

Section 2.1 of the paper gives the two canonical shapes of a uniform
algorithm, both realised here:

* no-CD: "a sequence of probabilities ``p_1, p_2, p_3, ...``" -
  :class:`ScheduleProtocol` wraps any finite schedule, optionally cycling,
  and exposes the raw schedule for the RF-Construction lower-bound
  transform (Algorithm 1);
* CD: "a function from collision histories to broadcast probabilities" -
  :class:`HistoryPolicy` is that function's interface and
  :class:`HistoryPolicyProtocol` runs one, recording the history bit string
  ``b_1 b_2 ... b_r`` exactly as the paper encodes it.  The lower-bound
  tree construction (Section 2.4) consumes :class:`HistoryPolicy` objects
  directly.
"""

from __future__ import annotations

import abc
import copy
from collections.abc import Sequence

from .feedback import Observation
from .protocol import (
    BatchSchedule,
    ProtocolError,
    ScheduleExhausted,
    UniformProtocol,
    UniformSession,
)

__all__ = [
    "ProbabilitySchedule",
    "ScheduleProtocol",
    "ScheduleSession",
    "HistoryPolicy",
    "HistoryPolicyProtocol",
    "HistoryPolicySession",
    "validate_probability",
]


def validate_probability(p: float) -> float:
    """Check ``p`` is a valid transmission probability; returns it."""
    if not 0.0 <= p <= 1.0:
        raise ProtocolError(f"transmission probability {p!r} outside [0, 1]")
    return p


class ProbabilitySchedule:
    """An immutable finite sequence of per-round transmission probabilities.

    The no-CD uniform algorithm of Section 2.1.  ``schedule[i]`` is the
    probability every participant transmits with in round ``i + 1``.
    """

    def __init__(self, probabilities: Sequence[float], *, name: str = "schedule"):
        if len(probabilities) == 0:
            raise ValueError("schedule must contain at least one round")
        self._probabilities = tuple(
            validate_probability(float(p)) for p in probabilities
        )
        self.name = name

    def __len__(self) -> int:
        return len(self._probabilities)

    def __getitem__(self, index: int) -> float:
        return self._probabilities[index]

    def __iter__(self):
        return iter(self._probabilities)

    @property
    def probabilities(self) -> tuple[float, ...]:
        """The full schedule as a tuple."""
        return self._probabilities

    def cycled(self, rounds: int) -> "ProbabilitySchedule":
        """A schedule of exactly ``rounds`` rounds, repeating this one."""
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        repeats = -(-rounds // len(self._probabilities))
        extended = (self._probabilities * repeats)[:rounds]
        return ProbabilitySchedule(extended, name=f"{self.name}×{repeats}")

    def __repr__(self) -> str:
        return f"ProbabilitySchedule({self.name!r}, rounds={len(self)})"


class ScheduleSession(UniformSession):
    """Execution of a :class:`ProbabilitySchedule` (oblivious to feedback)."""

    def __init__(self, schedule: ProbabilitySchedule, *, cycle: bool) -> None:
        self._schedule = schedule
        self._cycle = cycle
        self._position = 0

    def next_probability(self) -> float:
        length = len(self._schedule)
        if self._position >= length:
            if not self._cycle:
                raise ScheduleExhausted(
                    f"schedule {self._schedule.name!r} exhausted after "
                    f"{length} rounds"
                )
            self._position %= length
        probability = self._schedule[self._position]
        self._position += 1
        return probability

    def observe(self, observation: Observation) -> None:
        # No-CD uniform algorithms are oblivious: the schedule is fixed in
        # advance (paper Section 2.1), so feedback is deliberately ignored.
        del observation

    def fork(self) -> "ScheduleSession":
        # Mutable state is one int; the schedule itself is immutable.
        return copy.copy(self)

    @property
    def rounds_played(self) -> int:
        """Number of probabilities handed out so far."""
        return self._position


class ScheduleProtocol(UniformProtocol):
    """Uniform no-CD protocol defined by a probability schedule.

    Parameters
    ----------
    schedule:
        The round probabilities.
    cycle:
        When ``True`` the schedule repeats forever (expected-time variants);
        when ``False`` the session raises after the last round (one-shot
        variants, e.g. the single pass of Section 2.5's algorithm).
    """

    requires_collision_detection = False

    def __init__(
        self,
        schedule: ProbabilitySchedule,
        *,
        cycle: bool = True,
        name: str | None = None,
    ) -> None:
        self.schedule = schedule
        self.cycle = cycle
        self.name = name or schedule.name

    def session(self) -> ScheduleSession:
        return ScheduleSession(self.schedule, cycle=self.cycle)

    def batch_schedule(self) -> BatchSchedule:
        """Schedule protocols are oblivious: the whole schedule is known."""
        return BatchSchedule(self.schedule.probabilities, self.cycle)

    def history_signature(self) -> tuple:
        """Sessions are a pure function of ``(schedule, cycle)``.

        Two schedule protocols with equal probabilities and cycling are
        interchangeable under *any* observation sequence (observations
        are ignored by construction), so they may share one memoized
        history trie whenever a schedule protocol is driven through the
        history engine.
        """
        return ("schedule", tuple(self.schedule.probabilities), self.cycle)


class HistoryPolicy(abc.ABC):
    """A function from CD collision histories to transmission probabilities.

    The history is the paper's bit string ``b_1 ... b_r`` (``b_i = 1`` iff a
    collision was detected in round ``i``); the empty string is the state
    before round 1.  Implementations must be deterministic functions of the
    history so that (a) all players stay synchronised and (b) the
    lower-bound machinery can unfold the policy into the labelled binary
    tree of Section 2.4.
    """

    name: str = "history-policy"

    @abc.abstractmethod
    def probability(self, history: str) -> float:
        """Transmission probability after observing ``history``."""

    def validate_history(self, history: str) -> None:
        """Raise on malformed history strings."""
        if any(bit not in "01" for bit in history):
            raise ProtocolError(f"malformed collision history {history!r}")


class HistoryPolicySession(UniformSession):
    """Execution of a :class:`HistoryPolicy`, tracking the history string."""

    def __init__(self, policy: HistoryPolicy) -> None:
        self._policy = policy
        self._history = ""

    def next_probability(self) -> float:
        return validate_probability(self._policy.probability(self._history))

    def observe(self, observation: Observation) -> None:
        if observation is Observation.QUIET:
            raise ProtocolError(
                f"policy {self._policy.name!r} needs collision detection but "
                "received a no-CD observation"
            )
        if observation is Observation.SUCCESS:
            raise ProtocolError("success ends the execution; nothing to observe")
        self._history += str(observation.collision_bit)

    def fork(self) -> "HistoryPolicySession":
        # The history string is immutable and the policy is shared.
        return copy.copy(self)

    @property
    def history(self) -> str:
        """The collision history accumulated so far."""
        return self._history


class HistoryPolicyProtocol(UniformProtocol):
    """Uniform CD protocol defined by a history policy."""

    requires_collision_detection = True

    def __init__(self, policy: HistoryPolicy, *, name: str | None = None) -> None:
        self.policy = policy
        self.name = name or policy.name

    def session(self) -> HistoryPolicySession:
        return HistoryPolicySession(self.policy)
