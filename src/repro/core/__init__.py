"""Core abstractions: channel vocabulary, protocol interfaces, predictions
and the perfect-advice model.

This package is the contract layer between the channel simulator
(:mod:`repro.channel`) and the algorithms (:mod:`repro.protocols`): the
simulator drives anything implementing the session interfaces here, and
every algorithm in the paper is expressed against them.
"""

from .advice import (
    AdviceError,
    AdviceFunction,
    FullIdAdvice,
    MinIdPrefixAdvice,
    NullAdvice,
    RangeBlockAdvice,
    bits_to_int,
    id_bit_width,
    id_to_bits,
    range_blocks,
)
from .faulty_advice import AdversarialAdvice, BitFlipAdvice
from .feedback import Feedback, Observation, feedback_for_count, observe
from .predictions import BudgetReport, Prediction
from .protocol import (
    PlayerProtocol,
    PlayerSession,
    ProtocolError,
    ScheduleExhausted,
    UniformProtocol,
    UniformSession,
)
from .uniform import (
    HistoryPolicy,
    HistoryPolicyProtocol,
    HistoryPolicySession,
    ProbabilitySchedule,
    ScheduleProtocol,
    ScheduleSession,
    validate_probability,
)

__all__ = [
    # feedback
    "Feedback",
    "Observation",
    "feedback_for_count",
    "observe",
    # protocol interfaces
    "UniformProtocol",
    "UniformSession",
    "PlayerProtocol",
    "PlayerSession",
    "ProtocolError",
    "ScheduleExhausted",
    # uniform building blocks
    "ProbabilitySchedule",
    "ScheduleProtocol",
    "ScheduleSession",
    "HistoryPolicy",
    "HistoryPolicyProtocol",
    "HistoryPolicySession",
    "validate_probability",
    # predictions
    "Prediction",
    "BudgetReport",
    # advice
    "AdviceFunction",
    "AdviceError",
    "NullAdvice",
    "MinIdPrefixAdvice",
    "RangeBlockAdvice",
    "FullIdAdvice",
    "BitFlipAdvice",
    "AdversarialAdvice",
    "id_bit_width",
    "id_to_bits",
    "bits_to_int",
    "range_blocks",
]
