"""Prediction inputs: packaging a predicted size distribution for protocols.

Section 2 gives algorithms "the definition of a random variable Y defined
over network sizes" - i.e. the full predicted distribution.  A
:class:`Prediction` bundles that distribution with the derived artefacts
the algorithms actually consume:

* the condensed distribution ``c(Y)`` over geometric ranges;
* the probe order (ranges sorted by non-increasing predicted likelihood),
  used by the no-CD sorted-probing algorithm of Section 2.5;
* the optimal prefix code for ``c(Y)`` whose length classes structure the
  CD algorithm of Section 2.6;
* divergence/entropy accounting against a ground-truth distribution, to
  evaluate the Theorem 2.12 / 2.16 budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..infotheory.coding import PrefixCode
from ..infotheory.condense import CondensedDistribution
from ..infotheory.distributions import SizeDistribution
from ..infotheory.huffman import optimal_code_for

__all__ = ["Prediction", "BudgetReport"]


@dataclass(frozen=True)
class BudgetReport:
    """The closed-form round budgets of Theorems 2.12 and 2.16.

    Attributes
    ----------
    entropy_bits:
        ``H(c(X))`` of the true distribution.
    divergence_bits:
        ``D_KL(c(X) || c(Y))`` - zero for perfect predictions.
    nocd_exponent:
        ``T = 2 H + 2 D`` (Theorem 2.12); the no-CD algorithm succeeds with
        probability >= 1/16 within ``O(2^T)`` rounds.
    nocd_budget_rounds:
        ``2^T`` (the O-constant is 1 in the paper's Lemma 2.14 accounting:
        the success round is ``<= 2^{S+1}`` with ``S <= 2(H+D+1)`` w.p. 1/2).
    cd_budget_rounds:
        ``(H + D + 1)^2`` up to constants (Theorem 2.16).
    """

    entropy_bits: float
    divergence_bits: float

    @property
    def nocd_exponent(self) -> float:
        return 2.0 * (self.entropy_bits + self.divergence_bits)

    @property
    def nocd_budget_rounds(self) -> float:
        return 2.0**self.nocd_exponent

    @property
    def cd_budget_rounds(self) -> float:
        base = self.entropy_bits + self.divergence_bits + 1.0
        return base * base


@dataclass
class Prediction:
    """A predicted network-size distribution and its derived artefacts.

    Parameters
    ----------
    distribution:
        The predicted :class:`SizeDistribution` ``Y``.

    All derived values are computed lazily and cached: condensation, the
    probe order of Section 2.5 and the optimal code of Section 2.6.
    """

    distribution: SizeDistribution
    _condensed: CondensedDistribution | None = field(
        default=None, init=False, repr=False
    )
    _probe_order: list[int] | None = field(default=None, init=False, repr=False)
    _code: PrefixCode | None = field(default=None, init=False, repr=False)

    @property
    def n(self) -> int:
        """Maximum network size the prediction covers."""
        return self.distribution.n

    @property
    def condensed(self) -> CondensedDistribution:
        """``c(Y)`` - the condensed predicted distribution."""
        if self._condensed is None:
            self._condensed = self.distribution.condense()
        return self._condensed

    @property
    def probe_order(self) -> list[int]:
        """Ranges by non-increasing predicted probability (ties by index).

        The ordering ``pi`` of Section 2.5.1: the no-CD algorithm transmits
        with probability ``2^-pi_i`` in round ``i``.
        """
        if self._probe_order is None:
            self._probe_order = self.condensed.sorted_ranges()
        return list(self._probe_order)

    @property
    def optimal_code(self) -> PrefixCode:
        """Optimal prefix code for ``c(Y)`` (Section 2.6's ``f``).

        Symbol ``i`` of the code corresponds to range ``i + 1``.
        """
        if self._code is None:
            self._code = optimal_code_for(self.condensed)
        return self._code

    def code_length_classes(self) -> dict[int, list[int]]:
        """Ranges grouped by codeword length: the classes ``pi_l`` of §2.6.

        Returns a dict mapping codeword length ``l`` to the sorted list of
        *range indices* (1-based) whose codewords have length ``l``.
        """
        classes = self.optimal_code.symbols_by_length()
        return {
            length: [symbol + 1 for symbol in symbols]
            for length, symbols in classes.items()
        }

    def budget_against(self, truth: SizeDistribution) -> BudgetReport:
        """Theorem 2.12/2.16 budgets when the real sizes come from ``truth``."""
        if truth.n != self.n:
            raise ValueError(
                f"truth has n={truth.n} but prediction has n={self.n}"
            )
        truth_condensed = truth.condense()
        return BudgetReport(
            entropy_bits=truth_condensed.entropy(),
            divergence_bits=truth_condensed.kl_divergence(self.condensed),
        )

    def self_budget(self) -> BudgetReport:
        """Budgets for a perfect prediction (``Y = X``; Corollaries 2.15/2.18)."""
        return BudgetReport(
            entropy_bits=self.condensed.entropy(), divergence_bits=0.0
        )
