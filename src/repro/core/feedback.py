"""Channel feedback vocabulary: what happens in a round and who can see it.

The model (paper Section 1.1): time proceeds in synchronous rounds; in each
round every participant either transmits or listens.

* 0 transmitters  -> **silence**;
* 1 transmitter   -> **success** (the message is delivered; contention
  resolution is solved);
* >=2 transmitters -> **collision** (all messages lost).

Whether a player can *distinguish* collision from silence depends on the
channel: with collision detection (CD) every player - including the
transmitters - detects a collision; without CD ("players detect silence")
a collision is indistinguishable from silence.  :class:`Feedback` is the
ground truth the simulator computes; :class:`Observation` is the filtered
view a protocol is allowed to branch on, produced by :func:`observe`.
"""

from __future__ import annotations

import enum

__all__ = ["Feedback", "Observation", "observe", "feedback_for_count"]


class Feedback(enum.Enum):
    """Ground-truth outcome of one round (what an omniscient observer sees)."""

    SILENCE = "silence"
    SUCCESS = "success"
    COLLISION = "collision"


class Observation(enum.Enum):
    """Protocol-visible outcome of one round.

    ``QUIET`` is the no-CD view of both silence and collision - the two are
    indistinguishable without a collision detector.  ``SILENCE`` and
    ``COLLISION`` only occur with CD.  ``SUCCESS`` is visible in both models
    (a delivered message is heard and ends the execution anyway).
    """

    QUIET = "quiet"
    SILENCE = "silence"
    COLLISION = "collision"
    SUCCESS = "success"

    @property
    def collision_bit(self) -> int:
        """The history bit of the paper's CD model: 1 = collision, 0 = not.

        Section 2.1 encodes a CD execution history as a binary string with
        ``b_i = 1`` iff round ``i`` had a collision.  Only meaningful for CD
        observations.
        """
        return 1 if self is Observation.COLLISION else 0


def feedback_for_count(transmit_count: int) -> Feedback:
    """Map a round's transmitter count to its ground-truth feedback."""
    if transmit_count < 0:
        raise ValueError(f"transmit count must be >= 0, got {transmit_count}")
    if transmit_count == 0:
        return Feedback.SILENCE
    if transmit_count == 1:
        return Feedback.SUCCESS
    return Feedback.COLLISION


def observe(feedback: Feedback, *, collision_detection: bool) -> Observation:
    """Filter ground truth through the channel's observability.

    With CD, feedback passes through unchanged.  Without CD, silence and
    collision both appear as ``QUIET``.
    """
    if feedback is Feedback.SUCCESS:
        return Observation.SUCCESS
    if collision_detection:
        if feedback is Feedback.COLLISION:
            return Observation.COLLISION
        return Observation.SILENCE
    return Observation.QUIET
