"""Source-coding-theorem calculators (Theorems 2.2 and 2.3 of the paper).

The paper's lower bounds rest on two classical results:

* **Source Coding Theorem** (Shannon; paper Theorem 2.2): any uniquely
  decodable code ``f`` for a source ``X`` satisfies ``H(X) <= E[len f(X)]``.
* **Cross-coding bound** (paper Theorem 2.3): an *optimal* code built for
  ``Y`` but fed symbols from ``X`` satisfies
  ``H(X) + D_KL(X||Y) <= E[len] <= H(X) + D_KL(X||Y) + 1``.

This module turns both into checkable, reusable computations: given codes
and distributions it produces :class:`CodingReport` records with the
entropy, divergence, measured expected length and the slack in each
inequality.  The ``SRC-CODE`` experiment and the property-based tests
consume these reports; the lower-bound reductions reuse
:func:`expected_code_length`.

Note on the upper half of Theorem 2.3: as stated in the paper it holds for
*Shannon* codes for ``Y`` (lengths ``ceil(-log2 q_i)``); a Huffman code for
``Y`` is optimal for ``Y`` in expectation but its individual codeword
lengths may exceed ``ceil(-log2 q_i)`` on some symbols, so the upper bound
is guaranteed only for the Shannon profile.  We therefore verify the upper
sandwich against Shannon codes and the lower bound (which holds for any
uniquely decodable code) against both.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from .coding import PrefixCode, code_from_lengths, shannon_code_lengths
from .entropy import entropy, kl_divergence, validate_pmf
from .huffman import huffman_code

__all__ = [
    "expected_code_length",
    "CodingReport",
    "source_coding_report",
    "cross_coding_report",
    "shannon_code",
]


def expected_code_length(code: PrefixCode, source_pmf: Sequence[float]) -> float:
    """``E[len f(X)]`` for code ``f`` and source pmf ``X``."""
    return code.expected_length(source_pmf)


def shannon_code(pmf: Sequence[float]) -> PrefixCode:
    """Canonical code with Shannon lengths ``ceil(-log2 p_i)`` for ``pmf``.

    Realises the upper half of Theorems 2.2/2.3 constructively:
    ``E[len] <= H + 1`` against its own source and
    ``E[len] <= H + D_KL + 1`` against a mismatched source.
    """
    return code_from_lengths(shannon_code_lengths(pmf))


@dataclass(frozen=True)
class CodingReport:
    """Measured coding performance against the information-theoretic bounds.

    Attributes
    ----------
    entropy_bits:
        ``H(X)`` of the source actually generating symbols.
    divergence_bits:
        ``D_KL(X || Y)`` between source and the code's design distribution
        (zero for matched coding).
    expected_length_bits:
        Measured ``E[len f(X)]``.
    lower_bound_bits / upper_bound_bits:
        The theorem's sandwich: ``H + D`` and ``H + D + 1``.
    lower_slack_bits / upper_slack_bits:
        ``E[len] - lower`` (must be >= 0 by Theorem 2.2/2.3) and
        ``upper - E[len]`` (>= 0 when the code is a Shannon code for ``Y``).
    """

    entropy_bits: float
    divergence_bits: float
    expected_length_bits: float

    @property
    def lower_bound_bits(self) -> float:
        return self.entropy_bits + self.divergence_bits

    @property
    def upper_bound_bits(self) -> float:
        return self.entropy_bits + self.divergence_bits + 1.0

    @property
    def lower_slack_bits(self) -> float:
        return self.expected_length_bits - self.lower_bound_bits

    @property
    def upper_slack_bits(self) -> float:
        return self.upper_bound_bits - self.expected_length_bits

    def satisfies_lower_bound(self, *, tolerance: float = 1e-9) -> bool:
        """Source Coding Theorem check: ``E[len] >= H + D`` within tolerance."""
        return self.lower_slack_bits >= -tolerance

    def satisfies_upper_bound(self, *, tolerance: float = 1e-9) -> bool:
        """Shannon-code guarantee: ``E[len] <= H + D + 1`` within tolerance."""
        return self.upper_slack_bits >= -tolerance


def source_coding_report(source_pmf: Sequence[float]) -> CodingReport:
    """Matched coding: Huffman code for ``source_pmf`` fed by itself.

    The report's divergence is zero; Theorem 2.2 guarantees the lower bound
    and Huffman optimality (dominated by the Shannon profile in expectation)
    guarantees the upper bound too.
    """
    validate_pmf(source_pmf)
    code = huffman_code(source_pmf)
    return CodingReport(
        entropy_bits=entropy(source_pmf),
        divergence_bits=0.0,
        expected_length_bits=expected_code_length(code, source_pmf),
    )


def cross_coding_report(
    source_pmf: Sequence[float],
    design_pmf: Sequence[float],
    *,
    use_shannon_code: bool = True,
) -> CodingReport:
    """Mismatched coding: a code designed for ``design_pmf`` fed ``source_pmf``.

    With ``use_shannon_code=True`` (default) the code has the Shannon length
    profile for the design distribution, so both halves of Theorem 2.3 hold.
    With ``False`` a Huffman code for the design distribution is used: the
    lower bound still holds (it holds for any uniquely decodable code); the
    upper bound is then only heuristic (see module docstring).

    Requires the design distribution to dominate the source (no zero-mass
    design symbol with positive source mass); otherwise the divergence is
    infinite and no finite-length code bound exists, so ``ValueError`` is
    raised.  Use :func:`repro.infotheory.perturb.floor_support` to repair
    degenerate predictions first.
    """
    validate_pmf(source_pmf)
    validate_pmf(design_pmf)
    if len(source_pmf) != len(design_pmf):
        raise ValueError("source and design pmfs must share an alphabet")
    for symbol, (p, q) in enumerate(zip(source_pmf, design_pmf)):
        if p > 0.0 and q <= 0.0:
            raise ValueError(
                f"design pmf assigns zero mass to source symbol {symbol}; "
                "divergence is infinite"
            )
    # Symbols with zero design mass also have zero source mass here (checked
    # above), so they contribute nothing to entropy, divergence or expected
    # length.  Restrict the code to the design support to keep the Shannon
    # length profile exact - flooring would perturb dyadic lengths.
    keep = [symbol for symbol, q in enumerate(design_pmf) if q > 0.0]
    design = [design_pmf[symbol] for symbol in keep]
    source = [source_pmf[symbol] for symbol in keep]
    design_total = sum(design)
    source_total = sum(source)
    design = [q / design_total for q in design]
    if source_total <= 0.0:
        raise ValueError("source pmf has no mass on the design support")
    source = [p / source_total for p in source]
    if use_shannon_code:
        code = shannon_code(design)
    else:
        code = huffman_code(design)
    return CodingReport(
        entropy_bits=entropy(source),
        divergence_bits=kl_divergence(source, design),
        expected_length_bits=expected_code_length(code, source),
    )
