"""Entropy and divergence functionals on finite probability mass functions.

All quantities use base-2 logarithms, matching the paper's convention
("Assume all logs are base 2", Section 2.2).  The functions here operate on
plain sequences of floats and are deliberately free of any dependence on the
rest of the library so they can be reused by the coding and lower-bound
machinery without import cycles.

The paper expresses every bound in terms of two functionals of the
*condensed* network-size distribution ``c(X)`` (see
:mod:`repro.infotheory.condense`):

* the Shannon entropy ``H(c(X))`` (Theorems 2.4, 2.8, 2.12, 2.16), and
* the Kullback-Leibler divergence ``D_KL(c(X) || c(Y))`` between the true
  condensed distribution and the condensed *prediction* (Theorems 2.12,
  2.16), which quantifies the cost of inaccurate predictions.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "entropy",
    "cross_entropy",
    "kl_divergence",
    "max_entropy",
    "normalize",
    "validate_pmf",
    "is_pmf",
    "total_variation",
    "renyi_entropy",
    "min_entropy",
    "guesswork",
]

#: Tolerance used when checking that probability masses sum to one.  The
#: distributions manipulated here are small (at most a few thousand atoms)
#: so accumulated floating-point error stays well below this threshold.
PMF_TOLERANCE = 1e-9


def validate_pmf(pmf: Sequence[float], *, tolerance: float = PMF_TOLERANCE) -> None:
    """Raise ``ValueError`` unless ``pmf`` is a valid probability vector.

    A valid probability vector is non-empty, has no negative entries and
    sums to one within ``tolerance``.  The checks are vectorized: the
    full-board distributions (``n = 2^16`` atoms) are validated on every
    construction along the scenario-resolution path, where the old
    per-element Python loop dominated dense-sweep wall clock.
    """
    if len(pmf) == 0:
        raise ValueError("probability vector must be non-empty")
    values = np.asarray(pmf, dtype=float)
    bad = (values < 0.0) | ~np.isfinite(values)
    if bad.any():
        index = int(np.argmax(bad))
        mass = float(values[index])
        if mass < 0.0:  # NaN compares False and falls through to non-finite
            raise ValueError(f"negative probability {mass!r} at index {index}")
        raise ValueError(f"non-finite probability {mass!r} at index {index}")
    total = float(values.sum())
    if abs(total - 1.0) > tolerance:
        raise ValueError(f"probabilities sum to {total!r}, expected 1.0")


def is_pmf(pmf: Sequence[float], *, tolerance: float = PMF_TOLERANCE) -> bool:
    """Return ``True`` when ``pmf`` is a valid probability vector."""
    try:
        validate_pmf(pmf, tolerance=tolerance)
    except ValueError:
        return False
    return True


def normalize(weights: Iterable[float]) -> list[float]:
    """Scale non-negative ``weights`` so they sum to one.

    Raises ``ValueError`` when the weights are all zero or any is negative,
    since no probability vector can be formed in either case.
    """
    values = list(weights)
    if not values:
        raise ValueError("cannot normalize an empty weight vector")
    for index, weight in enumerate(values):
        if weight < 0.0:
            raise ValueError(f"negative weight {weight!r} at index {index}")
    total = math.fsum(values)
    if total <= 0.0:
        raise ValueError("weights sum to zero; cannot normalize")
    return [weight / total for weight in values]


def entropy(pmf: Sequence[float]) -> float:
    """Shannon entropy ``H(p) = -sum_i p_i log2 p_i`` in bits.

    Zero-probability atoms contribute nothing (the usual ``0 log 0 = 0``
    convention), so condensed distributions with empty ranges are handled
    directly.
    """
    validate_pmf(pmf)
    return -math.fsum(p * math.log2(p) for p in pmf if p > 0.0)


def cross_entropy(p: Sequence[float], q: Sequence[float]) -> float:
    """Cross entropy ``H(p, q) = -sum_i p_i log2 q_i`` in bits.

    Infinite when ``q`` assigns zero mass to an atom that ``p`` uses; this
    mirrors the fact that a code built for ``q`` has no codeword for such an
    atom.
    """
    validate_pmf(p)
    validate_pmf(q)
    if len(p) != len(q):
        raise ValueError(
            f"distributions have different supports: {len(p)} vs {len(q)}"
        )
    total = 0.0
    for p_i, q_i in zip(p, q):
        if p_i == 0.0:
            continue
        if q_i == 0.0:
            return math.inf
        total -= p_i * math.log2(q_i)
    return total


def kl_divergence(p: Sequence[float], q: Sequence[float]) -> float:
    """Kullback-Leibler divergence ``D_KL(p || q)`` in bits.

    ``D_KL(p || q) = sum_i p_i log2 (p_i / q_i)``.  Non-negative by Gibbs'
    inequality, zero iff ``p == q``, and infinite when ``q`` misses support
    of ``p``.  This is the divergence appearing in Theorems 2.12 and 2.16.
    """
    validate_pmf(p)
    validate_pmf(q)
    if len(p) != len(q):
        raise ValueError(
            f"distributions have different supports: {len(p)} vs {len(q)}"
        )
    total = 0.0
    for p_i, q_i in zip(p, q):
        if p_i == 0.0:
            continue
        if q_i == 0.0:
            return math.inf
        total += p_i * math.log2(p_i / q_i)
    # Floating-point rounding can produce a tiny negative value for p == q.
    return max(total, 0.0)


def max_entropy(support_size: int) -> float:
    """Entropy of the uniform distribution on ``support_size`` atoms.

    This is the maximum achievable entropy on that support; the paper's
    worst-case comparisons use ``H(c(X)) = log2 log2 n`` (uniform over the
    ``log n`` condensed ranges).
    """
    if support_size <= 0:
        raise ValueError("support size must be positive")
    return math.log2(support_size)


def total_variation(p: Sequence[float], q: Sequence[float]) -> float:
    """Total variation distance ``(1/2) sum_i |p_i - q_i|``.

    Not used by the paper's bounds directly, but handy for characterising
    the perturbation families in :mod:`repro.infotheory.perturb` and for
    sanity checks in tests (Pinsker's inequality relates it to KL).
    """
    validate_pmf(p)
    validate_pmf(q)
    if len(p) != len(q):
        raise ValueError(
            f"distributions have different supports: {len(p)} vs {len(q)}"
        )
    return 0.5 * math.fsum(abs(p_i - q_i) for p_i, q_i in zip(p, q))


def renyi_entropy(pmf: Sequence[float], order: float) -> float:
    """Renyi entropy of the given ``order`` in bits.

    ``order = 1`` is Shannon entropy (taken as a limit), ``order = inf`` is
    min-entropy.  Used by the Pliam-conjecture experiment: Pliam's result
    [19] separates entropy from *guesswork*, and the Renyi entropy of order
    1/2 governs expected guesswork.
    """
    validate_pmf(pmf)
    if order < 0:
        raise ValueError("Renyi order must be non-negative")
    if order == 1.0:
        return entropy(pmf)
    if math.isinf(order):
        return min_entropy(pmf)
    positive = [p for p in pmf if p > 0.0]
    if order == 0.0:
        return math.log2(len(positive))
    power_sum = math.fsum(p**order for p in positive)
    return math.log2(power_sum) / (1.0 - order)


def min_entropy(pmf: Sequence[float]) -> float:
    """Min-entropy ``-log2 max_i p_i`` in bits."""
    validate_pmf(pmf)
    return -math.log2(max(pmf))


def guesswork(pmf: Sequence[float]) -> float:
    """Expected number of sequential guesses to identify a sample of ``pmf``.

    The optimal guessing strategy probes atoms in non-increasing probability
    order; the expectation is ``sum_i i * p_(i)`` with ``p_(1) >= p_(2) >=
    ...``.  This is exactly the expected number of *rounds* consumed by the
    paper's sorted-probing algorithm (Section 2.5) before reaching the true
    range, making guesswork the natural yardstick for the Pliam-conjecture
    experiment: Pliam [19] shows guesswork can exceed ``alpha * 2^H`` for
    any constant ``alpha``.
    """
    validate_pmf(pmf)
    ordered = sorted(pmf, reverse=True)
    return math.fsum((index + 1) * mass for index, mass in enumerate(ordered))
