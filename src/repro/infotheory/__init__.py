"""Information-theoretic substrate for the reproduction.

Exposes the quantities the paper's bounds are written in - entropy of the
condensed size distribution, KL divergence between truth and prediction -
plus the coding machinery (Huffman / Shannon / canonical prefix codes) that
both the CD upper-bound algorithm and the lower-bound reductions consume.
"""

from .coding import (
    CodewordError,
    PrefixCode,
    code_from_lengths,
    kraft_lengths_realizable,
    kraft_sum,
    shannon_code_lengths,
)
from .condense import (
    MIN_NETWORK_SIZE,
    CondensedDistribution,
    num_ranges,
    range_interval,
    range_of_size,
    range_probability,
    representative_size,
)
from .distributions import Sampler, SizeDistribution
from .entropy import (
    cross_entropy,
    entropy,
    guesswork,
    kl_divergence,
    max_entropy,
    min_entropy,
    normalize,
    renyi_entropy,
    total_variation,
    validate_pmf,
)
from .huffman import huffman_code, huffman_code_lengths, optimal_code_for
from .perturb import (
    divergence_between,
    entropy_of,
    floor_support,
    from_condensed_profile,
    mix_with_uniform,
    prediction_quality_sweep,
    shift_ranges,
    swap_extremes,
    temperature,
)
from .source_coding import (
    CodingReport,
    cross_coding_report,
    expected_code_length,
    shannon_code,
    source_coding_report,
)

__all__ = [
    # entropy
    "entropy",
    "cross_entropy",
    "kl_divergence",
    "max_entropy",
    "min_entropy",
    "renyi_entropy",
    "guesswork",
    "total_variation",
    "normalize",
    "validate_pmf",
    # condensation
    "MIN_NETWORK_SIZE",
    "CondensedDistribution",
    "num_ranges",
    "range_of_size",
    "range_interval",
    "range_probability",
    "representative_size",
    # distributions
    "SizeDistribution",
    "Sampler",
    # coding
    "PrefixCode",
    "CodewordError",
    "code_from_lengths",
    "kraft_sum",
    "kraft_lengths_realizable",
    "shannon_code_lengths",
    "huffman_code",
    "huffman_code_lengths",
    "optimal_code_for",
    "shannon_code",
    "CodingReport",
    "source_coding_report",
    "cross_coding_report",
    "expected_code_length",
    # perturbations
    "mix_with_uniform",
    "temperature",
    "shift_ranges",
    "swap_extremes",
    "floor_support",
    "from_condensed_profile",
    "divergence_between",
    "entropy_of",
    "prediction_quality_sweep",
]
