"""Binary prefix codes: the bridge between contention resolution and entropy.

The paper's lower bounds (Sections 2.3-2.4) work by converting a contention
resolution algorithm into a *code* for the condensed size distribution and
invoking Shannon's Source Coding Theorem.  This module supplies the code
abstraction those reductions target:

* :class:`PrefixCode` - an explicit uniquely-decodable binary code with
  encoding, decoding, Kraft-inequality checks, and expected-length
  computation against an arbitrary source distribution;
* :func:`kraft_sum` / :func:`kraft_lengths_realizable` - Kraft-McMillan
  machinery;
* :func:`code_from_lengths` - canonical code construction from a feasible
  length profile (used to realise Shannon codes and the cross-coding bound
  of Theorem 2.3);
* :func:`shannon_code_lengths` - lengths ``ceil(-log2 q_i)`` for a source,
  realising ``E[len] <= H + 1`` constructively.

Huffman (optimal) codes live in :mod:`repro.infotheory.huffman`.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from .entropy import validate_pmf

__all__ = [
    "PrefixCode",
    "kraft_sum",
    "kraft_lengths_realizable",
    "code_from_lengths",
    "shannon_code_lengths",
    "CodewordError",
]


class CodewordError(ValueError):
    """Raised on malformed codewords or undecodable bit strings."""


def kraft_sum(lengths: Sequence[int]) -> float:
    """Kraft sum ``sum_i 2^-len_i`` of a length profile."""
    for length in lengths:
        if length < 0:
            raise ValueError(f"codeword length must be >= 0, got {length}")
    return math.fsum(2.0**-length for length in lengths)


def kraft_lengths_realizable(lengths: Sequence[int]) -> bool:
    """Whether a prefix code with exactly these lengths exists.

    By the Kraft-McMillan theorem this holds iff ``sum 2^-len_i <= 1``.
    A tiny tolerance absorbs floating-point error for long profiles.
    """
    return kraft_sum(lengths) <= 1.0 + 1e-12


def shannon_code_lengths(pmf: Sequence[float]) -> list[int]:
    """Shannon code lengths ``ceil(-log2 p_i)`` for positive-mass symbols.

    Zero-mass symbols get length 0 markers replaced by the longest length +
    1 would break Kraft, so they are assigned ``None``-equivalent handling
    by callers; here we require strictly positive masses.
    """
    validate_pmf(pmf)
    lengths: list[int] = []
    for index, mass in enumerate(pmf):
        if mass <= 0.0:
            raise ValueError(
                f"Shannon lengths need positive mass; symbol {index} has {mass}"
            )
        lengths.append(max(1, math.ceil(-math.log2(mass))))
    return lengths


@dataclass(frozen=True)
class PrefixCode:
    """An explicit binary prefix code over symbols ``0..m-1``.

    Attributes
    ----------
    codewords:
        Tuple of bit strings (``'0'``/``'1'`` characters), one per symbol.
        A symbol may map to the empty string only in the degenerate
        single-symbol code.
    """

    codewords: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.codewords:
            raise CodewordError("code must have at least one codeword")
        for word in self.codewords:
            if any(bit not in "01" for bit in word):
                raise CodewordError(f"codeword {word!r} contains non-bits")
        if len(self.codewords) == 1:
            return
        seen: set[str] = set()
        for word in self.codewords:
            if not word:
                raise CodewordError(
                    "empty codeword only allowed in single-symbol codes"
                )
            if word in seen:
                raise CodewordError(f"duplicate codeword {word!r}")
            seen.add(word)
        # Prefix-freeness: sort and compare adjacent words.
        ordered = sorted(self.codewords)
        for shorter, longer in zip(ordered, ordered[1:]):
            if longer.startswith(shorter):
                raise CodewordError(
                    f"codeword {shorter!r} is a prefix of {longer!r}"
                )

    # ------------------------------------------------------------------
    @property
    def num_symbols(self) -> int:
        """Number of symbols the code covers."""
        return len(self.codewords)

    def length(self, symbol: int) -> int:
        """Length in bits of the codeword for ``symbol``."""
        return len(self._word(symbol))

    def lengths(self) -> list[int]:
        """All codeword lengths, indexed by symbol."""
        return [len(word) for word in self.codewords]

    def max_length(self) -> int:
        """Longest codeword length."""
        return max(self.lengths())

    def encode(self, symbol: int) -> str:
        """Codeword for ``symbol``."""
        return self._word(symbol)

    def encode_sequence(self, symbols: Sequence[int]) -> str:
        """Concatenated encoding of a symbol sequence."""
        return "".join(self._word(symbol) for symbol in symbols)

    def decode(self, bits: str) -> list[int]:
        """Decode a concatenation of codewords back to symbols.

        Raises :class:`CodewordError` on trailing garbage or an unknown
        prefix, which is what uniquely-decodable means operationally.
        """
        table = {word: symbol for symbol, word in enumerate(self.codewords)}
        symbols: list[int] = []
        buffer = ""
        for bit in bits:
            if bit not in "01":
                raise CodewordError(f"invalid bit {bit!r}")
            buffer += bit
            if buffer in table:
                symbols.append(table[buffer])
                buffer = ""
        if buffer:
            raise CodewordError(f"dangling bits {buffer!r} after decode")
        return symbols

    def expected_length(self, pmf: Sequence[float]) -> float:
        """``E[len(f(X))]`` when symbols are drawn from ``pmf``.

        This is the quantity the Source Code Theorem lower-bounds by
        ``H(pmf)`` and that Theorem 2.3 sandwiches for cross-coding.
        """
        validate_pmf(pmf)
        if len(pmf) != len(self.codewords):
            raise ValueError(
                f"pmf covers {len(pmf)} symbols, code covers {len(self.codewords)}"
            )
        return math.fsum(
            mass * len(word) for mass, word in zip(pmf, self.codewords)
        )

    def kraft_sum(self) -> float:
        """Kraft sum of this code's length profile (``<= 1`` always)."""
        return kraft_sum(self.lengths())

    def is_complete(self) -> bool:
        """Whether the Kraft inequality is tight (no wasted leaves)."""
        return abs(self.kraft_sum() - 1.0) <= 1e-12

    def symbols_by_length(self) -> dict[int, list[int]]:
        """Group symbols by codeword length, ascending within each group.

        This grouping *is* the phase structure of the paper's CD upper-bound
        algorithm (Section 2.6): class ``pi_l`` holds the ranges whose
        codewords have length exactly ``l``.
        """
        groups: dict[int, list[int]] = {}
        for symbol, word in enumerate(self.codewords):
            groups.setdefault(len(word), []).append(symbol)
        for symbols in groups.values():
            symbols.sort()
        return dict(sorted(groups.items()))

    def _word(self, symbol: int) -> str:
        if not 0 <= symbol < len(self.codewords):
            raise CodewordError(
                f"symbol {symbol} out of range 0..{len(self.codewords) - 1}"
            )
        return self.codewords[symbol]


def code_from_lengths(lengths: Sequence[int]) -> PrefixCode:
    """Canonical prefix code realising a Kraft-feasible length profile.

    Symbols are assigned codewords in order of (length, symbol index) using
    the canonical-code construction: each codeword is the previous one plus
    one, left-shifted to the new length.  Raises ``ValueError`` when the
    profile violates Kraft.
    """
    if not lengths:
        raise ValueError("length profile must be non-empty")
    if len(lengths) == 1:
        if lengths[0] == 0:
            return PrefixCode(codewords=("",))
        return PrefixCode(codewords=("0" * lengths[0],))
    if any(length <= 0 for length in lengths):
        raise ValueError("multi-symbol codes need strictly positive lengths")
    if not kraft_lengths_realizable(lengths):
        raise ValueError(
            f"length profile violates Kraft inequality (sum={kraft_sum(lengths):.6f})"
        )
    order = sorted(range(len(lengths)), key=lambda i: (lengths[i], i))
    codewords: list[str] = [""] * len(lengths)
    value = 0
    previous_length = lengths[order[0]]
    for position, symbol in enumerate(order):
        length = lengths[symbol]
        if position > 0:
            value = (value + 1) << (length - previous_length)
        previous_length = length
        codewords[symbol] = format(value, "b").zfill(length)
    return PrefixCode(codewords=tuple(codewords))
