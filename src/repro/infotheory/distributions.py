"""Library of network-size distributions used as workloads.

A :class:`SizeDistribution` models the random variable ``X`` of Section 2.2:
the number of participants ``k`` in an instance of contention resolution,
supported on ``{2, ..., n}``.  The class carries the full pmf, supports
sampling, and condenses to :class:`~repro.infotheory.condense.CondensedDistribution`.

The constructors implement the workload families used by the experiments:

* :meth:`SizeDistribution.point` - perfect prediction (entropy 0);
* :meth:`SizeDistribution.uniform` / :meth:`SizeDistribution.range_uniform`
  - worst-case, maximum-entropy workloads;
* :meth:`SizeDistribution.range_uniform_subset` - the *entropy dial*: equal
  mass on ``m`` ranges gives ``H(c(X)) = log2 m`` exactly;
* :meth:`SizeDistribution.interpolated_entropy` - any real target entropy,
  by mixing a point range with the uniform range distribution;
* :meth:`SizeDistribution.geometric`, :meth:`SizeDistribution.zipf`,
  :meth:`SizeDistribution.bimodal` - structured workloads for the examples
  (diurnal IoT loads etc.);
* :meth:`SizeDistribution.pliam` - the entropy-vs-guesswork separating
  family that supports the paper's Section 2.5 conjecture via Pliam [19].
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Mapping, Sequence

import numpy as np

from .condense import (
    MIN_NETWORK_SIZE,
    CondensedDistribution,
    num_ranges,
    range_interval,
    representative_size,
)
from .entropy import entropy as pmf_entropy
from .entropy import guesswork as pmf_guesswork
from .entropy import validate_pmf

__all__ = ["SizeDistribution", "Sampler"]


class Sampler:
    """Precomputed inverse-CDF sampler for a fixed size distribution.

    Sampling network sizes is the hot loop of the Monte Carlo harness; this
    helper computes the cumulative mass once so each batch of draws costs a
    single ``searchsorted``.
    """

    def __init__(self, sizes: np.ndarray, pmf: np.ndarray) -> None:
        if sizes.shape != pmf.shape:
            raise ValueError("sizes and pmf must have equal shapes")
        self._sizes = sizes
        self._cdf = np.cumsum(pmf)
        # Guard the final bucket against floating-point undershoot so that a
        # uniform draw of exactly 1.0 - eps still maps inside the support.
        self._cdf[-1] = 1.0

    def draw(self, rng: np.random.Generator) -> int:
        """Draw one network size."""
        position = np.searchsorted(self._cdf, rng.random(), side="right")
        return int(self._sizes[min(position, len(self._sizes) - 1)])

    def draw_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` sizes as an ``int64`` array."""
        positions = np.searchsorted(self._cdf, rng.random(count), side="right")
        positions = np.minimum(positions, len(self._sizes) - 1)
        return self._sizes[positions].astype(np.int64)


class SizeDistribution:
    """A distribution over network sizes ``{2, ..., n}``.

    Parameters
    ----------
    n:
        Maximum possible network size.
    pmf_by_size:
        Sequence of length ``n + 1`` with ``pmf_by_size[k] = Pr(X = k)``;
        indices 0 and 1 must be zero.
    name:
        Optional human-readable label used in experiment reports.
    """

    def __init__(
        self,
        n: int,
        pmf_by_size: Sequence[float],
        *,
        name: str = "custom",
    ) -> None:
        if n < MIN_NETWORK_SIZE:
            raise ValueError(f"n must be >= {MIN_NETWORK_SIZE}, got {n}")
        if len(pmf_by_size) != n + 1:
            raise ValueError(
                f"pmf_by_size must have length n+1={n + 1}, got {len(pmf_by_size)}"
            )
        pmf = np.asarray(pmf_by_size, dtype=float)
        if pmf[:MIN_NETWORK_SIZE].any():
            raise ValueError(
                f"sizes below {MIN_NETWORK_SIZE} must have zero probability"
            )
        validate_pmf(pmf)
        self.n = n
        self._pmf = pmf
        self.name = name
        self._sampler: Sampler | None = None
        self._condensed: CondensedDistribution | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_weights(
        cls, n: int, weights_by_size: Mapping[int, float], *, name: str = "custom"
    ) -> "SizeDistribution":
        """Build from a sparse ``{size: weight}`` mapping (auto-normalised)."""
        pmf = np.zeros(n + 1, dtype=float)
        for size, weight in weights_by_size.items():
            if not MIN_NETWORK_SIZE <= size <= n:
                raise ValueError(
                    f"size {size} outside support [{MIN_NETWORK_SIZE}, {n}]"
                )
            if weight < 0:
                raise ValueError(f"negative weight for size {size}")
            pmf[size] = weight
        total = pmf.sum()
        if total <= 0:
            raise ValueError("weights sum to zero")
        pmf /= total
        return cls(n, pmf, name=name)

    @classmethod
    def point(cls, n: int, k: int, *, name: str | None = None) -> "SizeDistribution":
        """All mass on size ``k`` - the perfect-prediction workload."""
        return cls.from_weights(n, {k: 1.0}, name=name or f"point(k={k})")

    @classmethod
    def uniform(cls, n: int, *, name: str | None = None) -> "SizeDistribution":
        """Uniform over all sizes ``2..n``.

        Note the *condensed* version is not uniform: later ranges contain
        exponentially more sizes, so this workload concentrates condensed
        mass near range ``log n``.
        """
        weights = {k: 1.0 for k in range(MIN_NETWORK_SIZE, n + 1)}
        return cls.from_weights(n, weights, name=name or "uniform-sizes")

    @classmethod
    def range_uniform(cls, n: int, *, name: str | None = None) -> "SizeDistribution":
        """Uniform over the condensed ranges: ``H(c(X)) = log2 log2 n`` exactly.

        This is the paper's maximum-entropy workload: mass ``1/L`` placed at
        the representative size ``2^i`` of each range ``i``.
        """
        count = num_ranges(n)
        weights = {
            min(representative_size(i), n): 1.0 for i in range(1, count + 1)
        }
        return cls.from_weights(n, weights, name=name or "range-uniform")

    @classmethod
    def range_uniform_subset(
        cls,
        n: int,
        ranges: Iterable[int],
        *,
        spread: str = "point",
        name: str | None = None,
    ) -> "SizeDistribution":
        """Equal mass on the given condensed ranges - the entropy dial.

        With ``m`` distinct ranges the condensed entropy is exactly
        ``log2 m``.  ``spread='point'`` puts each range's mass on its
        representative size ``2^i``; ``spread='uniform'`` spreads it evenly
        over the sizes within the range (the condensed distribution is the
        same either way).
        """
        selected = sorted(set(ranges))
        count = num_ranges(n)
        if not selected:
            raise ValueError("must select at least one range")
        for i in selected:
            if not 1 <= i <= count:
                raise ValueError(f"range {i} out of bounds 1..{count} for n={n}")
        if spread not in ("point", "uniform"):
            raise ValueError(f"unknown spread mode {spread!r}")
        weights: dict[int, float] = {}
        share = 1.0 / len(selected)
        for i in selected:
            if spread == "point":
                weights[min(representative_size(i), n)] = (
                    weights.get(min(representative_size(i), n), 0.0) + share
                )
            else:
                low, high = range_interval(i, n)
                per_size = share / (high - low + 1)
                for size in range(low, high + 1):
                    weights[size] = weights.get(size, 0.0) + per_size
        label = name or f"range-subset(m={len(selected)})"
        return cls.from_weights(n, weights, name=label)

    @classmethod
    def interpolated_entropy(
        cls,
        n: int,
        target_entropy: float,
        *,
        anchor_range: int = 1,
        name: str | None = None,
    ) -> "SizeDistribution":
        """Workload whose condensed entropy is ``target_entropy`` (bits).

        Mixes a point mass on ``anchor_range`` with the uniform range
        distribution: ``q = (1 - lam) * point + lam * uniform``.  The
        condensed entropy is continuous and strictly increasing in ``lam``,
        so the target is located by bisection.  Valid targets lie in
        ``[0, log2 log2 n]``.
        """
        count = num_ranges(n)
        maximum = math.log2(count)
        if not 0.0 <= target_entropy <= maximum + 1e-12:
            raise ValueError(
                f"target entropy {target_entropy} outside [0, {maximum}] for n={n}"
            )

        def entropy_at(lam: float) -> float:
            q = [lam / count] * count
            q[anchor_range - 1] += 1.0 - lam
            return pmf_entropy(q)

        low, high = 0.0, 1.0
        for _ in range(80):
            mid = (low + high) / 2.0
            if entropy_at(mid) < target_entropy:
                low = mid
            else:
                high = mid
        lam = (low + high) / 2.0
        weights: dict[int, float] = {}
        for i in range(1, count + 1):
            mass = lam / count + (1.0 - lam if i == anchor_range else 0.0)
            if mass > 0:
                size = min(representative_size(i), n)
                weights[size] = weights.get(size, 0.0) + mass
        label = name or f"entropy({target_entropy:.2f}b)"
        return cls.from_weights(n, weights, name=label)

    @classmethod
    def geometric(
        cls, n: int, ratio: float = 0.5, *, name: str | None = None
    ) -> "SizeDistribution":
        """Geometric decay over sizes: ``Pr(X = k) ∝ ratio^k``.

        A low-entropy workload concentrated on small networks; typical of
        lightly-loaded access points.
        """
        if not 0.0 < ratio < 1.0:
            raise ValueError(f"ratio must be in (0, 1), got {ratio}")
        weights = {
            k: ratio ** (k - MIN_NETWORK_SIZE)
            for k in range(MIN_NETWORK_SIZE, n + 1)
        }
        return cls.from_weights(n, weights, name=name or f"geometric(r={ratio})")

    @classmethod
    def zipf(
        cls, n: int, exponent: float = 1.0, *, name: str | None = None
    ) -> "SizeDistribution":
        """Zipf-distributed sizes: ``Pr(X = k) ∝ k^-exponent``."""
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0, got {exponent}")
        weights = {
            k: float(k) ** -exponent for k in range(MIN_NETWORK_SIZE, n + 1)
        }
        return cls.from_weights(n, weights, name=name or f"zipf(s={exponent})")

    @classmethod
    def bimodal(
        cls,
        n: int,
        low_size: int,
        high_size: int,
        low_weight: float = 0.5,
        *,
        jitter_ranges: int = 0,
        name: str | None = None,
    ) -> "SizeDistribution":
        """Two-mode workload, e.g. night-time vs day-time network occupancy.

        ``jitter_ranges > 0`` spreads each mode over neighbouring ranges to
        model observation noise in the learned predictor.
        """
        if not 0.0 <= low_weight <= 1.0:
            raise ValueError("low_weight must be in [0, 1]")
        weights: dict[int, float] = {}

        def add_mode(center: int, total: float) -> None:
            if jitter_ranges <= 0:
                weights[center] = weights.get(center, 0.0) + total
                return
            from .condense import range_of_size  # local import, no cycle

            center_range = range_of_size(center)
            count = num_ranges(n)
            spread = [
                i
                for i in range(
                    center_range - jitter_ranges, center_range + jitter_ranges + 1
                )
                if 1 <= i <= count
            ]
            per = total / len(spread)
            for i in spread:
                size = min(representative_size(i), n)
                weights[size] = weights.get(size, 0.0) + per

        add_mode(low_size, low_weight)
        add_mode(high_size, 1.0 - low_weight)
        label = name or f"bimodal({low_size}/{high_size})"
        return cls.from_weights(n, weights, name=label)

    @classmethod
    def pliam(
        cls,
        n: int,
        light_ranges: int,
        heavy_mass: float = 0.5,
        *,
        name: str | None = None,
    ) -> "SizeDistribution":
        """Entropy-vs-guesswork separating family (Pliam [19], footnote 3).

        Places ``heavy_mass`` on range 1 and spreads the remainder evenly
        over the next ``light_ranges`` ranges.  Entropy grows like
        ``h(heavy) + (1-heavy) log2 light_ranges`` while the *guesswork* of
        the sorted-probing strategy grows linearly in ``light_ranges``;
        their ratio is unbounded, which is the content of the paper's
        conjecture that ``2^H`` rounds cannot suffice for the natural
        strategy.
        """
        count = num_ranges(n)
        if not 1 <= light_ranges <= count - 1:
            raise ValueError(
                f"light_ranges must be in 1..{count - 1} for n={n}, got {light_ranges}"
            )
        if not 0.0 < heavy_mass < 1.0:
            raise ValueError("heavy_mass must be in (0, 1)")
        weights: dict[int, float] = {
            min(representative_size(1), n): heavy_mass
        }
        per_light = (1.0 - heavy_mass) / light_ranges
        for i in range(2, 2 + light_ranges):
            size = min(representative_size(i), n)
            weights[size] = weights.get(size, 0.0) + per_light
        label = name or f"pliam(light={light_ranges},heavy={heavy_mass})"
        return cls.from_weights(n, weights, name=label)

    @classmethod
    def mixture(
        cls,
        components: Sequence["SizeDistribution"],
        weights: Sequence[float],
        *,
        name: str | None = None,
    ) -> "SizeDistribution":
        """Convex combination of size distributions on the same ``n``."""
        if len(components) != len(weights):
            raise ValueError("components and weights must have equal length")
        if not components:
            raise ValueError("mixture needs at least one component")
        n = components[0].n
        for component in components:
            if component.n != n:
                raise ValueError("all mixture components must share the same n")
        weight_array = np.asarray(weights, dtype=float)
        if (weight_array < 0).any() or weight_array.sum() <= 0:
            raise ValueError("mixture weights must be non-negative, not all zero")
        weight_array = weight_array / weight_array.sum()
        pmf = np.zeros(n + 1, dtype=float)
        for component, weight in zip(components, weight_array):
            pmf += weight * component._pmf
        return cls(n, pmf, name=name or "mixture")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def pmf(self) -> np.ndarray:
        """Copy of the pmf indexed by size (length ``n + 1``)."""
        return self._pmf.copy()

    def probability(self, k: int) -> float:
        """``Pr(X = k)``."""
        if not 0 <= k <= self.n:
            raise ValueError(f"size {k} out of bounds 0..{self.n}")
        return float(self._pmf[k])

    def support(self) -> list[int]:
        """Sizes with non-zero probability, ascending."""
        return [int(k) for k in np.nonzero(self._pmf)[0]]

    def mean(self) -> float:
        """Expected network size ``E[X]``."""
        sizes = np.arange(self.n + 1)
        return float((sizes * self._pmf).sum())

    def entropy(self) -> float:
        """Entropy of the *full* size distribution ``H(X)`` (not condensed)."""
        positive = self._pmf[self._pmf > 0]
        return float(-(positive * np.log2(positive)).sum())

    def condense(self) -> CondensedDistribution:
        """The condensed distribution ``c(X)`` (cached)."""
        if self._condensed is None:
            self._condensed = CondensedDistribution.from_size_pmf(
                self.n, self._pmf
            )
        return self._condensed

    def condensed_entropy(self) -> float:
        """``H(c(X))`` - the quantity the paper's Table 1 bounds use."""
        return self.condense().entropy()

    def guesswork(self) -> float:
        """Expected sequential guesses over condensed ranges (see entropy.py)."""
        return pmf_guesswork(list(self.condense().q))

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sampler(self) -> Sampler:
        """Precomputed sampler over the support (cached)."""
        if self._sampler is None:
            support = np.nonzero(self._pmf)[0]
            self._sampler = Sampler(support, self._pmf[support])
        return self._sampler

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one network size ``k`` with ``Pr(X = k)``."""
        return self.sampler().draw(rng)

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` network sizes."""
        return self.sampler().draw_many(rng, count)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def map_pmf(
        self, transform: Callable[[np.ndarray], np.ndarray], *, name: str | None = None
    ) -> "SizeDistribution":
        """Apply ``transform`` to the pmf and renormalise.

        Used by the perturbation models to derive predicted distributions
        ``Y`` from the truth ``X``.
        """
        new_pmf = np.asarray(transform(self._pmf.copy()), dtype=float)
        if new_pmf.shape != self._pmf.shape:
            raise ValueError("transform must preserve the pmf shape")
        new_pmf[:MIN_NETWORK_SIZE] = 0.0
        new_pmf = np.clip(new_pmf, 0.0, None)
        total = new_pmf.sum()
        if total <= 0:
            raise ValueError("transform produced an all-zero pmf")
        return SizeDistribution(
            self.n, new_pmf / total, name=name or f"{self.name}*"
        )

    def __repr__(self) -> str:
        return (
            f"SizeDistribution(name={self.name!r}, n={self.n}, "
            f"H(c)={self.condensed_entropy():.3f}b)"
        )
