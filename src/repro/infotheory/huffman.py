"""Huffman coding: the optimal prefix codes used by the CD upper bound.

Section 2.6 of the paper builds "an optimal code ``f`` with respect to
source ``c(Y)``" and organises its search phases by codeword length.  This
module constructs exactly such codes:

* :func:`huffman_code_lengths` - optimal length profile for a pmf (classic
  two-queue Huffman algorithm, deterministic tie-breaking);
* :func:`huffman_code` - a canonical :class:`~repro.infotheory.coding.PrefixCode`
  with those lengths;
* :func:`optimal_code_for` - convenience wrapper for condensed
  distributions, handling zero-mass ranges the way the algorithm needs
  (zero-probability ranges still receive codewords so the search remains
  exhaustive and the one-shot algorithm stays correct under mispredictions
  where the true range has zero *predicted* mass).

Huffman optimality gives ``H(p) <= E[len] < H(p) + 1`` against the code's
own source, and Theorem 2.3's sandwich against a mismatched source; both
are verified by the test suite and the ``SRC-CODE`` experiment.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Sequence

from .coding import PrefixCode, code_from_lengths
from .condense import CondensedDistribution
from .entropy import validate_pmf

__all__ = [
    "huffman_code_lengths",
    "huffman_code",
    "optimal_code_for",
    "ZERO_MASS_FLOOR",
]

#: Probability floor substituted for zero-mass symbols when building codes
#: over predicted distributions.  The floor only influences codeword
#: *lengths* for symbols the prediction called impossible; it keeps the
#: search exhaustive (every range eventually probed) without materially
#: distorting lengths of positive-mass symbols.
ZERO_MASS_FLOOR = 1e-12


def huffman_code_lengths(pmf: Sequence[float]) -> list[int]:
    """Optimal (Huffman) codeword lengths for the given pmf.

    Deterministic: ties between equal-weight subtrees break on the smallest
    contained symbol index, so repeated runs and both sides of a
    sender/receiver pair always derive the identical code.

    Single-symbol sources get the conventional length-1 profile (a code must
    emit at least one bit to be uniquely decodable in a stream).
    """
    validate_pmf(pmf)
    count = len(pmf)
    if count == 1:
        return [1]
    # Heap entries: (weight, min_symbol, tiebreak, node_id).
    counter = itertools.count()
    heap: list[tuple[float, int, int, int]] = []
    parents: dict[int, int] = {}
    next_node = count
    for symbol, weight in enumerate(pmf):
        heapq.heappush(heap, (float(weight), symbol, next(counter), symbol))
    while len(heap) > 1:
        w1, m1, _, node1 = heapq.heappop(heap)
        w2, m2, _, node2 = heapq.heappop(heap)
        merged = next_node
        next_node += 1
        parents[node1] = merged
        parents[node2] = merged
        heapq.heappush(heap, (w1 + w2, min(m1, m2), next(counter), merged))
    lengths = [0] * count
    for symbol in range(count):
        node = symbol
        depth = 0
        while node in parents:
            node = parents[node]
            depth += 1
        lengths[symbol] = depth
    return lengths


def huffman_code(pmf: Sequence[float]) -> PrefixCode:
    """Canonical prefix code with Huffman-optimal lengths for ``pmf``."""
    return code_from_lengths(huffman_code_lengths(pmf))


def optimal_code_for(distribution: CondensedDistribution) -> PrefixCode:
    """Optimal code for a condensed distribution, covering *all* ranges.

    Ranges the prediction assigns zero probability are given the floor
    :data:`ZERO_MASS_FLOOR` before Huffman construction, then the weights
    are renormalised.  The resulting code therefore has a codeword for every
    range in ``L(n)`` - required by the Section 2.6 algorithm, whose search
    must be able to reach the true range even when the prediction ruled it
    out (at the price of a long codeword, i.e. a late phase: exactly the
    graceful degradation Theorem 2.16 quantifies through ``D_KL``).
    """
    floored = [max(mass, ZERO_MASS_FLOOR) for mass in distribution.q]
    total = sum(floored)
    normalised = [mass / total for mass in floored]
    return huffman_code(normalised)
