"""Condensed network-size distributions over geometric ranges.

Section 2.2 of the paper replaces a distribution ``X`` over network sizes
``2..n`` with its *condensed* version ``c(X)`` over the ``ceil(log2 n)``
geometric ranges

    range 1 = {2},  range 2 = {3, 4},  range 3 = {5..8},  ...
    range i = (2^(i-1), 2^i]

because an estimate of the network size within a constant factor suffices to
solve contention resolution quickly.  Every bound in the paper is stated in
terms of ``H(c(X))`` and ``D_KL(c(X) || c(Y))``.

This module implements the range arithmetic (:func:`range_of_size`,
:func:`range_interval`, :func:`num_ranges`) and the
:class:`CondensedDistribution` value type used throughout the protocols,
lower-bound machinery and experiments.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .entropy import entropy, kl_divergence, total_variation, validate_pmf

__all__ = [
    "MIN_NETWORK_SIZE",
    "num_ranges",
    "range_of_size",
    "range_interval",
    "range_probability",
    "representative_size",
    "CondensedDistribution",
]

#: Smallest network size with any contention to resolve.  The paper assumes
#: ``k >= 2`` throughout (footnote 4): a single participant can be handled by
#: one extra round in which everyone transmits with probability 1.
MIN_NETWORK_SIZE = 2


def num_ranges(n: int) -> int:
    """Number of geometric ranges ``|L(n)| = ceil(log2 n)`` for max size ``n``."""
    if n < MIN_NETWORK_SIZE:
        raise ValueError(f"maximum network size must be >= {MIN_NETWORK_SIZE}")
    return max(1, math.ceil(math.log2(n)))


def range_of_size(k: int) -> int:
    """Index ``i`` of the geometric range ``(2^(i-1), 2^i]`` containing ``k``.

    ``range_of_size(2) == 1``, ``range_of_size(3) == range_of_size(4) == 2``,
    ``range_of_size(5) == 3`` and in general ``i = ceil(log2 k)``.
    """
    if k < MIN_NETWORK_SIZE:
        raise ValueError(f"network size must be >= {MIN_NETWORK_SIZE}, got {k}")
    return max(1, (k - 1).bit_length())


def range_interval(i: int, n: int | None = None) -> tuple[int, int]:
    """Inclusive interval ``[2^(i-1)+1, 2^i]`` of sizes in range ``i``.

    Range 1 is special-cased to ``[2, 2]`` per the paper (sizes start at 2).
    When ``n`` is given, the upper end is clipped to ``n`` (the last range of
    a non-power-of-two ``n`` is partial).
    """
    if i < 1:
        raise ValueError(f"range index must be >= 1, got {i}")
    low = MIN_NETWORK_SIZE if i == 1 else 2 ** (i - 1) + 1
    high = 2**i
    if n is not None:
        if i > num_ranges(n):
            raise ValueError(f"range {i} does not exist for n={n}")
        high = min(high, n)
    if low > high:
        raise ValueError(f"range {i} is empty for n={n}")
    return low, high


def representative_size(i: int) -> int:
    """Canonical size ``2^i`` for range ``i``.

    Transmitting with probability ``2^-i`` is within a factor of two of
    optimal for every size in range ``i``; this is the size the paper's
    algorithms implicitly target when they "try range i".
    """
    if i < 1:
        raise ValueError(f"range index must be >= 1, got {i}")
    return 2**i


def range_probability(i: int) -> float:
    """Transmission probability ``2^-i`` associated with range ``i``."""
    if i < 1:
        raise ValueError(f"range index must be >= 1, got {i}")
    return 2.0**-i


@dataclass(frozen=True)
class CondensedDistribution:
    """The distribution ``c(X)`` over the geometric ranges ``L(n)``.

    Attributes
    ----------
    n:
        Maximum network size the ranges were derived for.
    q:
        Tuple ``(q_1, ..., q_L)`` with ``q_i = Pr(c(X) = i)``; ``L ==
        num_ranges(n)``.

    Instances are immutable and hashable-by-identity; use :meth:`almost_equal`
    for numeric comparison.
    """

    n: int
    q: tuple[float, ...]

    def __post_init__(self) -> None:
        expected = num_ranges(self.n)
        if len(self.q) != expected:
            raise ValueError(
                f"expected {expected} range probabilities for n={self.n}, "
                f"got {len(self.q)}"
            )
        validate_pmf(self.q)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_size_pmf(cls, n: int, pmf_by_size: Sequence[float]) -> "CondensedDistribution":
        """Condense a pmf indexed by size (``pmf_by_size[k]`` = ``Pr(X=k)``).

        ``pmf_by_size`` must have length ``n + 1``; entries at indices 0 and
        1 must be zero (sizes below :data:`MIN_NETWORK_SIZE` are excluded by
        the model).
        """
        if len(pmf_by_size) != n + 1:
            raise ValueError(
                f"pmf must be indexed by size 0..n; expected length {n + 1}, "
                f"got {len(pmf_by_size)}"
            )
        if any(pmf_by_size[k] != 0.0 for k in range(MIN_NETWORK_SIZE)):
            raise ValueError(
                f"sizes below {MIN_NETWORK_SIZE} must have zero probability"
            )
        count = num_ranges(n)
        # Vectorized condensation: range_of_size(k) = (k-1).bit_length()
        # for k >= 2, which is exactly the frexp exponent of float(k - 1)
        # (integers below 2^53 convert exactly).  bincount accumulates in
        # ascending size order, matching the scalar loop bit for bit.
        values = np.asarray(pmf_by_size, dtype=float)[MIN_NETWORK_SIZE:]
        bad = (values < 0.0) | ~np.isfinite(values)
        if bad.any():
            index = int(np.argmax(bad)) + MIN_NETWORK_SIZE
            raise ValueError(
                f"invalid probability {float(values[index - MIN_NETWORK_SIZE])!r} "
                f"for size {index} in size pmf"
            )
        exponents = np.frexp(
            np.arange(MIN_NETWORK_SIZE - 1, n, dtype=float)
        )[1]
        masses = np.bincount(
            exponents - 1, weights=values, minlength=count
        ).tolist()
        total = math.fsum(masses)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"size pmf sums to {total}, expected 1.0")
        # Renormalise away accumulated floating-point drift so the result
        # always passes strict pmf validation downstream.
        masses = [m / total for m in masses]
        return cls(n=n, q=tuple(masses))

    @classmethod
    def uniform(cls, n: int) -> "CondensedDistribution":
        """Uniform condensed distribution (maximum entropy, ``log2 log2 n``)."""
        count = num_ranges(n)
        return cls(n=n, q=tuple([1.0 / count] * count))

    @classmethod
    def point(cls, n: int, target_range: int) -> "CondensedDistribution":
        """All mass on a single range (zero entropy: the perfect prediction)."""
        count = num_ranges(n)
        if not 1 <= target_range <= count:
            raise ValueError(
                f"range {target_range} out of bounds 1..{count} for n={n}"
            )
        q = [0.0] * count
        q[target_range - 1] = 1.0
        return cls(n=n, q=tuple(q))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_ranges(self) -> int:
        """Number of ranges ``|L(n)|``."""
        return len(self.q)

    def probability(self, i: int) -> float:
        """``Pr(c(X) = i)`` for range index ``i`` (1-based)."""
        if not 1 <= i <= len(self.q):
            raise ValueError(f"range index {i} out of bounds 1..{len(self.q)}")
        return self.q[i - 1]

    def entropy(self) -> float:
        """Shannon entropy ``H(c(X))`` in bits; drives every Table 1 bound."""
        return entropy(self.q)

    def kl_divergence(self, other: "CondensedDistribution") -> float:
        """``D_KL(self || other)``: prediction error cost of using ``other``.

        In the paper's notation, if ``self = c(X)`` (truth) and ``other =
        c(Y)`` (prediction), this is the divergence term of Theorems 2.12
        and 2.16.
        """
        self._require_same_support(other)
        return kl_divergence(self.q, other.q)

    def total_variation(self, other: "CondensedDistribution") -> float:
        """Total variation distance to ``other`` (diagnostics only)."""
        self._require_same_support(other)
        return total_variation(self.q, other.q)

    def support(self) -> list[int]:
        """Range indices with non-zero probability, ascending."""
        return [i + 1 for i, mass in enumerate(self.q) if mass > 0.0]

    def sorted_ranges(self) -> list[int]:
        """Ranges ordered by non-increasing probability, ties by index.

        This is exactly the probe order ``pi`` of the paper's no-CD
        prediction algorithm (Section 2.5.1): most likely range first.
        """
        return sorted(range(1, len(self.q) + 1), key=lambda i: (-self.q[i - 1], i))

    def almost_equal(
        self, other: "CondensedDistribution", *, tolerance: float = 1e-9
    ) -> bool:
        """Numeric equality of the two condensed pmfs within ``tolerance``."""
        if self.n != other.n:
            return False
        return all(
            abs(a - b) <= tolerance for a, b in zip(self.q, other.q)
        )

    def sample_range(self, rng: np.random.Generator) -> int:
        """Draw a range index according to ``q`` (1-based)."""
        return int(rng.choice(len(self.q), p=np.asarray(self.q))) + 1

    def _require_same_support(self, other: "CondensedDistribution") -> None:
        if self.n != other.n:
            raise ValueError(
                f"condensed distributions for different n: {self.n} vs {other.n}"
            )
