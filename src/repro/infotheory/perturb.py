"""Prediction-error models: deriving a predicted ``Y`` from the truth ``X``.

The paper's upper bounds take a *predicted* network-size distribution ``Y``
that may differ from the actual ``X``, and charge the difference through
``D_KL(c(X) || c(Y))`` (Theorems 2.12 and 2.16).  In practice ``Y`` would
come from a learned model; since the theorems see ``Y`` only through the
divergence, we model prediction error parametrically.  Each transform below
maps a :class:`~repro.infotheory.distributions.SizeDistribution` to a
perturbed one, with a strength knob that sweeps the divergence continuously
from zero:

* :func:`mix_with_uniform` - epsilon-contamination with the uniform range
  distribution (an under-confident predictor);
* :func:`temperature` - power-law flattening/sharpening of range masses
  (mis-calibrated confidence);
* :func:`shift_ranges` - systematic bias: predicted sizes off by a factor
  ``2^delta`` (e.g. a predictor trained before the network grew);
* :func:`swap_extremes` - adversarial error: mass of the likeliest range
  traded with the least likely one;
* :func:`floor_support` - repair transform guaranteeing ``Y`` dominates
  ``X`` so that the divergence (and the algorithms' budgets) stay finite.

All transforms operate on the *condensed* mass profile and rebuild a size
distribution with that condensed profile (mass placed on representative
sizes), because only the condensed distribution matters to the paper's
algorithms and bounds.
"""

from __future__ import annotations

import numpy as np

from .condense import num_ranges, representative_size
from .distributions import SizeDistribution

__all__ = [
    "from_condensed_profile",
    "mix_with_uniform",
    "temperature",
    "shift_ranges",
    "swap_extremes",
    "floor_support",
    "divergence_between",
    "entropy_of",
    "prediction_quality_sweep",
]


def from_condensed_profile(
    n: int, masses: list[float], *, name: str
) -> SizeDistribution:
    """Build a size distribution realising the given condensed profile.

    Mass for range ``i`` is placed on the representative size
    ``min(2^i, n)``; the resulting distribution condenses back to exactly
    ``masses`` (up to normalisation).
    """
    count = num_ranges(n)
    if len(masses) != count:
        raise ValueError(f"expected {count} range masses, got {len(masses)}")
    weights = {}
    for index, mass in enumerate(masses):
        if mass < 0:
            raise ValueError(f"negative mass {mass} for range {index + 1}")
        if mass > 0:
            size = min(representative_size(index + 1), n)
            weights[size] = weights.get(size, 0.0) + mass
    return SizeDistribution.from_weights(n, weights, name=name)


def mix_with_uniform(
    truth: SizeDistribution, epsilon: float, *, name: str | None = None
) -> SizeDistribution:
    """Epsilon-contaminated prediction: ``c(Y) = (1-eps) c(X) + eps U``.

    ``epsilon = 0`` returns the truth (divergence 0); ``epsilon = 1`` is the
    uniform, uninformative prediction.  Because the mixture keeps every
    range's predicted mass at least ``eps / L``, the divergence
    ``D_KL(c(X) || c(Y))`` is finite for every ``epsilon > 0`` and grows
    smoothly - the canonical dial for the KL-cost experiments.
    """
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
    q = np.asarray(truth.condense().q)
    count = len(q)
    mixed = (1.0 - epsilon) * q + epsilon / count
    label = name or f"{truth.name}+mix({epsilon:.3f})"
    return from_condensed_profile(truth.n, mixed.tolist(), name=label)


def temperature(
    truth: SizeDistribution, beta: float, *, name: str | None = None
) -> SizeDistribution:
    """Mis-calibrated prediction: range masses raised to the power ``beta``.

    ``beta = 1`` is the truth; ``beta < 1`` flattens (under-confident);
    ``beta > 1`` sharpens (over-confident).  ``beta = 0`` is uniform over
    the truth's support.  Zero-mass ranges stay zero, so over-sharpened
    predictions can have infinite divergence against a *different* truth -
    use :func:`floor_support` to repair.
    """
    if beta < 0:
        raise ValueError(f"beta must be >= 0, got {beta}")
    q = np.asarray(truth.condense().q)
    powered = np.zeros_like(q)
    positive = q > 0
    powered[positive] = np.power(q[positive], beta)
    if powered.sum() <= 0:
        raise ValueError("temperature transform produced an all-zero profile")
    label = name or f"{truth.name}+temp({beta:.2f})"
    return from_condensed_profile(truth.n, powered.tolist(), name=label)


def shift_ranges(
    truth: SizeDistribution, delta: int, *, name: str | None = None
) -> SizeDistribution:
    """Systematically biased prediction: every range shifted by ``delta``.

    A prediction off by ``delta`` ranges corresponds to a multiplicative
    size error of ``2^delta`` - e.g. a predictor trained when the network
    was half its current size has ``delta = -1``.  Mass shifted past either
    end of ``L(n)`` clamps to the boundary range.
    """
    q = np.asarray(truth.condense().q)
    count = len(q)
    shifted = np.zeros(count)
    for index, mass in enumerate(q):
        target = min(max(index + delta, 0), count - 1)
        shifted[target] += mass
    label = name or f"{truth.name}+shift({delta:+d})"
    return from_condensed_profile(truth.n, shifted.tolist(), name=label)


def swap_extremes(
    truth: SizeDistribution, fraction: float = 1.0, *, name: str | None = None
) -> SizeDistribution:
    """Adversarial prediction: likeliest and least-likely masses traded.

    ``fraction`` of the probability gap between the most and least likely
    ranges (per the truth) is transferred, so the sorted-probing order
    visits the true mode *last* at ``fraction = 1``.  This produces the
    worst probe order achievable while keeping the same support, the
    regime where Theorem 2.12's divergence term dominates.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    q = np.asarray(truth.condense().q, dtype=float)
    if len(q) < 2:
        return from_condensed_profile(
            truth.n, q.tolist(), name=name or f"{truth.name}+swap"
        )
    top = int(np.argmax(q))
    bottom = int(np.argmin(q))
    if top == bottom:
        return from_condensed_profile(
            truth.n, q.tolist(), name=name or f"{truth.name}+swap"
        )
    transfer = fraction * (q[top] - q[bottom])
    q[top] -= transfer
    q[bottom] += transfer
    label = name or f"{truth.name}+swap({fraction:.2f})"
    return from_condensed_profile(truth.n, q.tolist(), name=label)


def floor_support(
    prediction: SizeDistribution, floor: float = 1e-6, *, name: str | None = None
) -> SizeDistribution:
    """Repair a prediction so every range has mass at least ``floor / L``.

    Guarantees ``D_KL(c(X) || c(Y))`` is finite for *any* truth ``X`` - the
    standard smoothing a deployed predictor applies so a single impossible
    outcome cannot stall the algorithm forever.  Equivalent to
    :func:`mix_with_uniform` with ``epsilon = floor`` applied to the
    prediction itself.
    """
    if not 0.0 < floor < 1.0:
        raise ValueError(f"floor must be in (0, 1), got {floor}")
    q = np.asarray(prediction.condense().q)
    count = len(q)
    repaired = (1.0 - floor) * q + floor / count
    label = name or f"{prediction.name}+floor({floor:g})"
    return from_condensed_profile(prediction.n, repaired.tolist(), name=label)


def divergence_between(
    truth: SizeDistribution, prediction: SizeDistribution
) -> float:
    """``D_KL(c(X) || c(Y))`` in bits - the cost term of Theorems 2.12/2.16."""
    if truth.n != prediction.n:
        raise ValueError("truth and prediction must share the same n")
    return truth.condense().kl_divergence(prediction.condense())


def entropy_of(truth: SizeDistribution) -> float:
    """``H(c(X))`` in bits - convenience re-export for experiment code."""
    return truth.condensed_entropy()


def prediction_quality_sweep(
    truth: SizeDistribution, epsilons: list[float]
) -> list[tuple[float, SizeDistribution, float]]:
    """Sweep :func:`mix_with_uniform` strengths, returning divergences.

    Returns tuples ``(epsilon, prediction, D_KL(c(truth) || c(prediction)))``
    sorted by epsilon - the standard x-axis of the KL-cost experiments.
    """
    rows = []
    for epsilon in sorted(epsilons):
        prediction = mix_with_uniform(truth, epsilon)
        rows.append((epsilon, prediction, divergence_between(truth, prediction)))
    return rows
