"""Collision-detector-driven noisy binary search over size ranges.

The shared engine behind three of the paper's algorithms:

* Willard's classic ``O(log log n)`` search [22] over all of ``L(n)``;
* the Section 2.6 prediction algorithm, which runs the same search within
  successive codeword-length classes;
* the truncated search of Theorem 3.7, which runs it over the advice-
  selected block of ranges.

A probe at range ``m`` transmits with probability ``2^-m``.  If the true
participant count ``k`` lies in a range above ``m`` the probe is likely to
collide (``k * 2^-m > 1``); below, likely silent.  Collision therefore
votes "search higher", silence "search lower" - a *noisy* comparison, so
each probe may be repeated an odd number of times and majority-voted,
exactly the constant-repetition device Willard uses to drive the per-phase
failure probability below a constant.

:class:`PhasedSearchSession` walks a list of *phases*, each a sorted list
of candidate range indices, binary searching each in turn; on exhausting
all phases it either restarts (expected-time variants) or raises
:class:`~repro.core.protocol.ScheduleExhausted` (one-shot variants).
"""

from __future__ import annotations

import copy
from collections.abc import Sequence

from ..core.feedback import Observation
from ..core.protocol import (
    ProtocolError,
    ScheduleExhausted,
    UniformProtocol,
    UniformSession,
)
from ..infotheory.condense import range_probability

__all__ = ["PhasedSearchSession", "PhasedSearchProtocol"]


def _validate_phases(phases: Sequence[Sequence[int]]) -> list[list[int]]:
    cleaned: list[list[int]] = []
    for phase in phases:
        members = list(phase)
        if any(member < 1 for member in members):
            raise ValueError(f"range indices must be >= 1, got {members}")
        if members != sorted(members):
            raise ValueError(f"phase members must be ascending, got {members}")
        if len(set(members)) != len(members):
            raise ValueError(f"phase members must be distinct, got {members}")
        cleaned.append(members)
    if not any(cleaned):
        raise ValueError("at least one phase must be non-empty")
    return cleaned


class PhasedSearchSession(UniformSession):
    """One execution of the phased noisy binary search."""

    def __init__(
        self,
        phases: Sequence[Sequence[int]],
        *,
        repetitions: int,
        restart: bool,
        handle_k1: bool,
    ) -> None:
        self._phases = _validate_phases(phases)
        self._repetitions = repetitions
        self._restart = restart
        self._k1_round_pending = handle_k1
        self._awaiting_k1_observation = False
        self._phase_index = -1
        self._lo = 0
        self._hi = -1
        self._mid: int | None = None
        self._votes_cast = 0
        self._collision_votes = 0
        self._advance_phase()

    # ------------------------------------------------------------------
    def next_probability(self) -> float:
        if self._k1_round_pending:
            self._k1_round_pending = False
            self._awaiting_k1_observation = True
            return 1.0
        if self._lo > self._hi:
            self._advance_phase()
        if self._mid is None:
            self._mid = (self._lo + self._hi) // 2
            self._votes_cast = 0
            self._collision_votes = 0
        return range_probability(self._current_range())

    def observe(self, observation: Observation) -> None:
        if self._awaiting_k1_observation:
            # The dedicated k=1 round carries no search information: with
            # k >= 2 it always collides regardless of the true range.
            self._awaiting_k1_observation = False
            return
        if observation is Observation.QUIET:
            raise ProtocolError(
                "phased search requires collision detection; got a no-CD "
                "observation"
            )
        if observation is Observation.SUCCESS:
            raise ProtocolError("success ends the execution; nothing to observe")
        if self._mid is None:
            raise ProtocolError("observe() called before next_probability()")
        self._votes_cast += 1
        if observation is Observation.COLLISION:
            self._collision_votes += 1
        if self._votes_cast >= self._repetitions:
            # Majority collision => participant count exceeds the probe
            # range => search the upper half; ties break to the lower half.
            if 2 * self._collision_votes > self._repetitions:
                self._lo = self._mid + 1
            else:
                self._hi = self._mid - 1
            self._mid = None

    def fork(self) -> "PhasedSearchSession":
        # Mutable state is all ints/bools; the phase lists are never
        # mutated after validation, so sharing them across forks is safe.
        # The batch history engine forks once per distinct collision
        # history, so this skips copy.copy's reduce protocol entirely.
        clone = object.__new__(type(self))
        clone.__dict__.update(self.__dict__)
        return clone

    # ------------------------------------------------------------------
    @property
    def phase_index(self) -> int:
        """0-based index of the phase currently being searched."""
        return self._phase_index

    def _current_range(self) -> int:
        assert self._mid is not None
        return self._phases[self._phase_index][self._mid]

    def _advance_phase(self) -> None:
        """Move to the next non-empty phase, restarting or exhausting."""
        next_index = self._phase_index + 1
        while next_index < len(self._phases) and not self._phases[next_index]:
            next_index += 1
        if next_index >= len(self._phases):
            if not self._restart:
                raise ScheduleExhausted(
                    "phased search exhausted all phases without success"
                )
            next_index = 0
            while not self._phases[next_index]:
                next_index += 1
        self._phase_index = next_index
        self._lo = 0
        self._hi = len(self._phases[next_index]) - 1
        self._mid = None


class PhasedSearchProtocol(UniformProtocol):
    """Uniform CD protocol running :class:`PhasedSearchSession` executions.

    Parameters
    ----------
    phases:
        Lists of ascending range indices, searched in order.
    repetitions:
        Odd number of probes per comparison (majority vote).  ``1``
        reproduces the bare search; ``3`` (default) gives the constant
        per-comparison error boost the Willard analysis assumes.
    restart:
        Restart from the first phase after exhausting all phases
        (expected-time variant) or stop (one-shot variant).
    handle_k1:
        Prepend one all-transmit round so ``k = 1`` executions solve
        immediately (paper footnote 4).
    """

    requires_collision_detection = True

    def __init__(
        self,
        phases: Sequence[Sequence[int]],
        *,
        repetitions: int = 3,
        restart: bool = True,
        handle_k1: bool = False,
        name: str = "phased-search",
    ) -> None:
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        if repetitions % 2 == 0:
            raise ValueError(
                f"repetitions must be odd for unambiguous majority votes, "
                f"got {repetitions}"
            )
        self.phases = _validate_phases(phases)
        self.repetitions = repetitions
        self.restart = restart
        self.handle_k1 = handle_k1
        self.name = name

    def session(self) -> PhasedSearchSession:
        return PhasedSearchSession(
            self.phases,
            repetitions=self.repetitions,
            restart=self.restart,
            handle_k1=self.handle_k1,
        )

    def history_signature(self) -> tuple:
        """Sessions are a pure function of the constructor arguments.

        Willard, code search and the truncated/advised variants are all
        instances of this one engine, so equal ``(phases, repetitions,
        restart, handle_k1)`` tuples - however the subclass derived them -
        yield interchangeable sessions, and the batch history engine can
        share one memoized trie across such points.
        """
        return (
            "phased-search",
            tuple(tuple(phase) for phase in self.phases),
            self.repetitions,
            self.restart,
            self.handle_k1,
        )

    def worst_case_rounds_per_pass(self) -> int:
        """Upper bound on rounds in one pass through all phases.

        Each phase of ``m`` candidates takes at most
        ``ceil(log2(m + 1)) * repetitions`` probe rounds; the optional k=1
        round adds one more.  Used by tests and the Table 1/2 budget
        checks.
        """
        total = 0
        for phase in self.phases:
            if phase:
                total += max(1, (len(phase)).bit_length()) * self.repetitions
        return total + (1 if self.handle_k1 else 0)
