"""Deterministic perfect-advice protocols (Section 3.2 upper bounds).

Both protocols view the ``n`` player ids as leaves of a balanced binary
tree of height ``w = ceil(log2 n)`` and pair with
:class:`~repro.core.advice.MinIdPrefixAdvice`, whose ``b`` bits are the
first ``b`` steps of the root-to-leaf traversal towards the smallest
active participant.

* **No collision detection** - :class:`DeterministicScanProtocol`: the
  advice pins a subtree of ``2^(w-b)`` leaves containing an active player;
  the protocol gives each candidate leaf its own round, in ascending id
  order.  Any round whose candidate is active has exactly one transmitter,
  so the problem is solved within ``2^(w-b) ~ n / 2^b`` rounds - matching
  the ``t(n) >= n^(1-alpha)/2`` lower bound of Theorem 3.4 within a
  constant factor.

* **Collision detection** - :class:`DeterministicTreeDescentProtocol`:
  complete the traversal using collision votes.  Each round, active
  players in the left child subtree transmit: silence means the left
  subtree is empty (descend right), a collision means it holds >= 2 active
  players (descend left), success ends the execution.  After ``w - b``
  descents the subtree is a single active leaf, which then transmits
  alone: at most ``log n - b + 1`` rounds, matching Theorem 3.5's
  ``t(n) >= log n - b`` lower bound within one round.
"""

from __future__ import annotations

import numpy as np

from ..core.advice import AdviceError, bits_to_int, id_bit_width, id_to_bits
from ..core.feedback import Observation
from ..core.protocol import (
    OBS_COLLISION,
    OBS_QUIET,
    PlayerBatchSessions,
    PlayerProtocol,
    PlayerSession,
    ProtocolError,
    ScheduleExhausted,
)

__all__ = [
    "DeterministicScanProtocol",
    "DeterministicTreeDescentProtocol",
]


class _ScanSession(PlayerSession):
    """Per-player state of the no-CD candidate scan."""

    def __init__(self, player_id: int, n: int, advice: str) -> None:
        width = id_bit_width(n)
        if len(advice) > width:
            raise AdviceError(
                f"advice {advice!r} longer than id width {width} for n={n}"
            )
        self._rounds_total = 2 ** (width - len(advice))
        my_bits = id_to_bits(player_id, width)
        if my_bits.startswith(advice):
            # Slot index = position of this id within the advised subtree.
            self._slot: int | None = bits_to_int(my_bits[len(advice):])
        else:
            self._slot = None
        self._round = 0

    def decide(self) -> bool:
        if self._round >= self._rounds_total:
            raise ScheduleExhausted(
                "candidate scan exhausted the advised subtree"
            )
        transmit = self._slot is not None and self._slot == self._round
        self._round += 1
        return transmit

    def observe(self, observation: Observation, *, transmitted: bool) -> None:
        # Oblivious: the scan schedule is fixed by the advice alone.
        del observation, transmitted


def _advice_ints(advice: tuple[str, ...], width: int, n: int) -> np.ndarray:
    """Per-trial advice strings decoded to integers, with scalar-path checks."""
    values = np.empty(len(advice), dtype=np.int64)
    for row, bits in enumerate(advice):
        if len(bits) > width:
            raise AdviceError(
                f"advice {bits!r} longer than id width {width} for n={n}"
            )
        values[row] = bits_to_int(bits)
    return values


class _ScanBatchSessions(PlayerBatchSessions):
    """The candidate scan as integer compares against precomputed slots.

    A player's whole schedule is one number: the slot of its id within
    the advised subtree (or -1 when the advice excludes it), so round
    ``r`` of every trial is a single ``slots == r - 1`` compare.  The
    scan is oblivious and all trials share the advice length, so the
    round counter is global and exhaustion hits every live trial at once.
    """

    def __init__(
        self, ids: np.ndarray, n: int, advice: tuple[str, ...], bits: int
    ) -> None:
        width = id_bit_width(n)
        targets = _advice_ints(advice, width, n)
        self._rounds_total = 2 ** (width - bits)
        valid = ids >= 0
        prefixes = np.where(valid, ids, 0) >> (width - bits)
        advised = valid & (prefixes == targets[:, None])
        # Slot index = position of this id within the advised subtree.
        self._slots = np.where(advised, ids & (self._rounds_total - 1), -1)
        self._round = 0

    def decide(self, live: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self._round >= self._rounds_total:
            return (
                np.zeros((live.size, self._slots.shape[1]), dtype=bool),
                np.ones(live.size, dtype=bool),
            )
        decisions = self._slots[live] == self._round
        self._round += 1
        return decisions, np.zeros(live.size, dtype=bool)

    def observe(
        self, live: np.ndarray, observations: np.ndarray, decisions: np.ndarray
    ) -> None:
        # Oblivious: the scan schedule is fixed by the advice alone.
        del live, observations, decisions


class DeterministicScanProtocol(PlayerProtocol):
    """No-CD deterministic protocol: one round per candidate id.

    Parameters
    ----------
    advice_bits:
        The advice budget ``b``; pair with
        ``MinIdPrefixAdvice(advice_bits)``.

    Worst-case rounds: ``2^(ceil(log2 n) - b)``, i.e. ``Theta(n / 2^b)``.
    """

    requires_collision_detection = False

    def __init__(self, advice_bits: int) -> None:
        if advice_bits < 0:
            raise ValueError(f"advice budget must be >= 0, got {advice_bits}")
        self.advice_bits = advice_bits
        self.name = f"det-scan(b={advice_bits})"

    def session(
        self,
        player_id: int,
        n: int,
        advice: str,
        rng: np.random.Generator | None = None,
    ) -> _ScanSession:
        del rng  # deterministic protocol
        return _ScanSession(player_id, n, advice)

    def supports_batch_sessions(self) -> bool:
        return True

    def supports_fused_sessions(self) -> bool:
        """Fully deterministic: nothing drawn, rows never interact."""
        return True

    def batch_sessions(
        self,
        player_ids: np.ndarray,
        n: int,
        advice: tuple[str, ...],
        rng: np.random.Generator | None = None,
    ) -> _ScanBatchSessions:
        del rng  # deterministic protocol
        return _ScanBatchSessions(player_ids, n, advice, self.advice_bits)

    def worst_case_rounds(self, n: int) -> int:
        """The exact worst-case round count ``2^(w - b)``."""
        return 2 ** max(0, id_bit_width(n) - self.advice_bits)


class _TreeDescentSession(PlayerSession):
    """Per-player state of the CD tree descent."""

    def __init__(self, player_id: int, n: int, advice: str) -> None:
        self._width = id_bit_width(n)
        if len(advice) > self._width:
            raise AdviceError(
                f"advice {advice!r} longer than id width {self._width} for n={n}"
            )
        self._my_bits = id_to_bits(player_id, self._width)
        self._prefix = advice
        self._failed = False

    def decide(self) -> bool:
        if self._failed:
            # Faulty advice pointed at an empty subtree: the descent has
            # provably failed, so the execution gives up cleanly (callers
            # can wrap with a fallback protocol; see protocols/restart.py).
            raise ScheduleExhausted(
                "tree descent reached an inactive leaf; the advised subtree "
                "held no active player"
            )
        if len(self._prefix) == self._width:
            # Leaf reached: the unique candidate transmits alone.
            return self._my_bits == self._prefix
        # Probe the left child: active players under prefix+'0' transmit.
        return self._my_bits.startswith(self._prefix + "0")

    def observe(self, observation: Observation, *, transmitted: bool) -> None:
        del transmitted
        if observation is Observation.QUIET:
            raise ProtocolError(
                "tree descent requires collision detection; got a no-CD "
                "observation"
            )
        if len(self._prefix) == self._width:
            # A leaf-round non-success means the advice was faulty (the
            # advised subtree holds no active player): give up next round.
            self._failed = True
            return
        if observation is Observation.COLLISION:
            # >= 2 active players under the left child.
            self._prefix += "0"
        else:
            # Silence: the left child subtree holds no active player.
            self._prefix += "1"


class _TreeDescentBatchSessions(PlayerBatchSessions):
    """All trials' descents as one integer prefix per trial.

    The scalar session's bit-string prefix becomes an int64 column (the
    value of the first ``depth`` traversal bits); a collision appends a 0
    (descend left, ``prefix * 2``), silence a 1 (``prefix * 2 + 1``).
    All trials start from the same advice length and descend one level
    per round, so the depth is global while the prefix values and the
    failed-at-leaf flags are per-trial.
    """

    def __init__(
        self, ids: np.ndarray, n: int, advice: tuple[str, ...], bits: int
    ) -> None:
        self._width = id_bit_width(n)
        self._ids = ids
        self._valid = ids >= 0
        self._prefixes = _advice_ints(advice, self._width, n)
        self._depth = bits
        self._failed = np.zeros(len(advice), dtype=bool)

    def decide(self, live: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # Faulty advice pointed at an empty subtree: the descent has
        # provably failed, so those trials give up cleanly (the batch
        # analogue of the scalar session's ScheduleExhausted).
        exhausted = self._failed[live]
        targets = self._prefixes[live][:, None]
        if self._depth == self._width:
            # Leaf reached: the unique candidate transmits alone.
            decisions = self._valid[live] & (self._ids[live] == targets)
        else:
            # Probe the left child: active players under prefix+'0'
            # transmit.
            shift = self._width - self._depth - 1
            decisions = self._valid[live] & (
                (self._ids[live] >> shift) == targets * 2
            )
        decisions[exhausted] = False
        return decisions, exhausted

    def observe(
        self, live: np.ndarray, observations: np.ndarray, decisions: np.ndarray
    ) -> None:
        del decisions
        if (observations == OBS_QUIET).any():
            raise ProtocolError(
                "tree descent requires collision detection; got a no-CD "
                "observation"
            )
        if self._depth == self._width:
            # A leaf-round non-success means the advice was faulty (the
            # advised subtree holds no active player): give up next round.
            self._failed[live] = True
            return
        # Collision: >= 2 active players under the left child, descend
        # left (append 0).  Silence: the left child is empty, descend
        # right (append 1).
        self._prefixes[live] = self._prefixes[live] * 2 + (
            observations != OBS_COLLISION
        )
        self._depth += 1


class DeterministicTreeDescentProtocol(PlayerProtocol):
    """CD deterministic protocol: collision-vote descent from the advice.

    Parameters
    ----------
    advice_bits:
        The advice budget ``b``; pair with
        ``MinIdPrefixAdvice(advice_bits)``.

    Worst-case rounds: ``ceil(log2 n) - b + 1`` (the ``+1`` is the final
    solo round at the leaf), matching the paper's ``log n - b(n) + 1``.
    """

    requires_collision_detection = True

    def __init__(self, advice_bits: int) -> None:
        if advice_bits < 0:
            raise ValueError(f"advice budget must be >= 0, got {advice_bits}")
        self.advice_bits = advice_bits
        self.name = f"det-descent(b={advice_bits})"

    def session(
        self,
        player_id: int,
        n: int,
        advice: str,
        rng: np.random.Generator | None = None,
    ) -> _TreeDescentSession:
        del rng  # deterministic protocol
        return _TreeDescentSession(player_id, n, advice)

    def supports_batch_sessions(self) -> bool:
        return True

    def supports_fused_sessions(self) -> bool:
        """Fully deterministic: nothing drawn, rows never interact."""
        return True

    def batch_sessions(
        self,
        player_ids: np.ndarray,
        n: int,
        advice: tuple[str, ...],
        rng: np.random.Generator | None = None,
    ) -> _TreeDescentBatchSessions:
        del rng  # deterministic protocol
        return _TreeDescentBatchSessions(player_ids, n, advice, self.advice_bits)

    def worst_case_rounds(self, n: int) -> int:
        """The exact worst-case round count ``w - b + 1``."""
        return max(1, id_bit_width(n) - self.advice_bits + 1)
