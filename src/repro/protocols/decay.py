"""The decay strategy of Bar-Yehuda, Goldreich and Itai [2].

The classical no-CD baseline: cycle through the ``ceil(log2 n)``
geometrically decreasing probabilities ``1/2, 1/4, ..., 2^-L``.  One of
them is within a factor of two of the optimal ``1/k`` for the actual
participant count ``k``, so each pass succeeds with constant probability
and the expected round complexity is ``O(log n)`` - matching the
``Omega(log n)`` worst-case lower bound [11, 18] the paper's Section 1.1
reviews.  The paper frames decay as "cycling through log n geometrically
distributed guesses of the network size", which is exactly the shape the
RF-Construction lower-bound transform consumes.
"""

from __future__ import annotations

from ..core.uniform import ProbabilitySchedule, ScheduleProtocol
from ..infotheory.condense import num_ranges, range_probability

__all__ = ["decay_schedule", "DecayProtocol"]


def decay_schedule(n: int, *, handle_k1: bool = False) -> ProbabilitySchedule:
    """One decay pass: probabilities ``2^-1 .. 2^-L`` for ``L = ceil(log2 n)``.

    With ``handle_k1`` an initial probability-1 round is prepended, which
    solves ``k = 1`` outright (paper footnote 4's trick).
    """
    probabilities = [range_probability(i) for i in range(1, num_ranges(n) + 1)]
    if handle_k1:
        probabilities.insert(0, 1.0)
    return ProbabilitySchedule(probabilities, name=f"decay(n={n})")


class DecayProtocol(ScheduleProtocol):
    """Cycling decay: the standard ``O(log n)`` expected-time baseline.

    Parameters
    ----------
    n:
        Maximum network size (fixes the pass length ``ceil(log2 n)``).
    cycle:
        ``True`` (default) repeats passes forever - the expected-time
        protocol; ``False`` runs a single one-shot pass.
    handle_k1:
        Prepend an all-transmit round per pass for ``k = 1`` support.
    """

    def __init__(self, n: int, *, cycle: bool = True, handle_k1: bool = False):
        if n < 2:
            raise ValueError(f"n must be >= 2, got {n}")
        self.n = n
        super().__init__(
            decay_schedule(n, handle_k1=handle_k1),
            cycle=cycle,
            name=f"decay(n={n})",
        )
