"""Randomized perfect-advice protocols (Theorems 3.6 and 3.7 upper bounds).

Both pair with :class:`~repro.core.advice.RangeBlockAdvice`: the ``b``
advice bits name which of ``2^b`` consecutive blocks of the geometric
ranges ``L(n)`` contains the true range ``ceil(log2 k)``, shrinking the
search space from ``L = ceil(log2 n)`` ranges to ``ceil(L / 2^b)``.

* **No collision detection** - *truncated decay* (Theorem 3.6): cycle
  through the probabilities of the advised block only.  Expected rounds
  ``O(log n / 2^b)``, matching the theorem's tight bound (a reduction from
  the no-advice ``Omega(log n)`` bound shows this is optimal).

* **Collision detection** - *truncated Willard* (Theorem 3.7): binary
  search the advised block with collision feedback.  Expected rounds
  ``O(log(L / 2^b)) = O(log log n - b)``; with ``b >= log2 L`` the block
  is a single range and the expected time is ``O(1)``.

Because the advice string is common to all participants, these are
*uniform* protocols once the advice is fixed; the harness therefore
computes the advice itself (it knows the participant set) and runs the
fast binomial simulation path.  :func:`block_index_for` exposes the
advice-to-block decoding used in that flow.
"""

from __future__ import annotations

from ..core.advice import RangeBlockAdvice, bits_to_int, range_blocks
from ..core.uniform import ProbabilitySchedule, ScheduleProtocol
from ..infotheory.condense import num_ranges, range_of_size, range_probability
from .willard import WillardProtocol

__all__ = [
    "TruncatedDecayProtocol",
    "truncated_willard_protocol",
    "truncated_willard_for_count",
    "block_index_for",
    "advised_block",
    "true_range_for_count",
]


def block_index_for(n: int, advice_bits: int, k: int) -> int:
    """The block index a perfect advice function reports for count ``k``.

    Mirrors :class:`~repro.core.advice.RangeBlockAdvice` exactly (it is
    implemented *via* it) so harnesses using the fast uniform path stay in
    lock-step with the per-player path.
    """
    advice = RangeBlockAdvice(advice_bits).advise(range(max(k, 1)), n)
    return bits_to_int(advice)


def advised_block(n: int, advice_bits: int, block_index: int) -> list[int]:
    """The ranges of block ``block_index`` in the ``2^b``-block partition."""
    blocks = range_blocks(num_ranges(n), advice_bits)
    if not 0 <= block_index < len(blocks):
        raise ValueError(
            f"block index {block_index} out of bounds for b={advice_bits}"
        )
    block = blocks[block_index]
    if not block:
        raise ValueError(
            f"block {block_index} is empty for n={n}, b={advice_bits}; "
            "a perfect advice function never selects an empty block"
        )
    return block


class TruncatedDecayProtocol(ScheduleProtocol):
    """Decay restricted to the advised block of ranges (Theorem 3.6).

    Parameters
    ----------
    n:
        Maximum network size.
    advice_bits:
        The advice budget ``b``.
    block_index:
        The advised block (decode with :func:`block_index_for`).
    cycle:
        Repeat the block pass until success (default; the expected-time
        protocol of the theorem) or run one pass only.
    handle_k1:
        Prepend an all-transmit round per pass for ``k = 1``.
    """

    def __init__(
        self,
        n: int,
        advice_bits: int,
        block_index: int,
        *,
        cycle: bool = True,
        handle_k1: bool = False,
    ) -> None:
        block = advised_block(n, advice_bits, block_index)
        probabilities = [range_probability(i) for i in block]
        if handle_k1:
            probabilities.insert(0, 1.0)
        self.n = n
        self.advice_bits = advice_bits
        self.block = block
        schedule = ProbabilitySchedule(
            probabilities,
            name=f"truncated-decay(n={n},b={advice_bits},block={block_index})",
        )
        super().__init__(schedule, cycle=cycle, name=schedule.name)

    @classmethod
    def for_count(
        cls,
        n: int,
        advice_bits: int,
        k: int,
        *,
        cycle: bool = True,
        handle_k1: bool = False,
    ) -> "TruncatedDecayProtocol":
        """Build with the block a perfect advice function gives for ``k``."""
        return cls(
            n,
            advice_bits,
            block_index_for(n, advice_bits, k),
            cycle=cycle,
            handle_k1=handle_k1,
        )


def truncated_willard_protocol(
    n: int,
    advice_bits: int,
    block_index: int,
    *,
    repetitions: int = 3,
    restart: bool = True,
    handle_k1: bool = False,
) -> WillardProtocol:
    """Willard's search restricted to the advised block (Theorem 3.7).

    Returns a :class:`~repro.protocols.willard.WillardProtocol` whose
    search space is the block's ranges; expected rounds
    ``O(log |block|) = O(log log n - b)``.
    """
    block = advised_block(n, advice_bits, block_index)
    return WillardProtocol(
        n,
        ranges=block,
        repetitions=repetitions,
        restart=restart,
        handle_k1=handle_k1,
    )


def truncated_willard_for_count(
    n: int,
    advice_bits: int,
    k: int,
    *,
    repetitions: int = 3,
    restart: bool = True,
    handle_k1: bool = False,
) -> WillardProtocol:
    """Truncated Willard with the block a perfect advice gives for ``k``."""
    return truncated_willard_protocol(
        n,
        advice_bits,
        block_index_for(n, advice_bits, k),
        repetitions=repetitions,
        restart=restart,
        handle_k1=handle_k1,
    )


def true_range_for_count(k: int) -> int:
    """Convenience re-export: the range ``ceil(log2 k)`` containing ``k``."""
    return range_of_size(k)
