"""The robust no-CD sawtooth protocol of Jiang and Zheng (2021).

"Robust and Optimal Contention Resolution without Collision Detection"
shows that a *sawtooth* probability schedule - sweeping geometrically
from ``1/2`` down to ``2^-e`` in epochs of growing depth ``e`` - resolves
contention in the presence of a budgeted jammer with only an additive
overhead in the jammer's budget, without collision detection and without
knowing the participant count.  The robustness mechanism is density:
every probability ``2^-i`` with ``i <= e`` recurs in *every* epoch of
depth ``>= i``, so destroying any one good round costs the adversary a
unit of budget while the schedule re-offers a near-optimal probability
within ``O(log n)`` rounds - unlike plain decay, whose single
near-optimal round per pass makes each pass's success concentrate in one
round the adversary can target.

This implementation is the natural finite-``n`` rendering used as the
robust baseline of the ``ADAPT-ROBUST`` experiment: with ``L =
ceil(log2 n)``, one full cycle plays epochs ``e = 1 .. L``, epoch ``e``
sweeping ``1/2, 1/4, ..., 2^-e`` (``L(L+1)/2`` rounds per cycle), and
the cycle repeats.  As a pure :class:`~repro.core.uniform.ScheduleProtocol`
it inherits the full capability surface - ``batch_schedule()`` for the
stacked schedule engine, deterministic sessions with a shared
``history_signature()`` for the history engine - so it routes to the
fastest engine everywhere, adversarial channels included.
"""

from __future__ import annotations

from ..core.uniform import ProbabilitySchedule, ScheduleProtocol
from ..infotheory.condense import num_ranges

__all__ = ["sawtooth_schedule", "JiangZhengProtocol"]


def sawtooth_schedule(n: int) -> ProbabilitySchedule:
    """One sawtooth cycle: epochs ``e = 1 .. ceil(log2 n)``.

    Epoch ``e`` sweeps the probabilities ``2^-1, 2^-2, ..., 2^-e``; the
    cycle concatenates all epochs (``L(L+1)/2`` rounds total), so every
    probability scale recurs with frequency proportional to how early it
    appears - the redundancy that buys jamming robustness.
    """
    depth = num_ranges(n)
    probabilities = [
        2.0**-i for epoch in range(1, depth + 1) for i in range(1, epoch + 1)
    ]
    return ProbabilitySchedule(probabilities, name=f"sawtooth(n={n})")


class JiangZhengProtocol(ScheduleProtocol):
    """Cycling sawtooth: the robust no-CD baseline under jamming.

    Parameters
    ----------
    n:
        Maximum network size (fixes the deepest epoch ``ceil(log2 n)``).
    cycle:
        ``True`` (default) repeats the sawtooth forever - the robust
        expected-time protocol; ``False`` plays a single one-shot cycle.
    """

    def __init__(self, n: int, *, cycle: bool = True):
        if n < 2:
            raise ValueError(f"n must be >= 2, got {n}")
        self.n = n
        super().__init__(
            sawtooth_schedule(n), cycle=cycle, name=f"jiang-zheng(n={n})"
        )
