"""Contention-resolution protocols: baselines and the paper's algorithms.

Baselines
    :class:`DecayProtocol` (no-CD, ``O(log n)`` [2]),
    :class:`WillardProtocol` (CD, ``O(log log n)`` [22]),
    :class:`FixedProbabilityProtocol` (perfect estimate, ``O(1)``),
    :class:`BinaryExponentialBackoff` (practical MAC comparator),
    :class:`JiangZhengProtocol` (no-CD sawtooth, robust under jamming).

Prediction algorithms (Section 2)
    :class:`SortedProbingProtocol` (no-CD, Theorem 2.12),
    :class:`CodeSearchProtocol` (CD, Theorem 2.16).

Perfect-advice algorithms (Section 3)
    :class:`DeterministicScanProtocol` (no-CD, ``Theta(n / 2^b)``),
    :class:`DeterministicTreeDescentProtocol` (CD, ``Theta(log n - b)``),
    :class:`TruncatedDecayProtocol` (no-CD, ``Theta(log n / 2^b)``),
    :func:`truncated_willard_protocol` (CD, ``Theta(log log n - b)``).
"""

from .adapters import (
    SessionReplayPolicy,
    UniformAsPlayerProtocol,
    as_history_policy,
)
from .restart import FallbackPlayerProtocol, RestartProtocol
from .advice_deterministic import (
    DeterministicScanProtocol,
    DeterministicTreeDescentProtocol,
)
from .advice_randomized import (
    TruncatedDecayProtocol,
    advised_block,
    block_index_for,
    true_range_for_count,
    truncated_willard_for_count,
    truncated_willard_protocol,
)
from .backoff import BinaryExponentialBackoff
from .code_search import CodeSearchProtocol
from .decay import DecayProtocol, decay_schedule
from .fixed_probability import FixedProbabilityProtocol
from .jiang_zheng import JiangZhengProtocol, sawtooth_schedule
from .searching import PhasedSearchProtocol, PhasedSearchSession
from .sorted_probing import SortedProbingProtocol, sorted_probing_schedule
from .willard import WillardProtocol

__all__ = [
    # baselines
    "DecayProtocol",
    "decay_schedule",
    "WillardProtocol",
    "FixedProbabilityProtocol",
    "BinaryExponentialBackoff",
    "JiangZhengProtocol",
    "sawtooth_schedule",
    # prediction algorithms (Section 2)
    "SortedProbingProtocol",
    "sorted_probing_schedule",
    "CodeSearchProtocol",
    "PhasedSearchProtocol",
    "PhasedSearchSession",
    # advice algorithms (Section 3)
    "DeterministicScanProtocol",
    "DeterministicTreeDescentProtocol",
    "TruncatedDecayProtocol",
    "truncated_willard_protocol",
    "truncated_willard_for_count",
    "block_index_for",
    "advised_block",
    "true_range_for_count",
    # adapters and combinators
    "as_history_policy",
    "SessionReplayPolicy",
    "UniformAsPlayerProtocol",
    "RestartProtocol",
    "FallbackPlayerProtocol",
]
