"""Adapters bridging protocol representations.

The lower-bound machinery of Section 2.4 consumes uniform CD algorithms in
their *functional* form - a map from collision histories to probabilities
(:class:`~repro.core.uniform.HistoryPolicy`) - while the runnable protocols
here are implemented as stateful sessions for efficiency.  For a
*deterministic* uniform protocol the two are equivalent:
:func:`as_history_policy` recovers the functional form by replaying any
queried history through a fresh session.

Replay costs ``O(|history|)`` per query; the tree constructions only query
histories up to depth ``O(log log n + code length)``, so this is cheap.
A small prefix cache would be possible but is deliberately omitted -
sessions are stateful and cloning them is more fragile than replaying.
"""

from __future__ import annotations

import numpy as np

from ..channel.batch import is_batchable
from ..core.feedback import Observation
from ..core.protocol import (
    OBS_COLLISION,
    OBS_SILENCE,
    PlayerBatchSessions,
    PlayerProtocol,
    PlayerSession,
    ProtocolError,
    ScheduleExhausted,
    UniformProtocol,
    UniformSession,
)
from ..core.uniform import HistoryPolicy

__all__ = [
    "as_history_policy",
    "SessionReplayPolicy",
    "UniformAsPlayerProtocol",
]


class SessionReplayPolicy(HistoryPolicy):
    """Functional (history -> probability) view of a deterministic protocol.

    The wrapped protocol must be deterministic as a function of the
    observation history (true for every CD protocol in this library:
    schedules, Willard search, code search).  Queries replay the history
    bit string through a fresh session: bit 1 feeds ``COLLISION``, bit 0
    feeds ``SILENCE``.

    Histories that drive the session past its one-shot horizon raise
    :class:`~repro.core.protocol.ScheduleExhausted`; the tree constructions
    treat such nodes as absent.
    """

    def __init__(self, protocol: UniformProtocol, *, name: str | None = None):
        self._protocol = protocol
        self.name = name or f"policy({protocol.name})"

    def probability(self, history: str) -> float:
        self.validate_history(history)
        session = self._protocol.session()
        for bit in history:
            session.next_probability()
            session.observe(
                Observation.COLLISION if bit == "1" else Observation.SILENCE
            )
        return session.next_probability()

    def defined_on(self, history: str) -> bool:
        """Whether the protocol still schedules a round after ``history``."""
        try:
            self.probability(history)
        except ScheduleExhausted:
            return False
        return True


def as_history_policy(
    protocol: UniformProtocol, *, name: str | None = None
) -> SessionReplayPolicy:
    """Functional view of a deterministic uniform protocol.

    Works for both CD and no-CD protocols; for the latter the history is
    simply ignored by the underlying schedule (observations are fed but
    oblivious sessions discard them), so the policy is constant in the
    history bits, as expected of a fixed schedule.
    """
    return SessionReplayPolicy(protocol, name=name)


class _UniformPlayerSession(PlayerSession):
    def __init__(
        self, inner: UniformSession, rng: np.random.Generator
    ) -> None:
        self._inner = inner
        self._rng = rng
        self._probability: float | None = None

    def decide(self) -> bool:
        self._probability = self._inner.next_probability()
        return bool(self._rng.random() < self._probability)

    def observe(self, observation: Observation, *, transmitted: bool) -> None:
        del transmitted
        self._inner.observe(observation)


#: Batch observation code -> the Observation fed to scalar uniform
#: sessions on the per-trial path (QUIET is the no-CD default).
_OBSERVATION_FROM_CODE = {
    OBS_SILENCE: Observation.SILENCE,
    OBS_COLLISION: Observation.COLLISION,
}


class _UniformPlayerBatchSessions(PlayerBatchSessions):
    """Per-player Bernoulli draws against each trial's shared probability.

    Two inner representations, mirroring the uniform batch engines:

    * an oblivious inner protocol publishes its whole schedule
      (:meth:`~repro.core.protocol.UniformProtocol.batch_schedule`), so
      the round probability is an array lookup shared by every trial and
      no session objects exist at all;
    * a feedback-driven inner protocol with deterministic sessions keeps
      one scalar :class:`UniformSession` per trial - O(trials) Python
      calls per round instead of the scalar player engine's
      O(trials x players).

    Either way the round's decisions are one vectorized uniform draw over
    the live rows, so each player still transmits independently with the
    shared probability - semantically identical to the scalar adapter.
    """

    def __init__(
        self,
        uniform: UniformProtocol,
        mask: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        self._mask = mask
        self._rng = rng
        self._schedule = uniform.batch_schedule()
        self._round = 0
        if self._schedule is None:
            self._sessions: list[UniformSession | None] = [
                uniform.session() for _ in range(mask.shape[0])
            ]

    def _probabilities(self, live: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-live-trial round probabilities plus the exhausted mask."""
        if self._schedule is not None:
            spec = self._schedule
            if not spec.cycle and self._round >= len(spec.probabilities):
                return (
                    np.zeros(live.size),
                    np.ones(live.size, dtype=bool),
                )
            p = spec.probabilities[self._round % len(spec.probabilities)]
            return np.full(live.size, p), np.zeros(live.size, dtype=bool)
        probabilities = np.zeros(live.size)
        exhausted = np.zeros(live.size, dtype=bool)
        for row, trial in enumerate(live):
            session = self._sessions[trial]
            assert session is not None  # retired trials are never live
            try:
                probabilities[row] = session.next_probability()
            except ScheduleExhausted:
                exhausted[row] = True
                self._sessions[trial] = None
        return probabilities, exhausted

    def decide(self, live: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        probabilities, exhausted = self._probabilities(live)
        self._round += 1
        draws = self._rng.random((live.size, self._mask.shape[1]))
        decisions = (draws < probabilities[:, None]) & self._mask[live]
        decisions[exhausted] = False
        return decisions, exhausted

    def observe(
        self, live: np.ndarray, observations: np.ndarray, decisions: np.ndarray
    ) -> None:
        del decisions
        if self._schedule is not None:
            return  # oblivious: the schedule ignores feedback
        for row, trial in enumerate(live):
            session = self._sessions[trial]
            assert session is not None
            session.observe(
                _OBSERVATION_FROM_CODE.get(
                    int(observations[row]), Observation.QUIET
                )
            )


class UniformAsPlayerProtocol(PlayerProtocol):
    """Per-player view of a uniform protocol.

    Semantically identical to running the uniform protocol on the binomial
    fast path (each player independently transmits with the shared
    probability); used where the per-player engine is required, e.g. as
    the fallback half of
    :class:`~repro.protocols.restart.FallbackPlayerProtocol`.  Because the
    wrapped session is deterministic given the observation stream, all
    players stay in lock-step on CD channels.
    """

    advice_bits = 0

    def __init__(self, uniform: UniformProtocol) -> None:
        self._uniform = uniform
        self.requires_collision_detection = (
            uniform.requires_collision_detection
        )
        self.name = f"players({uniform.name})"

    def session(
        self,
        player_id: int,
        n: int,
        advice: str,
        rng: np.random.Generator | None = None,
    ) -> _UniformPlayerSession:
        del player_id, n, advice
        if rng is None:
            raise ProtocolError(
                "UniformAsPlayerProtocol needs the simulation rng"
            )
        return _UniformPlayerSession(self._uniform.session(), rng)

    def supports_batch_sessions(self) -> bool:
        """Batchable exactly when the wrapped uniform protocol is.

        A schedule-publishing or deterministic-session inner protocol
        (every uniform algorithm in the library, including the truncated
        advice protocols of Section 3) vectorizes; randomized-session
        wrappers keep the scalar path authoritative, mirroring
        :func:`repro.channel.batch.is_batchable`.
        """
        return is_batchable(self._uniform)

    def batch_sessions(
        self,
        player_ids: np.ndarray,
        n: int,
        advice: tuple[str, ...],
        rng: np.random.Generator | None = None,
    ) -> _UniformPlayerBatchSessions | None:
        del n, advice
        if rng is None:
            raise ProtocolError(
                "UniformAsPlayerProtocol needs the simulation rng"
            )
        if not self.supports_batch_sessions():
            return None
        return _UniformPlayerBatchSessions(self._uniform, player_ids >= 0, rng)
