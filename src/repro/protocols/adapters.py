"""Adapters bridging protocol representations.

The lower-bound machinery of Section 2.4 consumes uniform CD algorithms in
their *functional* form - a map from collision histories to probabilities
(:class:`~repro.core.uniform.HistoryPolicy`) - while the runnable protocols
here are implemented as stateful sessions for efficiency.  For a
*deterministic* uniform protocol the two are equivalent:
:func:`as_history_policy` recovers the functional form by replaying any
queried history through a fresh session.

Replay costs ``O(|history|)`` per query; the tree constructions only query
histories up to depth ``O(log log n + code length)``, so this is cheap.
A small prefix cache would be possible but is deliberately omitted -
sessions are stateful and cloning them is more fragile than replaying.
"""

from __future__ import annotations

import numpy as np

from ..core.feedback import Observation
from ..core.protocol import (
    PlayerProtocol,
    PlayerSession,
    ProtocolError,
    ScheduleExhausted,
    UniformProtocol,
    UniformSession,
)
from ..core.uniform import HistoryPolicy

__all__ = [
    "as_history_policy",
    "SessionReplayPolicy",
    "UniformAsPlayerProtocol",
]


class SessionReplayPolicy(HistoryPolicy):
    """Functional (history -> probability) view of a deterministic protocol.

    The wrapped protocol must be deterministic as a function of the
    observation history (true for every CD protocol in this library:
    schedules, Willard search, code search).  Queries replay the history
    bit string through a fresh session: bit 1 feeds ``COLLISION``, bit 0
    feeds ``SILENCE``.

    Histories that drive the session past its one-shot horizon raise
    :class:`~repro.core.protocol.ScheduleExhausted`; the tree constructions
    treat such nodes as absent.
    """

    def __init__(self, protocol: UniformProtocol, *, name: str | None = None):
        self._protocol = protocol
        self.name = name or f"policy({protocol.name})"

    def probability(self, history: str) -> float:
        self.validate_history(history)
        session = self._protocol.session()
        for bit in history:
            session.next_probability()
            session.observe(
                Observation.COLLISION if bit == "1" else Observation.SILENCE
            )
        return session.next_probability()

    def defined_on(self, history: str) -> bool:
        """Whether the protocol still schedules a round after ``history``."""
        try:
            self.probability(history)
        except ScheduleExhausted:
            return False
        return True


def as_history_policy(
    protocol: UniformProtocol, *, name: str | None = None
) -> SessionReplayPolicy:
    """Functional view of a deterministic uniform protocol.

    Works for both CD and no-CD protocols; for the latter the history is
    simply ignored by the underlying schedule (observations are fed but
    oblivious sessions discard them), so the policy is constant in the
    history bits, as expected of a fixed schedule.
    """
    return SessionReplayPolicy(protocol, name=name)


class _UniformPlayerSession(PlayerSession):
    def __init__(
        self, inner: UniformSession, rng: np.random.Generator
    ) -> None:
        self._inner = inner
        self._rng = rng
        self._probability: float | None = None

    def decide(self) -> bool:
        self._probability = self._inner.next_probability()
        return bool(self._rng.random() < self._probability)

    def observe(self, observation: Observation, *, transmitted: bool) -> None:
        del transmitted
        self._inner.observe(observation)


class UniformAsPlayerProtocol(PlayerProtocol):
    """Per-player view of a uniform protocol.

    Semantically identical to running the uniform protocol on the binomial
    fast path (each player independently transmits with the shared
    probability); used where the per-player engine is required, e.g. as
    the fallback half of
    :class:`~repro.protocols.restart.FallbackPlayerProtocol`.  Because the
    wrapped session is deterministic given the observation stream, all
    players stay in lock-step on CD channels.
    """

    advice_bits = 0

    def __init__(self, uniform: UniformProtocol) -> None:
        self._uniform = uniform
        self.requires_collision_detection = (
            uniform.requires_collision_detection
        )
        self.name = f"players({uniform.name})"

    def session(
        self,
        player_id: int,
        n: int,
        advice: str,
        rng: np.random.Generator | None = None,
    ) -> _UniformPlayerSession:
        del player_id, n, advice
        if rng is None:
            raise ProtocolError(
                "UniformAsPlayerProtocol needs the simulation rng"
            )
        return _UniformPlayerSession(self._uniform.session(), rng)
