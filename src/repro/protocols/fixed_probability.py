"""Fixed-probability transmission: the perfect-estimate baseline.

Section 1.1: "if the algorithm is given an accurate estimate
``k_hat = Theta(k)`` of the actual network size ``k``, the problem can be
solved in ``O(1)`` rounds in expectation by simply transmitting with
probability ``1/k_hat`` in each round."  This protocol is that best-case
endpoint; the experiments use it to anchor the low-entropy end of every
crossover plot.
"""

from __future__ import annotations

from ..core.uniform import ProbabilitySchedule, ScheduleProtocol

__all__ = ["FixedProbabilityProtocol"]


class FixedProbabilityProtocol(ScheduleProtocol):
    """Transmit with probability ``1 / k_hat`` every round.

    With ``k_hat = Theta(k)`` the per-round success probability is a
    constant (at least ``1/(2e)`` for ``k_hat in [k/2, 2k]``), so the
    expected number of rounds is ``O(1)``.
    """

    def __init__(self, k_hat: float, *, name: str | None = None):
        if k_hat < 1:
            raise ValueError(f"size estimate must be >= 1, got {k_hat}")
        self.k_hat = float(k_hat)
        schedule = ProbabilitySchedule(
            [1.0 / self.k_hat], name=name or f"fixed(1/{k_hat:g})"
        )
        super().__init__(schedule, cycle=True, name=schedule.name)
