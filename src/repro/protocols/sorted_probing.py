"""The no-CD prediction algorithm of Section 2.5 (sorted probing).

Given a predicted size distribution ``Y``, sort the ranges of ``L(n)`` by
non-increasing predicted probability under ``c(Y)``; in round ``i``
transmit with probability ``2^-pi_i`` for the ``i``-th most likely range
``pi_i``.  Theorem 2.12: with probability at least 1/16 this one-shot pass
solves contention resolution within ``O(2^T)`` rounds where
``T = 2 H(c(X)) + 2 D_KL(c(X) || c(Y))``; Corollary 2.15 specialises to
``O(2^{2 H(c(X))})`` for perfect predictions.

The success probability inside the correct round is at least 1/8
(Lemma 2.13), because the probe probability ``2^-pi_i`` lies in
``[1/(2k), 1/k)`` whenever ``k`` falls in range ``pi_i``.

Per the paper's footnote 6 the result is one-shot; for expected-time
measurements we also provide a cycling variant that repeats the pass
(a simple restart strategy, *not* the "clever cycling" the footnote
alludes to - we measure and report it as such).
"""

from __future__ import annotations

from ..core.predictions import Prediction
from ..core.uniform import ProbabilitySchedule, ScheduleProtocol
from ..infotheory.condense import range_probability
from ..infotheory.distributions import SizeDistribution

__all__ = ["SortedProbingProtocol", "sorted_probing_schedule"]


def sorted_probing_schedule(
    prediction: Prediction,
    *,
    handle_k1: bool = False,
    support_only: bool = False,
) -> ProbabilitySchedule:
    """One pass of Section 2.5.1: probabilities ``2^-pi_1, 2^-pi_2, ...``.

    ``pi`` orders ranges by non-increasing predicted probability with ties
    broken toward smaller ranges (any fixed tie-break preserves the
    analysis; smaller-first is also the cheaper guess in practice).

    ``support_only`` drops zero-probability ranges from the pass.  For the
    cycling expected-time variant this is the natural reading of "visit
    these values in turn" (a zero-likelihood value never earns a probe);
    use it only with support-floored predictions, since a true range the
    prediction ruled out would then never be probed.
    """
    order = prediction.probe_order
    if support_only:
        condensed = prediction.condensed
        order = [i for i in order if condensed.probability(i) > 0.0]
        if not order:
            raise ValueError("prediction has empty support")
    probabilities = [range_probability(i) for i in order]
    if handle_k1:
        probabilities.insert(0, 1.0)
    return ProbabilitySchedule(
        probabilities, name=f"sorted-probing(n={prediction.n})"
    )


class SortedProbingProtocol(ScheduleProtocol):
    """Probe ranges in order of predicted likelihood (Section 2.5).

    Parameters
    ----------
    prediction:
        The predicted distribution ``Y`` (as a
        :class:`~repro.core.predictions.Prediction` or raw
        :class:`~repro.infotheory.distributions.SizeDistribution`).
    one_shot:
        ``True`` (default) performs the single pass Theorem 2.12 analyses;
        ``False`` repeats the pass until success, for expected-time runs.
    handle_k1:
        Prepend an all-transmit round per pass to solve ``k = 1``.
    support_only:
        Restrict passes to positive-probability ranges (see
        :func:`sorted_probing_schedule`).
    """

    def __init__(
        self,
        prediction: Prediction | SizeDistribution,
        *,
        one_shot: bool = True,
        handle_k1: bool = False,
        support_only: bool = False,
    ) -> None:
        if isinstance(prediction, SizeDistribution):
            prediction = Prediction(prediction)
        self.prediction = prediction
        schedule = sorted_probing_schedule(
            prediction, handle_k1=handle_k1, support_only=support_only
        )
        super().__init__(
            schedule,
            cycle=not one_shot,
            name=f"sorted-probing(n={prediction.n}, "
            f"{'one-shot' if one_shot else 'cycling'})",
        )

    def probe_order(self) -> list[int]:
        """The range visit order ``pi`` (most likely first)."""
        return self.prediction.probe_order
