"""Restart and fallback wrappers: one-shot algorithms made resilient.

Two generic combinators used across the expected-time and robustness
experiments:

* :class:`RestartProtocol` - when a one-shot uniform protocol exhausts
  without success, start a fresh session and keep going.  Turns every
  constant-probability one-shot result (Theorems 2.12/2.16) into an
  expected-time protocol with a geometric number of attempts - the simple
  restart strategy the paper's footnote 6 contrasts with cleverer cycling
  (which the paper leaves open, and so do we: this wrapper is measured,
  not analysed).

* :class:`FallbackPlayerProtocol` - run a (possibly advice-trusting)
  player protocol for a fixed budget; if it fails - e.g. because faulty
  advice pointed nowhere - switch every player to a fallback protocol.
  The robustness repair for Section 3.2's deterministic protocols: with
  failure probability ``f`` and fallback cost ``C``, the expected cost is
  ``(1-f) * fast + f * (budget + C)``.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..core.feedback import Observation
from ..core.protocol import (
    BatchSchedule,
    PlayerBatchSessions,
    PlayerProtocol,
    PlayerSession,
    ScheduleExhausted,
    UniformProtocol,
    UniformSession,
)

__all__ = ["RestartProtocol", "FallbackPlayerProtocol"]


class _RestartSession(UniformSession):
    def __init__(self, factory: Callable[[], UniformSession]) -> None:
        self._factory = factory
        self._inner = factory()
        self.attempts = 1

    def next_probability(self) -> float:
        try:
            return self._inner.next_probability()
        except ScheduleExhausted:
            self._inner = self._factory()
            self.attempts += 1
            return self._inner.next_probability()

    def observe(self, observation: Observation) -> None:
        self._inner.observe(observation)


class RestartProtocol(UniformProtocol):
    """Re-run a one-shot uniform protocol until the engine stops it.

    Wraps either a protocol instance (sessions restart from the same
    protocol) or a zero-argument factory (each attempt may rebuild the
    protocol, e.g. with fresh randomness).
    """

    def __init__(
        self,
        inner: UniformProtocol | Callable[[], UniformProtocol],
        *,
        name: str | None = None,
    ) -> None:
        if isinstance(inner, UniformProtocol):
            self._factory: Callable[[], UniformProtocol] = lambda: inner
            self._shared_inner: UniformProtocol | None = inner
            # Restarted sessions are only as deterministic as the inner
            # protocol's own sessions.
            self.deterministic_sessions = inner.deterministic_sessions
            base = inner
        else:
            self._factory = inner
            # Each attempt may rebuild the protocol with fresh randomness,
            # so restarted sessions are not deterministic functions of the
            # observation history: keep such wrappers on the scalar path.
            self._shared_inner = None
            self.deterministic_sessions = False
            base = inner()
        self.requires_collision_detection = base.requires_collision_detection
        self.name = name or f"restart({base.name})"

    def session(self) -> _RestartSession:
        return _RestartSession(lambda: self._factory().session())

    def batch_schedule(self) -> BatchSchedule | None:
        """Restarting a shared oblivious one-shot is a cycling schedule."""
        if self._shared_inner is None:
            return None
        inner_spec = self._shared_inner.batch_schedule()
        if inner_spec is None:
            return None
        return BatchSchedule(inner_spec.probabilities, True)

    def history_signature(self) -> tuple | None:
        """Identified by the shared inner protocol's own signature.

        Restarting is a deterministic transformation of the inner
        session stream, so a restart around a signed deterministic inner
        (e.g. a one-shot CD search) is itself trie-shareable; factory
        restarts (fresh randomness per attempt) inherit ``None``.
        """
        if self._shared_inner is None or not self.deterministic_sessions:
            return None
        inner_signature = self._shared_inner.history_signature()
        if inner_signature is None:
            return None
        return ("restart", inner_signature)


class _FallbackSession(PlayerSession):
    def __init__(
        self,
        primary: PlayerSession,
        make_fallback: Callable[[], PlayerSession],
        budget_rounds: int,
    ) -> None:
        self._primary: PlayerSession | None = primary
        self._make_fallback = make_fallback
        self._fallback: PlayerSession | None = None
        self._budget = budget_rounds
        self._round = 0

    def decide(self) -> bool:
        self._round += 1
        if self._fallback is None and self._round > self._budget:
            self._fallback = self._make_fallback()
        if self._fallback is not None:
            return self._fallback.decide()
        assert self._primary is not None
        try:
            return self._primary.decide()
        except ScheduleExhausted:
            # Primary gave up early (e.g. faulty advice): switch now.
            self._primary = None
            self._fallback = self._make_fallback()
            return self._fallback.decide()

    def observe(self, observation: Observation, *, transmitted: bool) -> None:
        if self._fallback is not None:
            self._fallback.observe(observation, transmitted=transmitted)
        elif self._primary is not None:
            self._primary.observe(observation, transmitted=transmitted)


class _FallbackBatchSessions(PlayerBatchSessions):
    """Array-state fallback: per-trial primary/fallback phase tracking.

    The batch counterpart of :class:`_FallbackSession`: each round the
    live rows split between the primary's batch sessions and the
    fallback's.  The round counter is global (rounds are synchronous, as
    in the scalar wrapper), so the budget switch hits every live trial
    at once; early switches - the primary's batch sessions reporting
    exhaustion, e.g. faulty advice pointing nowhere - flip individual
    rows, which then get their fallback decision *in the same round*,
    exactly like the scalar session's ``ScheduleExhausted`` catch.

    The scalar wrapper creates each trial's fallback session fresh *at
    its switch round*, so a trial's fallback schedule always starts from
    its own round 1.  Rows may switch at different rounds (a custom
    primary may exhaust rows unevenly), and batch-session state such as
    the scan's global round counter cannot represent per-row offsets -
    so rows are grouped into **cohorts** by switch round, one fallback
    batch-sessions object per cohort, created fresh when its rows
    switch.  In-repo primaries exhaust all rows together, giving at most
    two cohorts (early exhaustion + budget); the per-cohort split is
    what keeps the batch/scalar equivalence exact for any primary.
    """

    def __init__(
        self,
        primary: PlayerBatchSessions,
        make_fallback: Callable[[], PlayerBatchSessions],
        budget_rounds: int,
        trials: int,
        players: int,
    ) -> None:
        self._primary = primary
        self._make_fallback = make_fallback
        self._cohorts: list[PlayerBatchSessions] = []
        self._cohort_of = np.full(trials, -1, dtype=np.int64)  # -1: primary
        self._budget = budget_rounds
        self._players = players
        self._round = 0

    def _switch(self, rows: np.ndarray) -> None:
        """Move ``rows`` onto a fresh fallback cohort, created this round."""
        self._cohorts.append(self._make_fallback())
        self._cohort_of[rows] = len(self._cohorts) - 1

    def decide(self, live: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        self._round += 1
        decisions = np.zeros((live.size, self._players), dtype=bool)
        exhausted = np.zeros(live.size, dtype=bool)
        on_primary = self._cohort_of[live] < 0
        if self._round > self._budget:
            if on_primary.any():
                self._switch(live[on_primary])
        elif on_primary.any():
            primary_rows = live[on_primary]
            primary_decisions, primary_exhausted = self._primary.decide(
                primary_rows
            )
            decisions[on_primary] = primary_decisions
            if primary_exhausted.any():
                # Primary gave up early (e.g. faulty advice): switch now;
                # the fallback decides for these rows this same round.
                self._switch(primary_rows[primary_exhausted])
        for cohort, sessions in enumerate(self._cohorts):
            member = self._cohort_of[live] == cohort
            if not member.any():
                continue
            cohort_decisions, cohort_exhausted = sessions.decide(live[member])
            decisions[member] = cohort_decisions
            exhausted[member] = cohort_exhausted
        return decisions, exhausted

    def observe(
        self, live: np.ndarray, observations: np.ndarray, decisions: np.ndarray
    ) -> None:
        on_primary = self._cohort_of[live] < 0
        if on_primary.any():
            self._primary.observe(
                live[on_primary],
                observations[on_primary],
                decisions[on_primary],
            )
        for cohort, sessions in enumerate(self._cohorts):
            member = self._cohort_of[live] == cohort
            if member.any():
                sessions.observe(
                    live[member], observations[member], decisions[member]
                )


class FallbackPlayerProtocol(PlayerProtocol):
    """Primary player protocol with a budgeted switch to a fallback.

    All players share the same round counter (rounds are synchronous), so
    the switch happens simultaneously everywhere - no player is left
    running the primary while others fall back.

    Parameters
    ----------
    primary:
        The protocol to try first (typically an advice protocol).
    fallback:
        The protocol to switch to (typically decay or BEB); its
        ``advice_bits`` must be 0 - the fallback must not trust advice.
    budget_rounds:
        Rounds granted to the primary before the switch (typically its
        worst-case bound, so correct advice never triggers the fallback).
    """

    def __init__(
        self,
        primary: PlayerProtocol,
        fallback: PlayerProtocol,
        budget_rounds: int,
    ) -> None:
        if budget_rounds < 1:
            raise ValueError(f"budget must be >= 1, got {budget_rounds}")
        if fallback.advice_bits != 0:
            raise ValueError("fallback protocols must not require advice")
        self.primary = primary
        self.fallback = fallback
        self.budget_rounds = budget_rounds
        self.advice_bits = primary.advice_bits
        self.requires_collision_detection = (
            primary.requires_collision_detection
            or fallback.requires_collision_detection
        )
        self.name = f"{primary.name}->{fallback.name}@{budget_rounds}"

    def session(
        self,
        player_id: int,
        n: int,
        advice: str,
        rng: np.random.Generator | None = None,
    ) -> _FallbackSession:
        return _FallbackSession(
            self.primary.session(player_id, n, advice, rng=rng),
            lambda: self.fallback.session(player_id, n, "", rng=rng),
            self.budget_rounds,
        )

    def supports_batch_sessions(self) -> bool:
        """Batchable exactly when both halves are.

        The wrapper itself adds only per-trial phase bookkeeping, so the
        combinator vectorizes whenever the primary's and the fallback's
        own batch sessions exist - e.g. deterministic scan falling back to
        a per-player decay view, the ADVICE-ROBUST configuration.
        """
        return (
            self.primary.supports_batch_sessions()
            and self.fallback.supports_batch_sessions()
        )

    def supports_fused_sessions(self) -> bool:
        """Fusable only when both halves are randomness-free."""
        return (
            self.primary.supports_fused_sessions()
            and self.fallback.supports_fused_sessions()
        )

    def batch_sessions(
        self,
        player_ids: np.ndarray,
        n: int,
        advice: tuple[str, ...],
        rng: np.random.Generator | None = None,
    ) -> _FallbackBatchSessions | None:
        if not self.supports_batch_sessions():
            return None
        primary = self.primary.batch_sessions(player_ids, n, advice, rng=rng)
        assert primary is not None  # guaranteed by supports_batch_sessions
        trials = player_ids.shape[0]
        # The scalar wrapper hands the fallback an empty advice string
        # (it must not trust advice); mirror that per trial.  Creation is
        # deferred to the first switch, like the scalar lazy factory -
        # batch-session constructors consume no randomness, so laziness
        # is a convenience, not a correctness requirement.
        return _FallbackBatchSessions(
            primary,
            lambda: self.fallback.batch_sessions(
                player_ids, n, ("",) * trials, rng=rng
            ),
            self.budget_rounds,
            trials,
            player_ids.shape[1],
        )
