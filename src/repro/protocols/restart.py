"""Restart and fallback wrappers: one-shot algorithms made resilient.

Two generic combinators used across the expected-time and robustness
experiments:

* :class:`RestartProtocol` - when a one-shot uniform protocol exhausts
  without success, start a fresh session and keep going.  Turns every
  constant-probability one-shot result (Theorems 2.12/2.16) into an
  expected-time protocol with a geometric number of attempts - the simple
  restart strategy the paper's footnote 6 contrasts with cleverer cycling
  (which the paper leaves open, and so do we: this wrapper is measured,
  not analysed).

* :class:`FallbackPlayerProtocol` - run a (possibly advice-trusting)
  player protocol for a fixed budget; if it fails - e.g. because faulty
  advice pointed nowhere - switch every player to a fallback protocol.
  The robustness repair for Section 3.2's deterministic protocols: with
  failure probability ``f`` and fallback cost ``C``, the expected cost is
  ``(1-f) * fast + f * (budget + C)``.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..core.feedback import Observation
from ..core.protocol import (
    BatchSchedule,
    PlayerProtocol,
    PlayerSession,
    ScheduleExhausted,
    UniformProtocol,
    UniformSession,
)

__all__ = ["RestartProtocol", "FallbackPlayerProtocol"]


class _RestartSession(UniformSession):
    def __init__(self, factory: Callable[[], UniformSession]) -> None:
        self._factory = factory
        self._inner = factory()
        self.attempts = 1

    def next_probability(self) -> float:
        try:
            return self._inner.next_probability()
        except ScheduleExhausted:
            self._inner = self._factory()
            self.attempts += 1
            return self._inner.next_probability()

    def observe(self, observation: Observation) -> None:
        self._inner.observe(observation)


class RestartProtocol(UniformProtocol):
    """Re-run a one-shot uniform protocol until the engine stops it.

    Wraps either a protocol instance (sessions restart from the same
    protocol) or a zero-argument factory (each attempt may rebuild the
    protocol, e.g. with fresh randomness).
    """

    def __init__(
        self,
        inner: UniformProtocol | Callable[[], UniformProtocol],
        *,
        name: str | None = None,
    ) -> None:
        if isinstance(inner, UniformProtocol):
            self._factory: Callable[[], UniformProtocol] = lambda: inner
            self._shared_inner: UniformProtocol | None = inner
            # Restarted sessions are only as deterministic as the inner
            # protocol's own sessions.
            self.deterministic_sessions = inner.deterministic_sessions
            base = inner
        else:
            self._factory = inner
            # Each attempt may rebuild the protocol with fresh randomness,
            # so restarted sessions are not deterministic functions of the
            # observation history: keep such wrappers on the scalar path.
            self._shared_inner = None
            self.deterministic_sessions = False
            base = inner()
        self.requires_collision_detection = base.requires_collision_detection
        self.name = name or f"restart({base.name})"

    def session(self) -> _RestartSession:
        return _RestartSession(lambda: self._factory().session())

    def batch_schedule(self) -> BatchSchedule | None:
        """Restarting a shared oblivious one-shot is a cycling schedule."""
        if self._shared_inner is None:
            return None
        inner_spec = self._shared_inner.batch_schedule()
        if inner_spec is None:
            return None
        return BatchSchedule(inner_spec.probabilities, True)


class _FallbackSession(PlayerSession):
    def __init__(
        self,
        primary: PlayerSession,
        make_fallback: Callable[[], PlayerSession],
        budget_rounds: int,
    ) -> None:
        self._primary: PlayerSession | None = primary
        self._make_fallback = make_fallback
        self._fallback: PlayerSession | None = None
        self._budget = budget_rounds
        self._round = 0

    def decide(self) -> bool:
        self._round += 1
        if self._fallback is None and self._round > self._budget:
            self._fallback = self._make_fallback()
        if self._fallback is not None:
            return self._fallback.decide()
        assert self._primary is not None
        try:
            return self._primary.decide()
        except ScheduleExhausted:
            # Primary gave up early (e.g. faulty advice): switch now.
            self._primary = None
            self._fallback = self._make_fallback()
            return self._fallback.decide()

    def observe(self, observation: Observation, *, transmitted: bool) -> None:
        if self._fallback is not None:
            self._fallback.observe(observation, transmitted=transmitted)
        elif self._primary is not None:
            self._primary.observe(observation, transmitted=transmitted)


class FallbackPlayerProtocol(PlayerProtocol):
    """Primary player protocol with a budgeted switch to a fallback.

    All players share the same round counter (rounds are synchronous), so
    the switch happens simultaneously everywhere - no player is left
    running the primary while others fall back.

    Parameters
    ----------
    primary:
        The protocol to try first (typically an advice protocol).
    fallback:
        The protocol to switch to (typically decay or BEB); its
        ``advice_bits`` must be 0 - the fallback must not trust advice.
    budget_rounds:
        Rounds granted to the primary before the switch (typically its
        worst-case bound, so correct advice never triggers the fallback).
    """

    def __init__(
        self,
        primary: PlayerProtocol,
        fallback: PlayerProtocol,
        budget_rounds: int,
    ) -> None:
        if budget_rounds < 1:
            raise ValueError(f"budget must be >= 1, got {budget_rounds}")
        if fallback.advice_bits != 0:
            raise ValueError("fallback protocols must not require advice")
        self.primary = primary
        self.fallback = fallback
        self.budget_rounds = budget_rounds
        self.advice_bits = primary.advice_bits
        self.requires_collision_detection = (
            primary.requires_collision_detection
            or fallback.requires_collision_detection
        )
        self.name = f"{primary.name}->{fallback.name}@{budget_rounds}"

    def session(
        self,
        player_id: int,
        n: int,
        advice: str,
        rng: np.random.Generator | None = None,
    ) -> _FallbackSession:
        return _FallbackSession(
            self.primary.session(player_id, n, advice, rng=rng),
            lambda: self.fallback.session(player_id, n, "", rng=rng),
            self.budget_rounds,
        )
