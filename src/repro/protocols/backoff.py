"""Binary exponential backoff: the classical practical comparator.

Not an algorithm from the paper, but the contention-resolution strategy
deployed in real MACs (Ethernet, 802.11) and the natural "what practice
does today" baseline for the example scenarios.  Each player keeps a
contention window ``w``; every round it transmits with probability
``1/w``; on a detected collision it doubles ``w`` (up to a cap) and on
silence it halves ``w`` (down to the floor).  Requires collision
detection - without it a player cannot tell its window is too small.

The protocol is *non-uniform* (windows drift apart across players once
their transmission histories differ), so it exercises the per-player
simulation path and provides a non-uniform contrast to the paper's
uniform-algorithm assumption.
"""

from __future__ import annotations

import numpy as np

from ..core.feedback import Observation
from ..core.protocol import PlayerProtocol, PlayerSession, ProtocolError

__all__ = ["BinaryExponentialBackoff"]


class _BackoffSession(PlayerSession):
    def __init__(
        self,
        rng: np.random.Generator,
        initial_window: float,
        min_window: float,
        max_window: float,
    ) -> None:
        self._rng = rng
        self._window = initial_window
        self._min_window = min_window
        self._max_window = max_window

    def decide(self) -> bool:
        return bool(self._rng.random() < 1.0 / self._window)

    def observe(self, observation: Observation, *, transmitted: bool) -> None:
        del transmitted
        if observation is Observation.QUIET:
            raise ProtocolError(
                "binary exponential backoff requires collision detection"
            )
        if observation is Observation.COLLISION:
            self._window = min(self._window * 2.0, self._max_window)
        else:  # silence: the channel is under-used, be more aggressive
            self._window = max(self._window / 2.0, self._min_window)

    @property
    def window(self) -> float:
        """Current contention window (diagnostics)."""
        return self._window


class BinaryExponentialBackoff(PlayerProtocol):
    """Multiplicative increase / multiplicative decrease backoff.

    Parameters
    ----------
    initial_window:
        Starting contention window (default 2: transmit w.p. 1/2).
    max_window:
        Upper cap preventing unbounded starvation after long collision
        bursts (default ``2^20``).
    """

    requires_collision_detection = True
    advice_bits = 0

    def __init__(
        self, initial_window: float = 2.0, max_window: float = float(2**20)
    ) -> None:
        if initial_window < 1.0:
            raise ValueError("initial window must be >= 1")
        if max_window < initial_window:
            raise ValueError("max window must be >= initial window")
        self.initial_window = float(initial_window)
        self.max_window = float(max_window)
        self.name = f"beb(w0={initial_window:g})"

    def session(
        self,
        player_id: int,
        n: int,
        advice: str,
        rng: np.random.Generator | None = None,
    ) -> _BackoffSession:
        del player_id, n, advice
        if rng is None:
            raise ProtocolError(
                "binary exponential backoff is randomized and needs the "
                "simulation rng"
            )
        return _BackoffSession(
            rng, self.initial_window, min_window=1.0, max_window=self.max_window
        )
