"""Binary exponential backoff: the classical practical comparator.

Not an algorithm from the paper, but the contention-resolution strategy
deployed in real MACs (Ethernet, 802.11) and the natural "what practice
does today" baseline for the example scenarios.  Each player keeps a
contention window ``w``; every round it transmits with probability
``1/w``; on a detected collision it doubles ``w`` (up to a cap) and on
silence it halves ``w`` (down to the floor).  Requires collision
detection - without it a player cannot tell its window is too small.

The protocol is *non-uniform* (windows drift apart across players once
their transmission histories differ), so it exercises the per-player
simulation path and provides a non-uniform contrast to the paper's
uniform-algorithm assumption.
"""

from __future__ import annotations

import numpy as np

from ..core.feedback import Observation
from ..core.protocol import (
    OBS_COLLISION,
    OBS_QUIET,
    PlayerBatchSessions,
    PlayerProtocol,
    PlayerSession,
    ProtocolError,
)

__all__ = ["BinaryExponentialBackoff"]


class _BackoffSession(PlayerSession):
    def __init__(
        self,
        rng: np.random.Generator,
        initial_window: float,
        min_window: float,
        max_window: float,
    ) -> None:
        self._rng = rng
        self._window = initial_window
        self._min_window = min_window
        self._max_window = max_window

    def decide(self) -> bool:
        return bool(self._rng.random() < 1.0 / self._window)

    def observe(self, observation: Observation, *, transmitted: bool) -> None:
        del transmitted
        if observation is Observation.QUIET:
            raise ProtocolError(
                "binary exponential backoff requires collision detection"
            )
        if observation is Observation.COLLISION:
            self._window = min(self._window * 2.0, self._max_window)
        else:  # silence: the channel is under-used, be more aggressive
            self._window = max(self._window / 2.0, self._min_window)

    @property
    def window(self) -> float:
        """Current contention window (diagnostics)."""
        return self._window


class _BackoffBatchSessions(PlayerBatchSessions):
    """All trials' contention windows as one ``(trials, players)`` array.

    The scalar session's multiplicative window updates become masked
    vector operations; each round's decisions are one uniform draw over
    the live rows (``rng.random(shape) < 1/window``), so retired trials
    stop consuming randomness exactly as dropped scalar sessions do.
    """

    def __init__(
        self,
        mask: np.ndarray,
        rng: np.random.Generator,
        initial_window: float,
        min_window: float,
        max_window: float,
    ) -> None:
        self._mask = mask
        self._rng = rng
        self._windows = np.full(mask.shape, initial_window, dtype=float)
        self._min_window = min_window
        self._max_window = max_window

    def decide(self, live: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        draws = self._rng.random((live.size, self._mask.shape[1]))
        decisions = (draws < 1.0 / self._windows[live]) & self._mask[live]
        return decisions, np.zeros(live.size, dtype=bool)

    def observe(
        self, live: np.ndarray, observations: np.ndarray, decisions: np.ndarray
    ) -> None:
        del decisions
        if (observations == OBS_QUIET).any():
            raise ProtocolError(
                "binary exponential backoff requires collision detection"
            )
        windows = self._windows[live]
        collided = observations == OBS_COLLISION
        windows[collided] = np.minimum(
            windows[collided] * 2.0, self._max_window
        )
        windows[~collided] = np.maximum(
            windows[~collided] / 2.0, self._min_window
        )
        self._windows[live] = windows


class BinaryExponentialBackoff(PlayerProtocol):
    """Multiplicative increase / multiplicative decrease backoff.

    Parameters
    ----------
    initial_window:
        Starting contention window (default 2: transmit w.p. 1/2).
    max_window:
        Upper cap preventing unbounded starvation after long collision
        bursts (default ``2^20``).
    """

    requires_collision_detection = True
    advice_bits = 0

    def __init__(
        self, initial_window: float = 2.0, max_window: float = float(2**20)
    ) -> None:
        if initial_window < 1.0:
            raise ValueError("initial window must be >= 1")
        if max_window < initial_window:
            raise ValueError("max window must be >= initial window")
        self.initial_window = float(initial_window)
        self.max_window = float(max_window)
        self.name = f"beb(w0={initial_window:g})"

    def session(
        self,
        player_id: int,
        n: int,
        advice: str,
        rng: np.random.Generator | None = None,
    ) -> _BackoffSession:
        del player_id, n, advice
        if rng is None:
            raise ProtocolError(
                "binary exponential backoff is randomized and needs the "
                "simulation rng"
            )
        return _BackoffSession(
            rng, self.initial_window, min_window=1.0, max_window=self.max_window
        )

    def supports_batch_sessions(self) -> bool:
        return True

    def batch_sessions(
        self,
        player_ids: np.ndarray,
        n: int,
        advice: tuple[str, ...],
        rng: np.random.Generator | None = None,
    ) -> _BackoffBatchSessions:
        del n, advice  # identity- and advice-oblivious, like session()
        if rng is None:
            raise ProtocolError(
                "binary exponential backoff is randomized and needs the "
                "simulation rng"
            )
        return _BackoffBatchSessions(
            player_ids >= 0,
            rng,
            self.initial_window,
            min_window=1.0,
            max_window=self.max_window,
        )
