"""Willard's log-logarithmic selection protocol [22].

The classical CD baseline: binary search over the ``ceil(log2 n)``
geometric size guesses using collision/silence as the comparison oracle,
solving contention resolution in ``O(log log n)`` expected rounds - the
tight bound for uniform CD algorithms (paper Section 1.1; the paper's
Theorem 2.8 re-derives the matching lower bound information-theoretically).

This is a one-phase instance of the shared
:class:`~repro.protocols.searching.PhasedSearchProtocol` engine; the
Section 2.6 prediction algorithm and the Theorem 3.7 advice protocol are
the multi-phase and restricted-range instances of the same engine.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..infotheory.condense import num_ranges
from .searching import PhasedSearchProtocol

__all__ = ["WillardProtocol"]


class WillardProtocol(PhasedSearchProtocol):
    """Binary search over size ranges with collision feedback.

    Parameters
    ----------
    n:
        Maximum network size; the search space is ``L(n) = {1..ceil(log2 n)}``
        unless ``ranges`` restricts it.
    ranges:
        Optional ascending subset of range indices to search (used by the
        advice-augmented variant of Theorem 3.7).
    repetitions, restart, handle_k1:
        As in :class:`~repro.protocols.searching.PhasedSearchProtocol`.
    """

    def __init__(
        self,
        n: int,
        *,
        ranges: Sequence[int] | None = None,
        repetitions: int = 3,
        restart: bool = True,
        handle_k1: bool = False,
    ) -> None:
        if n < 2:
            raise ValueError(f"n must be >= 2, got {n}")
        self.n = n
        search_space = (
            list(ranges) if ranges is not None else list(range(1, num_ranges(n) + 1))
        )
        label = (
            f"willard(n={n})"
            if ranges is None
            else f"willard(n={n},|ranges|={len(search_space)})"
        )
        super().__init__(
            [search_space],
            repetitions=repetitions,
            restart=restart,
            handle_k1=handle_k1,
            name=label,
        )
