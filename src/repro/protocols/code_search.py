"""The CD prediction algorithm of Section 2.6 (code-class binary search).

Given predicted distribution ``Y``:

1. build an optimal prefix code ``f`` for ``c(Y)`` (Huffman);
2. group ranges into classes ``pi_l`` by codeword length ``l``;
3. search the classes in order of increasing ``l``; within class ``pi_l``
   run the Willard-style collision-detector binary search over the class's
   ranges, smallest to largest.

Intuition: the prediction thinks short-codeword ranges are likely, so they
are probed first, and a class of ``2^l``-many ranges costs only ``O(l)``
search rounds - giving the ``O(S^2)`` total for a true range whose
codeword has length ``S`` (Lemma 2.17), and via Theorem 2.3's sandwich the
``O((H(c(X)) + D_KL(c(X)||c(Y)))^2)`` budget of Theorem 2.16 with constant
probability.  Corollary 2.18 specialises to ``O(H^2)`` for ``Y = X``.

As with sorted probing, the paper's analysis is one-shot; a restarting
variant is provided for expected-time measurements.
"""

from __future__ import annotations

from ..core.predictions import Prediction
from ..infotheory.distributions import SizeDistribution
from .searching import PhasedSearchProtocol

__all__ = ["CodeSearchProtocol"]


class CodeSearchProtocol(PhasedSearchProtocol):
    """Huffman-length-class phases, binary searched with collision feedback.

    Parameters
    ----------
    prediction:
        The predicted distribution ``Y``.
    repetitions:
        Odd probes-per-comparison for the noisy binary search (default 3).
    one_shot:
        ``True`` (default) for the Theorem 2.16 single sweep over all
        classes; ``False`` restarts from the shortest class after an
        unsuccessful sweep.
    handle_k1:
        Prepend an all-transmit round to solve ``k = 1``.
    support_only:
        Drop zero-predicted-probability ranges from the search phases.
        Natural for the cycling expected-time variant with support-floored
        predictions; the one-shot Theorem 2.16 form keeps all ranges so a
        ruled-out true range is still eventually probed.
    """

    def __init__(
        self,
        prediction: Prediction | SizeDistribution,
        *,
        repetitions: int = 3,
        one_shot: bool = True,
        handle_k1: bool = False,
        support_only: bool = False,
    ) -> None:
        if isinstance(prediction, SizeDistribution):
            prediction = Prediction(prediction)
        self.prediction = prediction
        classes = prediction.code_length_classes()
        phases = [classes[length] for length in sorted(classes)]
        if support_only:
            condensed = prediction.condensed
            phases = [
                [i for i in phase if condensed.probability(i) > 0.0]
                for phase in phases
            ]
            phases = [phase for phase in phases if phase]
            if not phases:
                raise ValueError("prediction has empty support")
        super().__init__(
            phases,
            repetitions=repetitions,
            restart=not one_shot,
            handle_k1=handle_k1,
            name=f"code-search(n={prediction.n}, "
            f"{'one-shot' if one_shot else 'cycling'})",
        )

    def length_classes(self) -> dict[int, list[int]]:
        """The classes ``pi_l``: codeword length -> ranges of that length."""
        return self.prediction.code_length_classes()
