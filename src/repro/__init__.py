"""repro: a reproduction of "Contention Resolution with Predictions".

Gilbert, Newport, Vaidya, Weaver - PODC 2021 (arXiv:2105.12706).

The package implements the paper's two prediction models and everything
they stand on:

* **network-size predictions** (Section 2): the sorted-probing no-CD
  algorithm (Theorem 2.12) and the Huffman-code-class CD search
  (Theorem 2.16), with entropy/KL budgets, plus the complete
  lower-bound machinery (range finding, RF-Construction, tree
  construction, target-distance coding);
* **perfect advice** (Section 3): the four tight advice protocols and the
  strongly-selective-family / non-interactive lower-bound apparatus;
* substrates: a synchronous multiple-access channel simulator (with and
  without collision detection) and an information-theory toolkit
  (condensed distributions, entropy/KL, Huffman and Shannon codes);
* a measurement harness and an experiment registry regenerating every
  cell of the paper's Tables 1 and 2 (see DESIGN.md / EXPERIMENTS.md).

Quick start::

    import numpy as np
    from repro import (
        SizeDistribution, Prediction, SortedProbingProtocol,
        run_uniform, without_collision_detection,
    )

    truth = SizeDistribution.bimodal(2**16, low_size=8, high_size=900)
    protocol = SortedProbingProtocol(Prediction(truth))
    rng = np.random.default_rng(7)
    result = run_uniform(
        protocol, k=truth.sample(rng), rng=rng,
        channel=without_collision_detection(),
    )
    print(result.solved, result.rounds)
"""

from .analysis import (
    ProportionEstimate,
    RoundsEstimate,
    Summary,
    estimate_player_rounds,
    estimate_success_within,
    estimate_uniform_rounds,
    schedule_solve_time,
)
from .channel import (
    Channel,
    ExecutionResult,
    RandomAdversary,
    run_players,
    run_uniform,
    with_collision_detection,
    without_collision_detection,
)
from .core import (
    AdviceFunction,
    BudgetReport,
    Feedback,
    FullIdAdvice,
    MinIdPrefixAdvice,
    NullAdvice,
    Observation,
    Prediction,
    ProbabilitySchedule,
    RangeBlockAdvice,
    ScheduleProtocol,
    UniformProtocol,
)
from .experiments import (
    ExperimentConfig,
    ExperimentResult,
    experiment_ids,
    run_all,
    run_experiment,
)
from .infotheory import (
    CondensedDistribution,
    PrefixCode,
    SizeDistribution,
    entropy,
    huffman_code,
    kl_divergence,
    mix_with_uniform,
    num_ranges,
    range_of_size,
    shift_ranges,
)
from .learning import (
    DecayingHistogramLearner,
    HistogramLearner,
    SizePredictor,
    SlidingWindowLearner,
    run_online,
)
from .scenarios import (
    ScenarioResult,
    ScenarioSpec,
    Sweep,
    SweepResult,
    run_scenario,
    run_sweep,
)
from .protocols import (
    BinaryExponentialBackoff,
    CodeSearchProtocol,
    DecayProtocol,
    DeterministicScanProtocol,
    DeterministicTreeDescentProtocol,
    FallbackPlayerProtocol,
    FixedProbabilityProtocol,
    RestartProtocol,
    SortedProbingProtocol,
    TruncatedDecayProtocol,
    UniformAsPlayerProtocol,
    WillardProtocol,
    truncated_willard_protocol,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # distributions and information theory
    "SizeDistribution",
    "CondensedDistribution",
    "PrefixCode",
    "entropy",
    "kl_divergence",
    "huffman_code",
    "num_ranges",
    "range_of_size",
    "mix_with_uniform",
    "shift_ranges",
    # core abstractions
    "Prediction",
    "BudgetReport",
    "Feedback",
    "Observation",
    "ProbabilitySchedule",
    "ScheduleProtocol",
    "UniformProtocol",
    "AdviceFunction",
    "NullAdvice",
    "MinIdPrefixAdvice",
    "RangeBlockAdvice",
    "FullIdAdvice",
    # channel
    "Channel",
    "with_collision_detection",
    "without_collision_detection",
    "run_uniform",
    "run_players",
    "ExecutionResult",
    "RandomAdversary",
    # protocols
    "DecayProtocol",
    "WillardProtocol",
    "FixedProbabilityProtocol",
    "BinaryExponentialBackoff",
    "SortedProbingProtocol",
    "CodeSearchProtocol",
    "DeterministicScanProtocol",
    "DeterministicTreeDescentProtocol",
    "TruncatedDecayProtocol",
    "truncated_willard_protocol",
    "RestartProtocol",
    "FallbackPlayerProtocol",
    "UniformAsPlayerProtocol",
    # learning
    "SizePredictor",
    "HistogramLearner",
    "DecayingHistogramLearner",
    "SlidingWindowLearner",
    "run_online",
    # analysis
    "Summary",
    "ProportionEstimate",
    "RoundsEstimate",
    "estimate_uniform_rounds",
    "estimate_success_within",
    "estimate_player_rounds",
    "schedule_solve_time",
    # experiments
    "ExperimentConfig",
    "ExperimentResult",
    "experiment_ids",
    "run_experiment",
    "run_all",
    # scenarios
    "ScenarioSpec",
    "ScenarioResult",
    "run_scenario",
    "Sweep",
    "SweepResult",
    "run_sweep",
]
