"""Concrete online size-distribution estimators.

Three classical estimators, each suited to a different environment:

* :class:`HistogramLearner` - additive-smoothed range frequencies; the
  right model for *stationary* environments (consistency: divergence to
  the truth tends to 0 as observations accumulate);
* :class:`DecayingHistogramLearner` - exponentially discounted counts;
  tracks *drifting* environments at the price of a variance floor;
* :class:`SlidingWindowLearner` - hard window of the last ``W``
  observations; the simplest forgetting scheme, handy as a baseline.

All emit predictions over condensed ranges with an additive-smoothing
prior, so every range keeps positive predicted mass (finite divergence
from any truth - a prediction of zero on the true range would stall the
paper's probe orders indefinitely; compare Theorem 2.12's infinite budget
at infinite divergence).
"""

from __future__ import annotations

from collections import deque

from ..infotheory.condense import num_ranges, range_of_size
from ..infotheory.distributions import SizeDistribution
from ..infotheory.perturb import from_condensed_profile
from .base import SizePredictor

__all__ = [
    "HistogramLearner",
    "DecayingHistogramLearner",
    "SlidingWindowLearner",
]


class HistogramLearner(SizePredictor):
    """Additive-smoothed range-frequency estimator (stationary worlds).

    Maintains a count per condensed range; predicts
    ``(count_i + smoothing) / (total + L * smoothing)``.  With i.i.d.
    observations the predicted condensed distribution converges to the
    truth (law of large numbers), so the Theorem 2.12/2.16 divergence
    terms vanish - the "improves for free" regime.

    Parameters
    ----------
    n:
        Board size.
    smoothing:
        Laplace prior weight per range (default 1.0).  Must be positive so
        predictions dominate every truth.
    """

    def __init__(self, n: int, *, smoothing: float = 1.0) -> None:
        super().__init__(n)
        if smoothing <= 0:
            raise ValueError(f"smoothing must be > 0, got {smoothing}")
        self.smoothing = smoothing
        self._counts = [0.0] * num_ranges(n)

    def _update(self, k: int) -> None:
        self._counts[range_of_size(k) - 1] += 1.0

    def predict(self) -> SizeDistribution:
        weights = [count + self.smoothing for count in self._counts]
        return from_condensed_profile(
            self.n,
            [weight / sum(weights) for weight in weights],
            name=f"histogram({self._observations} obs)",
        )


class DecayingHistogramLearner(SizePredictor):
    """Exponentially discounted range frequencies (drifting worlds).

    Every observation first multiplies all counts by ``decay < 1`` then
    increments the observed range, giving an effective memory of roughly
    ``1 / (1 - decay)`` observations.  Adapts to drift within that horizon
    but never converges exactly (the discount leaves residual variance) -
    the classic bias/variance dial of non-stationary estimation.
    """

    def __init__(
        self, n: int, *, decay: float = 0.98, smoothing: float = 1.0
    ) -> None:
        super().__init__(n)
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        if smoothing <= 0:
            raise ValueError(f"smoothing must be > 0, got {smoothing}")
        self.decay = decay
        self.smoothing = smoothing
        self._counts = [0.0] * num_ranges(n)

    def _update(self, k: int) -> None:
        self._counts = [count * self.decay for count in self._counts]
        self._counts[range_of_size(k) - 1] += 1.0

    def predict(self) -> SizeDistribution:
        weights = [count + self.smoothing for count in self._counts]
        return from_condensed_profile(
            self.n,
            [weight / sum(weights) for weight in weights],
            name=f"decaying-histogram({self._observations} obs)",
        )

    @property
    def effective_memory(self) -> float:
        """Approximate number of observations the estimator remembers."""
        return 1.0 / (1.0 - self.decay)


class SlidingWindowLearner(SizePredictor):
    """Frequencies over the last ``window`` observations."""

    def __init__(self, n: int, *, window: int = 64, smoothing: float = 1.0) -> None:
        super().__init__(n)
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if smoothing <= 0:
            raise ValueError(f"smoothing must be > 0, got {smoothing}")
        self.window = window
        self.smoothing = smoothing
        self._recent: deque[int] = deque(maxlen=window)

    def _update(self, k: int) -> None:
        self._recent.append(range_of_size(k))

    def predict(self) -> SizeDistribution:
        counts = [0.0] * num_ranges(self.n)
        for range_index in self._recent:
            counts[range_index - 1] += 1.0
        weights = [count + self.smoothing for count in counts]
        return from_condensed_profile(
            self.n,
            [weight / sum(weights) for weight in weights],
            name=f"window({len(self._recent)}/{self.window})",
        )
