"""Learned size predictors and the online observe-predict-resolve loop.

The substrate behind the paper's motivating story: predictions come from
models fit on observed history, and the algorithms' cost degrades with the
model's divergence (Theorems 2.12/2.16) - so as the model converges, the
protocols "improve for free".
"""

from .base import SizePredictor
from .estimators import (
    DecayingHistogramLearner,
    HistogramLearner,
    SlidingWindowLearner,
)
from .online import (
    OnlineRecord,
    OnlineReport,
    prediction_protocol_for,
    run_online,
)

__all__ = [
    "SizePredictor",
    "HistogramLearner",
    "DecayingHistogramLearner",
    "SlidingWindowLearner",
    "OnlineRecord",
    "OnlineReport",
    "run_online",
    "prediction_protocol_for",
]
