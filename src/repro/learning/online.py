"""The full predict-resolve-learn loop, simulated end to end.

This is the deployment story the paper's introduction sketches: a learned
model watches the environment, each contention-resolution instance uses
the current prediction, and the realised size feeds back into the model.
:func:`run_online` simulates that loop and reports per-instance rounds,
the prediction divergence trajectory, and comparisons against the
know-nothing baseline (decay / Willard) and the clairvoyant oracle
(prediction = truth) - i.e. the empirical "regret" of learning.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..channel.batch import is_batchable, run_uniform_batch
from ..channel.channel import Channel
from ..channel.simulator import run_uniform
from ..core.predictions import Prediction
from ..core.protocol import UniformProtocol
from ..infotheory.distributions import SizeDistribution
from ..protocols.code_search import CodeSearchProtocol
from ..protocols.decay import DecayProtocol
from ..protocols.sorted_probing import SortedProbingProtocol
from ..protocols.willard import WillardProtocol
from .base import SizePredictor

__all__ = ["OnlineRecord", "OnlineReport", "run_online", "prediction_protocol_for"]


@dataclass(frozen=True)
class OnlineRecord:
    """One instance of the online loop."""

    instance: int
    k: int
    divergence_bits: float
    learner_rounds: int
    oracle_rounds: int
    baseline_rounds: int


@dataclass
class OnlineReport:
    """Aggregate of an online run."""

    records: list[OnlineRecord] = field(default_factory=list)

    def mean_rounds(self, *, first: int | None = None, last: int | None = None) -> float:
        """Mean learner rounds over a slice of instances."""
        selected = self.records
        if first is not None:
            selected = selected[:first]
        if last is not None:
            selected = selected[-last:]
        if not selected:
            raise ValueError("no records in the requested slice")
        return float(np.mean([record.learner_rounds for record in selected]))

    def mean_oracle_rounds(self) -> float:
        return float(np.mean([record.oracle_rounds for record in self.records]))

    def mean_baseline_rounds(self) -> float:
        return float(np.mean([record.baseline_rounds for record in self.records]))

    def final_divergence(self) -> float:
        if not self.records:
            raise ValueError("empty report")
        return self.records[-1].divergence_bits

    def learning_gap(self, tail: int) -> float:
        """Mean learner excess over the oracle, over the last ``tail``
        instances - the converged regret per instance."""
        selected = self.records[-tail:]
        return float(
            np.mean(
                [
                    record.learner_rounds - record.oracle_rounds
                    for record in selected
                ]
            )
        )


def prediction_protocol_for(
    prediction: Prediction, channel: Channel
) -> UniformProtocol:
    """The paper's prediction protocol matching the channel's capability.

    Cycling variants (the loop measures expected rounds, not one-shot
    success), full range support (the learner smooths, so every range has
    positive mass anyway).
    """
    if channel.collision_detection:
        return CodeSearchProtocol(prediction, one_shot=False)
    return SortedProbingProtocol(prediction, one_shot=False)


def run_online(
    truth_for_instance: Callable[[int], SizeDistribution],
    learner: SizePredictor,
    channel: Channel,
    rng: np.random.Generator,
    *,
    instances: int,
    max_rounds: int = 100_000,
    batch: bool = True,
) -> OnlineReport:
    """Simulate the observe-predict-resolve loop for ``instances`` rounds.

    ``truth_for_instance(i)`` returns the true size distribution of
    instance ``i`` (constant for stationary environments, varying for
    drift scenarios).  For each instance: draw ``k``, run the learner's
    prediction protocol, run the clairvoyant oracle (prediction = current
    truth) and the know-nothing baseline on the *same* ``k``, then feed
    ``k`` back to the learner.

    With ``batch`` (default) the comparison arms run on the vectorized
    engine: the learner loop stays sequential (its protocol depends on
    everything observed so far), but the oracle arm only depends on the
    instance's truth and the baseline arm on nothing, so those executions
    are batched - one lockstep run per distinct truth distribution plus
    one for the baseline - instead of two scalar runs per instance.
    """
    if instances < 1:
        raise ValueError(f"instances must be >= 1, got {instances}")
    if not batch:
        return _run_online_scalar(
            truth_for_instance, learner, channel, rng,
            instances=instances, max_rounds=max_rounds,
        )
    n = learner.n
    baseline: UniformProtocol = (
        WillardProtocol(n) if channel.collision_detection else DecayProtocol(n)
    )
    truths: list[SizeDistribution] = []
    ks = np.empty(instances, dtype=np.int64)
    for instance in range(instances):
        truth = truth_for_instance(instance)
        if truth.n != n:
            raise ValueError("truth distribution board size differs from learner")
        truths.append(truth)
        ks[instance] = truth.sample(rng)

    # Sequential arm: predict -> resolve -> observe, exactly as deployed.
    divergences = np.empty(instances, dtype=float)
    learner_rounds = np.empty(instances, dtype=np.int64)
    for instance in range(instances):
        predicted = learner.predict()
        divergences[instance] = (
            truths[instance].condense().kl_divergence(predicted.condense())
        )
        learner_rounds[instance] = run_uniform(
            prediction_protocol_for(Prediction(predicted), channel),
            int(ks[instance]), rng, channel=channel, max_rounds=max_rounds,
        ).rounds
        learner.observe(int(ks[instance]))

    oracle_rounds = np.empty(instances, dtype=np.int64)
    for group_truth, members in _group_by_identity(truths):
        protocol = prediction_protocol_for(Prediction(group_truth), channel)
        oracle_rounds[members] = _arm_rounds(
            protocol, ks[members], rng, channel, max_rounds
        )
    baseline_rounds = _arm_rounds(baseline, ks, rng, channel, max_rounds)

    report = OnlineReport()
    for instance in range(instances):
        report.records.append(
            OnlineRecord(
                instance=instance,
                k=int(ks[instance]),
                divergence_bits=float(divergences[instance]),
                learner_rounds=int(learner_rounds[instance]),
                oracle_rounds=int(oracle_rounds[instance]),
                baseline_rounds=int(baseline_rounds[instance]),
            )
        )
    return report


def _group_by_identity(
    truths: list[SizeDistribution],
) -> list[tuple[SizeDistribution, np.ndarray]]:
    """Instance indices grouped by truth object, in first-appearance order.

    Stationary environments return one object for every instance (one
    group, one batch); drift scenarios return a handful.  Grouping is by
    identity, not equality - a fresh-but-equal object per instance only
    costs smaller batches, never correctness.
    """
    order: list[int] = []
    members: dict[int, list[int]] = {}
    representative: dict[int, SizeDistribution] = {}
    for index, truth in enumerate(truths):
        key = id(truth)
        if key not in members:
            order.append(key)
            members[key] = []
            representative[key] = truth
        members[key].append(index)
    return [
        (representative[key], np.asarray(members[key], dtype=np.intp))
        for key in order
    ]


def _arm_rounds(
    protocol: UniformProtocol,
    ks: np.ndarray,
    rng: np.random.Generator,
    channel: Channel,
    max_rounds: int,
) -> np.ndarray:
    """Rounds for one comparison arm: batched when possible, else scalar."""
    if is_batchable(protocol):
        return run_uniform_batch(
            protocol, ks, rng, channel=channel, max_rounds=max_rounds
        ).rounds
    return np.asarray(
        [
            run_uniform(
                protocol, int(k), rng, channel=channel, max_rounds=max_rounds
            ).rounds
            for k in ks
        ],
        dtype=np.int64,
    )


def _run_online_scalar(
    truth_for_instance: Callable[[int], SizeDistribution],
    learner: SizePredictor,
    channel: Channel,
    rng: np.random.Generator,
    *,
    instances: int,
    max_rounds: int,
) -> OnlineReport:
    """The reference per-instance loop (``batch=False``), kept verbatim."""
    report = OnlineReport()
    n = learner.n
    baseline: UniformProtocol = (
        WillardProtocol(n) if channel.collision_detection else DecayProtocol(n)
    )
    for instance in range(instances):
        truth = truth_for_instance(instance)
        if truth.n != n:
            raise ValueError("truth distribution board size differs from learner")
        k = truth.sample(rng)
        predicted = learner.predict()
        divergence = truth.condense().kl_divergence(predicted.condense())

        learner_result = run_uniform(
            prediction_protocol_for(Prediction(predicted), channel),
            k, rng, channel=channel, max_rounds=max_rounds,
        )
        oracle_result = run_uniform(
            prediction_protocol_for(Prediction(truth), channel),
            k, rng, channel=channel, max_rounds=max_rounds,
        )
        baseline_result = run_uniform(
            baseline, k, rng, channel=channel, max_rounds=max_rounds
        )
        report.records.append(
            OnlineRecord(
                instance=instance,
                k=k,
                divergence_bits=divergence,
                learner_rounds=learner_result.rounds,
                oracle_rounds=oracle_result.rounds,
                baseline_rounds=baseline_result.rounds,
            )
        )
        learner.observe(k)
    return report
