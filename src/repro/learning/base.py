"""Learned size predictors: the models that produce the paper's ``Y``.

The paper's introduction motivates network-size predictions as the output
of "machine learning models able to observe the behavior of a given
environment over time", and its bounds then hold for *any* predicted
distribution through ``D_KL(c(X)‖c(Y))``.  This subpackage supplies that
missing substrate: online estimators that watch a stream of realised
network sizes and emit a :class:`~repro.infotheory.distributions.SizeDistribution`
prediction, so the full loop - observe, predict, resolve contention, pay
for divergence - can be simulated end to end
(:mod:`repro.learning.online`).

All learners estimate the *condensed* distribution (mass per geometric
range), because that is the only statistic the paper's algorithms consume;
they apply additive smoothing so their predictions always dominate the
truth (finite divergence - the deployment hygiene
:func:`repro.infotheory.perturb.floor_support` encodes).
"""

from __future__ import annotations

import abc

from ..infotheory.distributions import SizeDistribution

__all__ = ["SizePredictor"]


class SizePredictor(abc.ABC):
    """An online estimator of the network-size distribution.

    The protocol: call :meth:`observe` with each realised size ``k`` (in
    practice learned post hoc, e.g. from acknowledgement counts), and
    :meth:`predict` for the current predicted distribution.  Predictions
    must be valid for the fixed board size ``n`` and must have full
    condensed support (smoothing), so divergences stay finite.
    """

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError(f"n must be >= 2, got {n}")
        self.n = n
        self._observations = 0

    @property
    def observations(self) -> int:
        """Number of sizes observed so far."""
        return self._observations

    def observe(self, k: int) -> None:
        """Record one realised network size."""
        if not 2 <= k <= self.n:
            raise ValueError(f"size {k} outside support 2..{self.n}")
        self._observations += 1
        self._update(k)

    @abc.abstractmethod
    def _update(self, k: int) -> None:
        """Learner-specific state update for one observation."""

    @abc.abstractmethod
    def predict(self) -> SizeDistribution:
        """The current predicted size distribution ``Y``."""

    def divergence_from(self, truth: SizeDistribution) -> float:
        """``D_KL(c(truth) ‖ c(prediction))`` - the Theorem 2.12/2.16 cost."""
        return truth.condense().kl_divergence(self.predict().condense())

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} n={self.n} "
            f"observations={self._observations}>"
        )
