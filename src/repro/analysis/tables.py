"""Plain-text rendering of experiment tables and reports.

Experiments produce rows of numbers; these helpers render them as aligned
ASCII tables (for stdout and EXPERIMENTS.md) and CSV (for downstream
plotting).  No external dependencies, no colour codes - output must be
readable inside pytest-benchmark logs and in piped files.
"""

from __future__ import annotations

import io
from collections.abc import Mapping, Sequence

__all__ = ["format_cell", "render_table", "render_csv", "rows_to_columns"]


def format_cell(
    value: object, *, precision: int = 3, nan_text: str = "n/a"
) -> str:
    """Render one table cell: floats rounded, everything else ``str()``.

    NaN marks "no data" (e.g. a rounds summary with zero successful
    trials) and renders as ``nan_text`` - ``n/a`` in human-facing tables,
    ``nan`` in CSV so numeric parsers keep working.
    """
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return nan_text
        if abs(value) >= 1e6 or (0 < abs(value) < 1e-3):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Aligned ASCII table with a header rule.

    Every row must have one cell per header; raises otherwise (silent
    column drift has ruined more experiment logs than any other bug).
    """
    for index, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {index} has {len(row)} cells, expected {len(headers)}"
            )
    cells = [[format_cell(value, precision=precision) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
        for i, header in enumerate(headers)
    ]
    output = io.StringIO()
    if title:
        output.write(title + "\n")
    header_line = "  ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    )
    output.write(header_line.rstrip() + "\n")
    output.write("  ".join("-" * width for width in widths).rstrip() + "\n")
    for row in cells:
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        output.write(line.rstrip() + "\n")
    return output.getvalue()


def render_csv(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Minimal CSV rendering (no quoting needs arise for numeric tables)."""
    lines = [",".join(headers)]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        lines.append(
            ",".join(
                format_cell(value, precision=6, nan_text="nan") for value in row
            )
        )
    return "\n".join(lines) + "\n"


def rows_to_columns(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> Mapping[str, list[object]]:
    """Transpose rows into ``{header: column}`` for fit/check code."""
    columns: dict[str, list[object]] = {header: [] for header in headers}
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for header, value in zip(headers, row):
            columns[header].append(value)
    return columns
