"""Measurement harness: Monte Carlo estimators, exact solvers, summaries,
and plain-text rendering for experiment output."""

from .exact import (
    SolveTimeDistribution,
    cd_expected_rounds,
    expected_rounds_mixture,
    round_success_probabilities,
    schedule_solve_time,
    schedule_success_within,
)
from .exact_search import PhasedSearchExpectation, phased_search_expected_rounds
from .metrics import (
    ProportionEstimate,
    Summary,
    linear_fit,
    loglog_slope,
    wilson_interval,
)
from .montecarlo import (
    RoundsEstimate,
    estimate_player_rounds,
    estimate_success_within,
    estimate_uniform_rounds,
)
from .tables import format_cell, render_csv, render_table, rows_to_columns
from .textplot import text_plot

__all__ = [
    "Summary",
    "ProportionEstimate",
    "wilson_interval",
    "linear_fit",
    "loglog_slope",
    "RoundsEstimate",
    "estimate_uniform_rounds",
    "estimate_success_within",
    "estimate_player_rounds",
    "SolveTimeDistribution",
    "schedule_solve_time",
    "schedule_success_within",
    "round_success_probabilities",
    "expected_rounds_mixture",
    "cd_expected_rounds",
    "phased_search_expected_rounds",
    "PhasedSearchExpectation",
    "render_table",
    "render_csv",
    "rows_to_columns",
    "format_cell",
    "text_plot",
]
