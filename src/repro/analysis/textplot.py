"""Tiny ASCII line/scatter plots for the runnable examples.

The examples print their sweeps as terminal plots so a user without a
plotting stack still *sees* the shapes (entropy scaling, advice decay,
crossovers).  Deliberately minimal: linear axes, dot markers, one or two
series.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["text_plot"]

_MARKERS = "*o+x#@"


def text_plot(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 64,
    height: int = 18,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named ``(xs, ys)`` series on a shared-axis ASCII canvas."""
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError("canvas too small")
    all_x: list[float] = []
    all_y: list[float] = []
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r} has mismatched lengths")
        if not xs:
            raise ValueError(f"series {name!r} is empty")
        all_x.extend(float(v) for v in xs)
        all_y.extend(float(v) for v in ys)
    x_min, x_max = min(all_x), max(all_x)
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            column = round((float(x) - x_min) / x_span * (width - 1))
            row = round((float(y) - y_min) / y_span * (height - 1))
            grid[height - 1 - row][column] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_left = f"{x_min:.3g}"
    x_right = f"{x_max:.3g}"
    padding = width - len(x_left) - len(x_right)
    lines.append(
        " " * (label_width + 2) + x_left + " " * max(1, padding) + x_right
    )
    lines.append(f"{y_label} vs {x_label}")
    return "\n".join(lines) + "\n"
