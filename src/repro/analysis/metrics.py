"""Statistical summaries used by the Monte Carlo harness and experiments.

Plain dataclasses plus a handful of estimators: sample summaries with
normal-approximation confidence intervals, Wilson intervals for success
probabilities, and the log-log regression used to extract scaling
exponents from sweep data (the quantitative form of the paper's shape
claims).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Summary",
    "ProportionEstimate",
    "wilson_interval",
    "loglog_slope",
    "linear_fit",
]


@dataclass(frozen=True)
class Summary:
    """Summary statistics of a sample of round counts (or any scalars).

    ``count == 0`` is a legal state (see :meth:`empty`): a Monte Carlo
    batch in which *no* trial succeeded has no solving-round samples, and
    the summary says so explicitly (NaN statistics) instead of fabricating
    a sample pinned at the budget.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    p90: float

    @classmethod
    def empty(cls) -> "Summary":
        """The explicit zero-sample summary: nothing to summarise."""
        nan = float("nan")
        return cls(
            count=0, mean=nan, std=nan, minimum=nan, maximum=nan,
            median=nan, p90=nan,
        )

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "Summary":
        if len(samples) == 0:
            raise ValueError(
                "cannot summarise an empty sample; use Summary.empty() for "
                "the explicit no-samples state"
            )
        data = np.asarray(samples, dtype=float)
        return cls(
            count=int(data.size),
            mean=float(data.mean()),
            std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
            minimum=float(data.min()),
            maximum=float(data.max()),
            median=float(np.median(data)),
            p90=float(np.quantile(data, 0.9)),
        )

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self.count) if self.count > 0 else math.inf

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the normal-approximation 95% CI for the mean."""
        return 1.96 * self.sem

    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        return self.mean - self.ci95_halfwidth, self.mean + self.ci95_halfwidth


@dataclass(frozen=True)
class ProportionEstimate:
    """A success-probability estimate with its Wilson 95% interval."""

    successes: int
    trials: int

    @property
    def rate(self) -> float:
        if self.trials == 0:
            raise ValueError("no trials recorded")
        return self.successes / self.trials

    def interval(self) -> tuple[float, float]:
        return wilson_interval(self.successes, self.trials)

    @property
    def lower(self) -> float:
        return self.interval()[0]

    @property
    def upper(self) -> float:
        return self.interval()[1]


def wilson_interval(
    successes: int, trials: int, *, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because the experiments verify
    probability *floors* (1/8, 1/16): the Wilson interval behaves sanely
    near 0 and 1 where the normal interval does not.
    """
    if trials <= 0:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside 0..{trials}")
    phat = successes / trials
    denominator = 1.0 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return max(0.0, center - margin), min(1.0, center + margin)


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares slope and intercept of ``y = slope * x + intercept``."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a line")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    slope, intercept = np.polyfit(x, y, deg=1)
    return float(slope), float(intercept)


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Scaling exponent from a log-log regression.

    Fits ``log2 y = slope * log2 x + c``; the slope is the empirical
    scaling exponent used in the Table 1/2 shape checks (e.g. measured
    rounds vs ``2^H`` should regress to slope ~2 for the no-CD upper
    bound's ``2^{2H}``).  Non-positive points are rejected - callers clamp
    first if their data can touch zero.
    """
    for value in list(xs) + list(ys):
        if value <= 0:
            raise ValueError("log-log fit requires strictly positive data")
    log_x = [math.log2(value) for value in xs]
    log_y = [math.log2(value) for value in ys]
    slope, _ = linear_fit(log_x, log_y)
    return slope
