"""Exact expected rounds for the phased noisy binary search.

The generic history-tree expansion (:func:`repro.analysis.exact.
cd_expected_rounds`) is exponential in depth.  For the library's own
:class:`~repro.protocols.searching.PhasedSearchProtocol` - which covers
Willard's search, the Section 2.6 code-class search and the Theorem 3.7
truncated search - the session state is tiny and explicit:

    (phase index, lo, hi, votes cast, collision votes)

with at most ``phases * L^2 * repetitions^2`` states.  Transitions within
one pass form a DAG (votes grow, intervals shrink, phases advance), and a
restarting protocol loops back to the initial state when the last phase
exhausts.  :func:`phased_search_expected_rounds` therefore computes the
*exact* expected solving round by backward induction over the DAG,
closing the single restart loop algebraically:

    E[state] = a(state) + b(state) * E[initial]
    E[initial] = a(initial) / (1 - b(initial))

where ``b(state)`` is the probability of reaching the restart edge before
success from ``state``.  This replaces Monte Carlo for CD experiments
that only need expectations, and gives the tests a zero-variance oracle
for the search protocols.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from ..infotheory.condense import range_probability
from ..lowerbounds.success_bounds import single_success_probability
from ..protocols.searching import PhasedSearchProtocol

__all__ = ["phased_search_expected_rounds", "PhasedSearchExpectation"]


@dataclass(frozen=True)
class PhasedSearchExpectation:
    """Result of the exact analysis.

    Attributes
    ----------
    expected_rounds:
        For restarting protocols: the exact expected solving round
        (infinite when no probe can ever isolate a transmitter).  For
        one-shot protocols: the exact expected number of rounds *spent*
        (solving or giving up).
    success_probability_per_pass:
        Probability that a single pass through all phases solves the
        problem - the constant-probability quantity of Lemma 2.17 /
        Theorem 2.16.
    """

    expected_rounds: float
    success_probability_per_pass: float


def phased_search_expected_rounds(
    protocol: PhasedSearchProtocol, k: int
) -> PhasedSearchExpectation:
    """Exact expectation for a phased search against ``k`` participants.

    Works for any :class:`PhasedSearchProtocol`; the optional ``handle_k1``
    round adds one round to the expectation (it never solves for
    ``k >= 2``, and this function requires ``k >= 2`` when that round is
    present to keep the accounting exact).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if protocol.handle_k1 and k < 2:
        raise ValueError(
            "exact analysis with handle_k1 assumes k >= 2 (a lone player "
            "is solved by the extra round immediately)"
        )
    phases = [tuple(phase) for phase in protocol.phases if phase]
    repetitions = protocol.repetitions
    restart = protocol.restart

    def outcome_probabilities(range_index: int) -> tuple[float, float, float]:
        """(success, silence, collision) for one probe of ``range_index``."""
        p = range_probability(range_index)
        success = single_success_probability(k, p)
        silence = (1.0 - p) ** k
        collision = max(0.0, 1.0 - silence - success)
        return success, silence, collision

    def after_vote(
        phase_idx: int, lo: int, hi: int, mid: int, collision_votes: int
    ) -> tuple[int, int, int, int, int]:
        """State following a completed majority vote at ``mid``."""
        if 2 * collision_votes > repetitions:
            return phase_idx, mid + 1, hi, 0, 0
        return phase_idx, lo, mid - 1, 0, 0

    # Each state's value is (a, b, f): expected rounds accumulated before
    # absorption, probability of absorbing at the restart edge, and
    # probability of absorbing at the one-shot give-up edge.  Success
    # absorbs with no further contribution to any component.
    @lru_cache(maxsize=None)
    def value(
        phase_idx: int, lo: int, hi: int, votes: int, collisions: int
    ) -> tuple[float, float, float]:
        if lo > hi:
            if phase_idx + 1 < len(phases):
                next_hi = len(phases[phase_idx + 1]) - 1
                return value(phase_idx + 1, 0, next_hi, 0, 0)
            if restart:
                return 0.0, 1.0, 0.0  # loop back to the initial state
            return 0.0, 0.0, 1.0  # one-shot: give up
        mid = (lo + hi) // 2
        success, silence, collision = outcome_probabilities(
            phases[phase_idx][mid]
        )
        if votes + 1 >= repetitions:
            next_on_silence = after_vote(phase_idx, lo, hi, mid, collisions)
            next_on_collision = after_vote(
                phase_idx, lo, hi, mid, collisions + 1
            )
        else:
            next_on_silence = (phase_idx, lo, hi, votes + 1, collisions)
            next_on_collision = (phase_idx, lo, hi, votes + 1, collisions + 1)
        a_s, b_s, f_s = value(*next_on_silence)
        a_c, b_c, f_c = value(*next_on_collision)
        a = 1.0 + silence * a_s + collision * a_c
        b = silence * b_s + collision * b_c
        f = silence * f_s + collision * f_c
        return a, b, f

    initial = (0, 0, len(phases[0]) - 1, 0, 0)
    a0, b0, f0 = value(*initial)
    k1_offset = 1.0 if protocol.handle_k1 else 0.0

    if restart:
        per_pass_success = max(0.0, 1.0 - b0)
        if b0 >= 1.0 - 1e-15:
            return PhasedSearchExpectation(
                expected_rounds=math.inf, success_probability_per_pass=0.0
            )
        return PhasedSearchExpectation(
            expected_rounds=a0 / (1.0 - b0) + k1_offset,
            success_probability_per_pass=per_pass_success,
        )
    return PhasedSearchExpectation(
        expected_rounds=a0 + k1_offset,
        success_probability_per_pass=max(0.0, 1.0 - f0),
    )
