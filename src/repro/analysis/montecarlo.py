"""Monte Carlo estimation of protocol round complexity.

The workhorse of every experiment: run a protocol many times against a
fixed size, a size distribution, or an adversarial participant generator,
and summarise rounds-to-success and success-within-budget.  All entry
points take an explicit ``numpy`` Generator so every experiment is
reproducible from its seed, and protocols are passed as zero-argument
*factories* when they carry per-execution state.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..channel.channel import Channel
from ..channel.simulator import run_players, run_uniform
from ..core.advice import AdviceFunction
from ..core.protocol import PlayerProtocol, UniformProtocol
from ..infotheory.distributions import SizeDistribution
from .metrics import ProportionEstimate, Summary

__all__ = [
    "RoundsEstimate",
    "estimate_uniform_rounds",
    "estimate_success_within",
    "estimate_player_rounds",
]

UniformFactory = Callable[[], UniformProtocol] | UniformProtocol
SizeSource = int | SizeDistribution | Callable[[np.random.Generator], int]


@dataclass(frozen=True)
class RoundsEstimate:
    """Joint rounds/success summary of a Monte Carlo batch.

    ``rounds`` summarises the solving round over *successful* trials;
    ``success`` is the solved-within-budget proportion.  Unsolved trials
    are excluded from the rounds summary (they are right-censored at the
    budget); use :attr:`success` to detect and reason about censoring.
    """

    rounds: Summary
    success: ProportionEstimate

    @property
    def mean_rounds(self) -> float:
        return self.rounds.mean

    @property
    def success_rate(self) -> float:
        return self.success.rate


def _resolve_protocol(factory: UniformFactory) -> Callable[[], UniformProtocol]:
    if isinstance(factory, UniformProtocol):
        return lambda: factory
    return factory


def _resolve_size(source: SizeSource) -> Callable[[np.random.Generator], int]:
    if isinstance(source, int):
        if source < 1:
            raise ValueError(f"fixed size must be >= 1, got {source}")
        return lambda rng: source
    if isinstance(source, SizeDistribution):
        return source.sample
    return source


def estimate_uniform_rounds(
    protocol: UniformFactory,
    size_source: SizeSource,
    rng: np.random.Generator,
    *,
    channel: Channel,
    trials: int,
    max_rounds: int,
) -> RoundsEstimate:
    """Rounds-to-success statistics for a uniform protocol.

    ``protocol`` may be a protocol instance (sessions are created per
    trial) or a zero-argument factory invoked per trial (needed when the
    protocol itself depends on per-trial data).  ``size_source`` may be a
    fixed ``k``, a :class:`SizeDistribution` (a fresh ``k`` is drawn per
    trial - the paper's Section 2 setting) or a callable.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    make_protocol = _resolve_protocol(protocol)
    draw_size = _resolve_size(size_source)
    solved_rounds: list[int] = []
    successes = 0
    for _ in range(trials):
        k = draw_size(rng)
        result = run_uniform(
            make_protocol(), k, rng, channel=channel, max_rounds=max_rounds
        )
        if result.solved:
            successes += 1
            solved_rounds.append(result.rounds)
    if not solved_rounds:
        # Universal failure: report a degenerate summary pinned at the
        # budget so downstream tables stay well-formed and loudly wrong.
        solved_rounds = [max_rounds]
    return RoundsEstimate(
        rounds=Summary.from_samples(solved_rounds),
        success=ProportionEstimate(successes=successes, trials=trials),
    )


def estimate_success_within(
    protocol: UniformFactory,
    size_source: SizeSource,
    rng: np.random.Generator,
    *,
    channel: Channel,
    trials: int,
    budget_rounds: int,
) -> ProportionEstimate:
    """Probability of solving within ``budget_rounds``.

    The estimator behind every constant-probability claim (Theorems 2.12
    and 2.16): run one-shot executions capped at the theorem's budget and
    count successes.
    """
    estimate = estimate_uniform_rounds(
        protocol,
        size_source,
        rng,
        channel=channel,
        trials=trials,
        max_rounds=budget_rounds,
    )
    return estimate.success


def estimate_player_rounds(
    protocol: PlayerProtocol,
    participant_source: Callable[[np.random.Generator], frozenset[int]],
    n: int,
    rng: np.random.Generator,
    *,
    channel: Channel,
    advice_function: AdviceFunction | None = None,
    trials: int,
    max_rounds: int,
) -> RoundsEstimate:
    """Rounds-to-success statistics for an identity-aware protocol.

    ``participant_source`` draws a participant set per trial (typically an
    :class:`~repro.channel.network.Adversary` bound to a size schedule).
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    solved_rounds: list[int] = []
    successes = 0
    for _ in range(trials):
        participants = participant_source(rng)
        result = run_players(
            protocol,
            participants,
            n,
            rng,
            channel=channel,
            advice_function=advice_function,
            max_rounds=max_rounds,
        )
        if result.solved:
            successes += 1
            solved_rounds.append(result.rounds)
    if not solved_rounds:
        solved_rounds = [max_rounds]
    return RoundsEstimate(
        rounds=Summary.from_samples(solved_rounds),
        success=ProportionEstimate(successes=successes, trials=trials),
    )


def sample_sizes(
    distribution: SizeDistribution, rng: np.random.Generator, trials: int
) -> Sequence[int]:
    """Draw a batch of sizes (convenience for custom experiment loops)."""
    return [int(k) for k in distribution.sample_many(rng, trials)]
