"""Monte Carlo estimation of protocol round complexity.

The workhorse of every experiment: run a protocol many times against a
fixed size, a size distribution, or an adversarial participant generator,
and summarise rounds-to-success and success-within-budget.  All entry
points take an explicit ``numpy`` Generator so every experiment is
reproducible from its seed, and protocols are passed as zero-argument
*factories* when they carry per-execution state.

Estimation runs on the **vectorized batch engines**
(:mod:`repro.channel.batch` for uniform protocols,
:mod:`repro.channel.batch_players` for identity/advice-aware ones)
whenever the protocol supports it: all trials advance in lockstep - one
binomial draw per round on the uniform path, one array-state decide /
observe per round on the player path - which is 5-100x faster than the
per-trial scalar loops at experiment scale.  The scalar loops remain the
reference implementations and correctness oracles (``batch=False``
forces them; factory protocols, randomized-session wrappers and
non-batchable player combinators always take them), and the two paths
agree statistically - the batch rounds/success arrays are drawn from
exactly the same distribution, just with a different consumption order
of the RNG stream (deterministic player protocols agree exactly).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..channel.batch import (
    is_batchable,
    run_history_stacked,
    run_schedule_stacked,
    run_uniform_batch,
)
from ..channel.batch_players import (
    checked_advice_source,
    is_player_batchable,
    is_player_fusable,
    run_players_batch,
    run_players_stacked,
)
from ..channel.channel import Channel
from ..channel.models import ChannelModel
from ..channel.simulator import _check_channel, run_players, run_uniform
from ..core.advice import AdviceFunction
from ..core.protocol import PlayerProtocol, UniformProtocol
from ..infotheory.distributions import SizeDistribution
from .metrics import ProportionEstimate, Summary

__all__ = [
    "RoundsEstimate",
    "estimate_uniform_rounds",
    "estimate_uniform_rounds_many",
    "estimate_success_within",
    "estimate_player_rounds",
    "estimate_player_rounds_many",
    "select_uniform_engine",
    "select_player_engine",
    "ENGINE_BATCH_SCHEDULE",
    "ENGINE_BATCH_HISTORY",
    "ENGINE_BATCH_PLAYER",
    "ENGINE_SCALAR_UNIFORM",
    "ENGINE_SCALAR_PLAYER",
    "ENGINE_FUSED_SCHEDULE",
    "ENGINE_FUSED_HISTORY",
    "ENGINE_FUSED_PLAYER",
]

UniformFactory = Callable[[], UniformProtocol] | UniformProtocol


class SupportsSampleMany(Protocol):
    """Structural size-source interface: per-trial participant counts.

    Satisfied by :class:`SizeDistribution` and the arrival models of
    :mod:`repro.channel.arrivals`; ``sample_many`` is the vectorized
    batch-path draw, ``sample`` the scalar-path draw.
    """

    def sample(self, rng: np.random.Generator) -> int: ...

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray: ...


#: A size source is a fixed ``k``, any :class:`SupportsSampleMany` object,
#: or a bare per-trial callable (always the scalar sampling path).
SizeSource = int | SupportsSampleMany | Callable[[np.random.Generator], int]

#: Engine labels returned by :func:`select_uniform_engine` /
#: :func:`select_player_engine` and surfaced in scenario metadata: the
#: three vectorized batch paths and the two scalar reference loops.
ENGINE_BATCH_SCHEDULE = "batch-schedule"
ENGINE_BATCH_HISTORY = "batch-history"
ENGINE_BATCH_PLAYER = "batch-player"
ENGINE_SCALAR_UNIFORM = "scalar-uniform"
ENGINE_SCALAR_PLAYER = "scalar-player"

#: Labels recorded by the fused sweep executor when it stacks several
#: compatible scenario points into one engine run (statistics stay
#: bit-identical to the per-point labels above; only the label differs,
#: recording what actually executed).
ENGINE_FUSED_SCHEDULE = "fused-schedule"
ENGINE_FUSED_HISTORY = "fused-history"
ENGINE_FUSED_PLAYER = "fused-player"


@dataclass(frozen=True)
class RoundsEstimate:
    """Joint rounds/success summary of a Monte Carlo batch.

    ``rounds`` summarises the solving round over *successful* trials;
    ``success`` is the solved-within-budget proportion.  Unsolved trials
    are excluded from the rounds summary (they are right-censored at the
    budget); use :attr:`success` to detect and reason about censoring.
    When *no* trial succeeded, ``rounds`` is the explicit zero-sample
    summary (``count == 0``, NaN mean) - there is no data to fabricate.
    """

    rounds: Summary
    success: ProportionEstimate

    @property
    def mean_rounds(self) -> float:
        return self.rounds.mean

    @property
    def success_rate(self) -> float:
        return self.success.rate

    @property
    def any_successes(self) -> bool:
        """Whether the rounds summary rests on at least one sample."""
        return self.rounds.count > 0


def _resolve_protocol(factory: UniformFactory) -> Callable[[], UniformProtocol]:
    if isinstance(factory, UniformProtocol):
        return lambda: factory
    return factory


def _resolve_size(source: SizeSource) -> Callable[[np.random.Generator], int]:
    if isinstance(source, int):
        if source < 1:
            raise ValueError(f"fixed size must be >= 1, got {source}")
        return lambda rng: source
    if hasattr(source, "sample"):
        return source.sample
    return source


def _draw_size_batch(
    source: SizeSource, rng: np.random.Generator, trials: int
) -> np.ndarray:
    """Per-trial participant counts as one vector (batch-path sampling).

    Any source exposing ``sample_many`` (distributions, arrival models)
    is drawn in one vectorized call; bare callables fall back to the
    per-trial loop.
    """
    if isinstance(source, int):
        if source < 1:
            raise ValueError(f"fixed size must be >= 1, got {source}")
        return np.full(trials, source, dtype=np.int64)
    if hasattr(source, "sample_many"):
        return np.asarray(source.sample_many(rng, trials), dtype=np.int64)
    return np.asarray([source(rng) for _ in range(trials)], dtype=np.int64)


def select_uniform_engine(
    protocol: UniformFactory,
    batch: bool | None = None,
    *,
    model: ChannelModel | None = None,
) -> str:
    """Which execution engine :func:`estimate_uniform_rounds` will use.

    Pure routing (no simulation): :data:`ENGINE_BATCH_SCHEDULE` for
    batchable protocols that publish their full probability schedule,
    :data:`ENGINE_BATCH_HISTORY` for feedback-driven protocols with
    deterministic sessions, :data:`ENGINE_SCALAR_UNIFORM` otherwise
    (factories, randomized sessions, or ``batch=False``).  Raises
    ``ValueError`` when ``batch=True`` insists on an impossible batch run,
    mirroring the estimator.

    ``model`` is the channel's *active* fault model: one that declares
    itself inexpressible on the uniform batch engines
    (``batchable=False`` - no in-repo model does anymore, rejoin-delay
    crashes included) forces the scalar reference loop regardless of
    protocol capabilities.
    """
    batchable = isinstance(protocol, UniformProtocol) and is_batchable(protocol)
    if model is not None and not model.batchable:
        if batch is True:
            raise ValueError(
                f"batch=True but channel model {model.name!r} only runs on "
                "the scalar engine (it declares batchable=False)"
            )
        return ENGINE_SCALAR_UNIFORM
    if batch is True and not batchable:
        raise ValueError(
            "batch=True requires a batchable UniformProtocol instance "
            "(got a factory or a randomized-session protocol)"
        )
    if batch is not False and batchable:
        assert isinstance(protocol, UniformProtocol)
        if protocol.batch_schedule() is not None:
            return ENGINE_BATCH_SCHEDULE
        return ENGINE_BATCH_HISTORY
    return ENGINE_SCALAR_UNIFORM


def estimate_uniform_rounds(
    protocol: UniformFactory,
    size_source: SizeSource,
    rng: np.random.Generator,
    *,
    channel: Channel,
    trials: int,
    max_rounds: int,
    batch: bool | None = None,
) -> RoundsEstimate:
    """Rounds-to-success statistics for a uniform protocol.

    ``protocol`` may be a protocol instance (sessions are created per
    trial) or a zero-argument factory invoked per trial (needed when the
    protocol itself depends on per-trial data).  ``size_source`` may be a
    fixed ``k``, a :class:`SizeDistribution` (a fresh ``k`` is drawn per
    trial - the paper's Section 2 setting) or a callable.

    ``batch`` selects the execution substrate: ``None`` (default) uses
    the vectorized batch engine whenever the protocol is a batchable
    instance, ``True`` insists on it (raising for protocols that cannot
    batch), ``False`` forces the scalar reference loop.  Factory
    protocols always run scalar - a factory may build per-trial state the
    lockstep engine cannot share.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    engine = select_uniform_engine(protocol, batch, model=channel.active_model)
    if engine != ENGINE_SCALAR_UNIFORM:
        assert isinstance(protocol, UniformProtocol)
        ks = _draw_size_batch(size_source, rng, trials)
        result = run_uniform_batch(
            protocol, ks, rng, channel=channel, max_rounds=max_rounds
        )
        return RoundsEstimate(
            rounds=result.rounds_summary(), success=result.success_estimate()
        )

    make_protocol = _resolve_protocol(protocol)
    draw_size = _resolve_size(size_source)
    solved_rounds: list[int] = []
    successes = 0
    for _ in range(trials):
        k = draw_size(rng)
        result = run_uniform(
            make_protocol(), k, rng, channel=channel, max_rounds=max_rounds
        )
        if result.solved:
            successes += 1
            solved_rounds.append(result.rounds)
    return RoundsEstimate(
        rounds=(
            Summary.from_samples(solved_rounds)
            if solved_rounds
            else Summary.empty()
        ),
        success=ProportionEstimate(successes=successes, trials=trials),
    )


def estimate_uniform_rounds_many(
    protocols: Sequence[UniformProtocol],
    size_sources: Sequence[SizeSource],
    rngs: Sequence[np.random.Generator],
    *,
    channel: Channel,
    trials: int,
    max_rounds: int,
) -> list[RoundsEstimate]:
    """Estimate many uniform-protocol points in one stacked engine run.

    The fused counterpart of calling :func:`estimate_uniform_rounds` once
    per point: point ``j`` pairs ``protocols[j]`` with ``size_sources[j]``
    and its own generator ``rngs[j]``.  All points must route to the
    *same* batch engine - either every protocol publishes its
    :meth:`~repro.core.protocol.UniformProtocol.batch_schedule`
    (:func:`~repro.channel.batch.run_schedule_stacked`) or every protocol
    is a feedback-driven deterministic-session one
    (:func:`~repro.channel.batch.run_history_stacked`, which also shares
    one memoized history trie across points with equal
    ``history_signature()``s).  Per-point randomness is consumed exactly
    as the solo estimator consumes it - the size batch first, then one
    uniform per live trial per round - so entry ``j`` of the result is
    **bit-identical** to the solo call; the stacking only amortizes the
    per-round engine work across points.
    """
    if not (len(protocols) == len(size_sources) == len(rngs)):
        raise ValueError(
            "need one protocol, size source and rng per point; got "
            f"{len(protocols)}/{len(size_sources)}/{len(rngs)}"
        )
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    model = channel.active_model
    if model is not None and not model.batchable:
        raise ValueError(
            f"channel model {model.name!r} only runs on the scalar engine; "
            "its points cannot be stacked - estimate them one at a time"
        )
    engines = set()
    for protocol in protocols:
        engine = select_uniform_engine(protocol, model=model)
        if engine == ENGINE_SCALAR_UNIFORM:
            raise ValueError(
                f"protocol {getattr(protocol, 'name', protocol)!r} cannot "
                "batch; fuse only batch-schedule or batch-history points"
            )
        engines.add(engine)
        _check_channel(protocol.requires_collision_detection, channel)
    if len(engines) != 1:
        raise ValueError(
            "stacked points must share one engine; got a mix of "
            f"{', '.join(sorted(engines))}"
        )
    ks_list = [
        _draw_size_batch(source, rng, trials)
        for source, rng in zip(size_sources, rngs)
    ]
    if engines.pop() == ENGINE_BATCH_SCHEDULE:
        results = run_schedule_stacked(
            [protocol.batch_schedule() for protocol in protocols],
            ks_list,
            rngs,
            channel=channel,
            max_rounds=max_rounds,
        )
    else:
        results = run_history_stacked(
            protocols, ks_list, rngs, channel=channel, max_rounds=max_rounds
        )
    return [
        RoundsEstimate(
            rounds=result.rounds_summary(), success=result.success_estimate()
        )
        for result in results
    ]


def estimate_success_within(
    protocol: UniformFactory,
    size_source: SizeSource,
    rng: np.random.Generator,
    *,
    channel: Channel,
    trials: int,
    budget_rounds: int,
    batch: bool | None = None,
) -> ProportionEstimate:
    """Probability of solving within ``budget_rounds``.

    The estimator behind every constant-probability claim (Theorems 2.12
    and 2.16): run one-shot executions capped at the theorem's budget and
    count successes.  ``batch`` selects the substrate as in
    :func:`estimate_uniform_rounds`.
    """
    estimate = estimate_uniform_rounds(
        protocol,
        size_source,
        rng,
        channel=channel,
        trials=trials,
        max_rounds=budget_rounds,
        batch=batch,
    )
    return estimate.success


def select_player_engine(
    protocol: PlayerProtocol,
    batch: bool | None = None,
    *,
    model: ChannelModel | None = None,
) -> str:
    """Which execution engine :func:`estimate_player_rounds` will use.

    Pure routing (no simulation), mirroring :func:`select_uniform_engine`
    exactly: :data:`ENGINE_BATCH_PLAYER` for protocols implementing the
    :meth:`~repro.core.protocol.PlayerProtocol.batch_sessions` capability
    hook, :data:`ENGINE_SCALAR_PLAYER` otherwise (non-batchable
    combinators, or ``batch=False``).  Raises ``ValueError`` when
    ``batch=True`` insists on an impossible batch run.

    ``model`` is the channel's *active* fault model: one the batch
    player engine cannot express (``player_batchable=False`` - a crash
    model with a non-zero rejoin delay, whose leave/rejoin transition
    has no vectorized form) forces the scalar per-player loop regardless
    of protocol capabilities.
    """
    batchable = is_player_batchable(protocol)
    if model is not None and not model.player_batchable:
        if batch is True:
            raise ValueError(
                f"batch=True but channel model {model.name!r} only runs on "
                "the scalar engine (a non-zero crash rejoin delay changes "
                "the live participant set mid-trial)"
            )
        return ENGINE_SCALAR_PLAYER
    if batch is True and not batchable:
        raise ValueError(
            "batch=True requires a player protocol with batch sessions "
            f"({protocol.name!r} supports only the scalar per-player loop)"
        )
    if batch is not False and batchable:
        return ENGINE_BATCH_PLAYER
    return ENGINE_SCALAR_PLAYER


def estimate_player_rounds(
    protocol: PlayerProtocol,
    participant_source: Callable[[np.random.Generator], frozenset[int]],
    n: int,
    rng: np.random.Generator,
    *,
    channel: Channel,
    advice_function: AdviceFunction | None = None,
    trials: int,
    max_rounds: int,
    batch: bool | None = None,
) -> RoundsEstimate:
    """Rounds-to-success statistics for an identity-aware protocol.

    ``participant_source`` draws a participant set per trial (typically an
    :class:`~repro.channel.network.Adversary` bound to a size schedule).

    ``batch`` selects the execution substrate with the same semantics as
    :func:`estimate_uniform_rounds`: ``None`` (default) uses the
    vectorized player engine (:mod:`repro.channel.batch_players`)
    whenever the protocol implements the ``batch_sessions`` capability
    hook, ``True`` insists on it (raising ``ValueError`` for protocols
    that cannot batch), ``False`` forces the scalar per-player reference
    loop.  On the batch path all participant sets are drawn first, then
    all advice strings - the same per-call draws as the scalar loop in a
    different stream order, so deterministic protocols agree exactly
    under a deterministic advice function and randomized ones agree
    statistically.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    engine = select_player_engine(protocol, batch, model=channel.active_model)
    if engine == ENGINE_BATCH_PLAYER:
        participant_sets = [participant_source(rng) for _ in range(trials)]
        result = run_players_batch(
            protocol,
            participant_sets,
            n,
            rng,
            channel=channel,
            advice_function=advice_function,
            max_rounds=max_rounds,
        )
        return RoundsEstimate(
            rounds=result.rounds_summary(), success=result.success_estimate()
        )
    solved_rounds: list[int] = []
    successes = 0
    for _ in range(trials):
        participants = participant_source(rng)
        result = run_players(
            protocol,
            participants,
            n,
            rng,
            channel=channel,
            advice_function=advice_function,
            max_rounds=max_rounds,
        )
        if result.solved:
            successes += 1
            solved_rounds.append(result.rounds)
    return RoundsEstimate(
        rounds=(
            Summary.from_samples(solved_rounds)
            if solved_rounds
            else Summary.empty()
        ),
        success=ProportionEstimate(successes=successes, trials=trials),
    )


def estimate_player_rounds_many(
    protocol: PlayerProtocol,
    participant_sources: Sequence[Callable[[np.random.Generator], frozenset[int]]],
    n: int,
    rngs: Sequence[np.random.Generator],
    *,
    channel: Channel,
    advice_functions: Sequence[AdviceFunction | None],
    trials: int,
    max_rounds: int,
) -> list[RoundsEstimate]:
    """Estimate many player-protocol points in one stacked engine run.

    The fused counterpart of calling :func:`estimate_player_rounds` once
    per point, for points sharing one *fusable* protocol (randomness-free
    batch sessions - deterministic scan / tree descent and their fallback
    wrappers) but differing in adversary, advice quality or seed.  Point
    ``j`` first draws its participant sets, then its advice strings, from
    its own ``rngs[j]`` - exactly the solo estimator's consumption order;
    the engine itself draws nothing, so entry ``j`` of the result is
    **bit-identical** to the solo call.
    """
    if not (len(participant_sources) == len(rngs) == len(advice_functions)):
        raise ValueError(
            "need one participant source, advice function and rng per "
            f"point; got {len(participant_sources)}/{len(advice_functions)}/"
            f"{len(rngs)}"
        )
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    model = channel.active_model
    if model is not None and (
        not model.player_batchable or model.needs_fault_draws
    ):
        raise ValueError(
            f"channel model {model.name!r} cannot run on the stacked "
            "(fused) player engine; run its points through "
            "estimate_player_rounds"
        )
    if not is_player_fusable(protocol):
        raise ValueError(
            f"protocol {protocol.name!r} has no randomness-free batch "
            "sessions; run its points through estimate_player_rounds"
        )
    all_sets: list[frozenset[int]] = []
    all_advice: list[str] = []
    for source, advice_function, rng in zip(
        participant_sources, advice_functions, rngs
    ):
        advice_source = checked_advice_source(protocol, advice_function)
        point_sets = [source(rng) for _ in range(trials)]
        all_sets.extend(point_sets)
        all_advice.extend(
            advice_source.checked_advise(participants, n)
            for participants in point_sets
        )
    stacked = run_players_stacked(
        protocol, all_sets, n, all_advice, channel=channel,
        max_rounds=max_rounds,
    )
    estimates = []
    for point in range(len(rngs)):
        segment = stacked.sliced(point * trials, (point + 1) * trials)
        estimates.append(
            RoundsEstimate(
                rounds=segment.rounds_summary(),
                success=segment.success_estimate(),
            )
        )
    return estimates


def sample_sizes(
    distribution: SizeDistribution, rng: np.random.Generator, trials: int
) -> np.ndarray:
    """Draw a batch of sizes (convenience for custom experiment loops).

    Returns the ``sample_many`` int64 ndarray directly; callers needing a
    plain ``list[int]`` should ``.tolist()`` it themselves rather than
    paying a round-trip through a Python comprehension here.
    """
    return distribution.sample_many(rng, trials)
