"""Exact (non-Monte-Carlo) round-complexity computation.

For *oblivious* uniform protocols - fixed probability schedules - the
solve-time distribution is a product of independent per-round Bernoulli
successes and can be computed exactly:

    ``q_r = k p_r (1 - p_r)^(k-1)``        per-round success probability
    ``P(T = r) = q_r * prod_{s<r} (1 - q_s)``

This gives experiments a zero-variance alternative to simulation for
decay, sorted probing and the truncated-decay advice protocol, and it
gives the tests an oracle to validate the Monte Carlo engine against.

For *adaptive* CD policies the analogue is an expectation over collision
histories: :func:`cd_expected_rounds` walks the history tree, weighting
each branch by its exact probability (silence ``(1-p)^k``, success
``kp(1-p)^(k-1)``, collision the rest) with mass-based pruning.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..core.uniform import HistoryPolicy, ProbabilitySchedule
from ..lowerbounds.success_bounds import single_success_probability

__all__ = [
    "round_success_probabilities",
    "SolveTimeDistribution",
    "schedule_solve_time",
    "schedule_success_within",
    "expected_rounds_mixture",
    "cd_expected_rounds",
]


def round_success_probabilities(
    schedule: ProbabilitySchedule | Sequence[float], k: int
) -> np.ndarray:
    """Per-round success probabilities ``q_r = k p_r (1-p_r)^(k-1)``."""
    probabilities = (
        schedule.probabilities
        if isinstance(schedule, ProbabilitySchedule)
        else tuple(schedule)
    )
    return np.asarray(
        [single_success_probability(k, p) for p in probabilities], dtype=float
    )


@dataclass(frozen=True)
class SolveTimeDistribution:
    """Exact distribution of the solving round for an oblivious schedule.

    Attributes
    ----------
    pmf:
        ``pmf[r-1] = P(T = r)`` for rounds ``1..R``.
    residual:
        ``P(T > R)`` - probability the schedule's horizon ends unsolved.
    """

    pmf: np.ndarray
    residual: float

    @property
    def horizon(self) -> int:
        return len(self.pmf)

    def success_probability(self) -> float:
        """``P(T <= R)``."""
        return float(self.pmf.sum())

    def success_within(self, budget: int) -> float:
        """``P(T <= budget)`` for ``budget <= R``."""
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        return float(self.pmf[: min(budget, self.horizon)].sum())

    def expected_rounds_conditional(self) -> float:
        """``E[T | T <= R]``: mean solving round over solved executions."""
        mass = self.success_probability()
        if mass <= 0.0:
            return math.inf
        rounds = np.arange(1, self.horizon + 1)
        return float((rounds * self.pmf).sum() / mass)

    def expected_rounds_with_penalty(self, penalty: float) -> float:
        """``E[min(T, penalty)]``-style score charging ``penalty`` per miss."""
        rounds = np.arange(1, self.horizon + 1)
        return float((rounds * self.pmf).sum() + self.residual * penalty)


def schedule_solve_time(
    schedule: ProbabilitySchedule | Sequence[float],
    k: int,
    *,
    horizon: int | None = None,
    cycle: bool = False,
) -> SolveTimeDistribution:
    """Exact solve-time distribution of an oblivious schedule.

    With ``cycle=True`` the schedule repeats to fill ``horizon`` rounds
    (which must then be provided); otherwise the horizon is the schedule
    length (or ``horizon`` if smaller).
    """
    probabilities = list(
        schedule.probabilities
        if isinstance(schedule, ProbabilitySchedule)
        else schedule
    )
    if cycle:
        if horizon is None:
            raise ValueError("cycling schedules need an explicit horizon")
        repeats = -(-horizon // len(probabilities))
        probabilities = (probabilities * repeats)[:horizon]
    elif horizon is not None:
        probabilities = probabilities[:horizon]
    q = round_success_probabilities(probabilities, k)
    survival = np.concatenate([[1.0], np.cumprod(1.0 - q)])
    pmf = q * survival[:-1]
    return SolveTimeDistribution(pmf=pmf, residual=float(survival[-1]))


def schedule_success_within(
    schedule: ProbabilitySchedule | Sequence[float], k: int, budget: int
) -> float:
    """Exact ``P(solve within budget)`` for an oblivious schedule."""
    return schedule_solve_time(schedule, k, horizon=budget).success_probability()


def expected_rounds_mixture(
    per_size: dict[int, SolveTimeDistribution],
    weights: dict[int, float],
) -> float:
    """Mix conditional expected rounds over a size distribution.

    ``E[T]``-style score weighting each size's conditional expectation by
    its probability; infinite if any positive-weight size never solves.
    """
    total = 0.0
    for size, weight in weights.items():
        if weight <= 0.0:
            continue
        if size not in per_size:
            raise ValueError(f"missing solve-time distribution for size {size}")
        total += weight * per_size[size].expected_rounds_conditional()
    return total


def cd_expected_rounds(
    policy: HistoryPolicy,
    k: int,
    *,
    max_depth: int,
    prune_mass: float = 1e-9,
    max_nodes: int = 2_000_000,
) -> tuple[float, float]:
    """Expected solving round of a CD policy, by history-tree expansion.

    Returns ``(expected_rounds_contribution, solved_mass)`` where the
    first term is ``E[T * 1{T <= max_depth}]`` and the second
    ``P(T <= max_depth)``; their ratio is the conditional expectation.
    Branches with probability mass below ``prune_mass`` are dropped
    (their contribution is bounded by ``prune_mass * max_depth`` each).

    The history tree is exponential in ``max_depth``; ``max_nodes`` caps
    the exploration and raises ``ValueError`` when exceeded, so callers
    discover an infeasible depth immediately instead of hanging.  Depths
    up to ~20 with the default prune are comfortably feasible for the
    search policies in this library (most branch mass dies quickly into
    successes).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if max_depth < 1:
        raise ValueError(f"max_depth must be >= 1, got {max_depth}")
    if prune_mass <= 0:
        raise ValueError(f"prune_mass must be > 0, got {prune_mass}")

    expected = 0.0
    solved_mass = 0.0
    nodes_visited = 0
    # Stack of (history, mass); round number = len(history) + 1.
    stack: list[tuple[str, float]] = [("", 1.0)]
    while stack:
        history, mass = stack.pop()
        round_index = len(history) + 1
        if round_index > max_depth or mass < prune_mass:
            continue
        nodes_visited += 1
        if nodes_visited > max_nodes:
            raise ValueError(
                f"history-tree expansion exceeded {max_nodes} nodes; "
                "reduce max_depth or raise prune_mass"
            )
        p = policy.probability(history)
        p_success = single_success_probability(k, p)
        p_silence = (1.0 - p) ** k
        p_collision = max(0.0, 1.0 - p_silence - p_success)
        expected += mass * p_success * round_index
        solved_mass += mass * p_success
        stack.append((history + "0", mass * p_silence))
        stack.append((history + "1", mass * p_collision))
    return expected, solved_mass
