"""Command-line entry point: ``repro`` / ``python -m repro``.

Subcommands:

* ``repro list`` - show the experiment registry;
* ``repro run <ID> [...]`` - run experiments and print their reports
  (``all`` runs the full registry);
* ``repro report [...]`` - run the full registry and emit the
  EXPERIMENTS.md-style paper-vs-measured summary.

Every run is reproducible from ``--seed``; ``--quick`` thins the sweeps
for smoke-testing.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .experiments.base import ExperimentConfig
from .experiments.registry import EXPERIMENTS, experiment_ids, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Contention Resolution with Predictions' "
            "(Gilbert, Newport, Vaidya, Weaver; PODC 2021)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the experiment registry")

    run_parser = subparsers.add_parser(
        "run", help="run one or more experiments and print their reports"
    )
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see 'repro list'), or 'all'",
    )
    _add_config_arguments(run_parser)
    run_parser.add_argument(
        "--csv",
        action="store_true",
        help="emit the raw measurement tables as CSV after each report",
    )

    report_parser = subparsers.add_parser(
        "report",
        help="run the full registry and print a paper-vs-measured summary",
    )
    _add_config_arguments(report_parser)
    return parser


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--n", type=int, default=2**16, help="maximum network size (default 2^16)"
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=3000,
        help="Monte Carlo trials per measured point (default 3000)",
    )
    parser.add_argument(
        "--seed", type=int, default=2021, help="root RNG seed (default 2021)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="thin sweeps and trials for a fast smoke run",
    )
    parser.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "run uniform Monte Carlo on the vectorized batch engine "
            "(default); --no-batch forces the scalar reference loop"
        ),
    )


def _config_from(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        n=args.n,
        trials=args.trials,
        seed=args.seed,
        quick=args.quick,
        batch=args.batch,
    )


def _command_list() -> int:
    width = max(len(experiment_id) for experiment_id in EXPERIMENTS)
    for experiment_id, (_, description) in EXPERIMENTS.items():
        print(f"{experiment_id.ljust(width)}  {description}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    requested = (
        experiment_ids()
        if any(name.lower() == "all" for name in args.experiments)
        else args.experiments
    )
    config = _config_from(args)
    exit_code = 0
    for experiment_id in requested:
        try:
            result = run_experiment(experiment_id, config)
        except KeyError as error:
            print(error.args[0], file=sys.stderr)
            return 2
        print(result.render())
        if args.csv:
            print(result.to_csv())
        if not result.all_checks_pass():
            exit_code = 1
    return exit_code


def _command_report(args: argparse.Namespace) -> int:
    config = _config_from(args)
    failures: list[str] = []
    print("paper-vs-measured summary")
    print("=" * 72)
    for experiment_id in experiment_ids():
        result = run_experiment(experiment_id, config)
        status = "PASS" if result.all_checks_pass() else "FAIL"
        print(f"[{status}] {experiment_id}: {result.title}")
        print(f"       reproduces {result.reference}")
        for name in result.failed_checks():
            print(f"       failed: {name}")
        if not result.all_checks_pass():
            failures.append(experiment_id)
    print("=" * 72)
    if failures:
        print(f"{len(failures)} experiment(s) failed: {', '.join(failures)}")
        return 1
    print("all experiments reproduce their paper artefacts")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "report":
        return _command_report(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
