"""Command-line entry point: ``repro`` / ``python -m repro``.

Subcommands:

* ``repro list`` - show the experiment registry;
* ``repro run <ID> [...]`` - run experiments and print their reports
  (``all`` runs the full registry);
* ``repro report [...]`` - run the full registry and emit the
  EXPERIMENTS.md-style paper-vs-measured summary;
* ``repro scenario run <SPEC.json>`` - execute one declarative scenario;
* ``repro scenario sweep <SWEEP.json>`` - expand and execute a scenario
  grid through the serial, process-pool, fused or supervised executor;
  ``--resume JOURNAL`` checkpoints every completed point and replays the
  journal on re-run, ``--cache-dir DIR`` consults a content-addressed
  result store before executing anything, and ``--inject-faults JSON``
  drives the deterministic crash/hang/corrupt harness (an injected
  driver crash exits with status 3; exhausted supervised retries report
  a failure manifest and exit 1);
* ``repro scenario example [--sweep|--player|--cd-grid|--adversary]`` -
  print a ready-to-run spec (``--cd-grid`` is the dense
  collision-detection sweep whose points stack through the fused history
  engine; ``--adversary`` is the jamming robustness grid, grouped by
  channel model);
* ``repro scenario open run|sweep|example`` - open-system runs: a
  streaming arrival process served round by round, reporting per-request
  sojourn percentiles and throughput; ``open sweep`` renders the
  load -> latency curve.

Every run is reproducible from its seed; ``--quick`` thins the
experiment sweeps for smoke-testing, and ``--json`` switches the
scenario commands to machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from .experiments.base import ExperimentConfig
from .experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from .scenarios import (
    EXAMPLE_ADVERSARY_SWEEP,
    EXAMPLE_CD_SWEEP,
    EXAMPLE_FAULT_PLAN,
    EXAMPLE_OPEN_RETRY_SWEEP,
    EXAMPLE_OPEN_SCENARIO,
    EXAMPLE_OPEN_SWEEP,
    OpenScenarioSpec,
    OpenSweep,
    ScenarioError,
    ScenarioSpec,
    SimulatedCrash,
    Sweep,
    fault_plan_from_json,
    make_supervised_executor,
    register_executor,
    run_open_scenario,
    run_open_sweep,
    run_scenario,
    run_sweep,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Contention Resolution with Predictions' "
            "(Gilbert, Newport, Vaidya, Weaver; PODC 2021)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the experiment registry")

    run_parser = subparsers.add_parser(
        "run", help="run one or more experiments and print their reports"
    )
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see 'repro list'), or 'all'",
    )
    _add_config_arguments(run_parser)
    run_parser.add_argument(
        "--csv",
        action="store_true",
        help="emit the raw measurement tables as CSV after each report",
    )

    report_parser = subparsers.add_parser(
        "report",
        help="run the full registry and print a paper-vs-measured summary",
    )
    _add_config_arguments(report_parser)

    scenario_parser = subparsers.add_parser(
        "scenario", help="run declarative scenarios (see docs/SCENARIOS.md)"
    )
    scenario_sub = scenario_parser.add_subparsers(
        dest="scenario_command", required=True
    )

    scenario_run = scenario_sub.add_parser(
        "run", help="execute one ScenarioSpec JSON file ('-' reads stdin)"
    )
    scenario_run.add_argument("spec", help="path to a ScenarioSpec JSON file, or '-'")
    scenario_run.add_argument(
        "--json", action="store_true", help="emit the result as JSON"
    )

    scenario_sweep = scenario_sub.add_parser(
        "sweep", help="expand and execute a sweep JSON file ('-' reads stdin)"
    )
    scenario_sweep.add_argument(
        "spec", help="path to a sweep JSON file ({base, grid, vary_seed}), or '-'"
    )
    scenario_sweep.add_argument(
        "--executor",
        choices=["serial", "process", "fused", "supervised"],
        default="serial",
        help=(
            "point executor: in-process serial (default), a process pool, "
            "fused - compatible points stacked into one vectorized "
            "engine run (single-core speedup; statistics identical to "
            "serial) - or supervised: per-point worker processes with "
            "timeouts, bounded retry and a failure manifest instead of a "
            "raised traceback"
        ),
    )
    scenario_sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (default: min(points, cpu count))",
    )
    scenario_sweep.add_argument(
        "--resume",
        metavar="JOURNAL",
        default=None,
        help=(
            "checkpoint journal path: completed points are appended as "
            "the sweep runs, and an existing journal is replayed so only "
            "missing points re-execute (bit-identical to an "
            "uninterrupted run)"
        ),
    )
    scenario_sweep.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "content-addressed result store: points whose spec hash is "
            "already cached are served from disk without running any "
            "engine"
        ),
    )
    scenario_sweep.add_argument(
        "--point-timeout",
        type=float,
        default=60.0,
        help=(
            "supervised executor only: per-attempt wall-clock budget in "
            "seconds (default 60)"
        ),
    )
    scenario_sweep.add_argument(
        "--point-retries",
        type=int,
        default=2,
        help=(
            "supervised executor only: extra attempts a failed point "
            "gets before entering the failure manifest (default 2)"
        ),
    )
    scenario_sweep.add_argument(
        "--inject-faults",
        metavar="JSON",
        default=None,
        help=(
            "deterministic fault plan, e.g. "
            f"'{json.dumps(EXAMPLE_FAULT_PLAN)}' - worker "
            "faults need --executor supervised; a driver crash exits 3 "
            "with the journal intact"
        ),
    )
    scenario_sweep.add_argument(
        "--json", action="store_true", help="emit all point results as JSON"
    )

    scenario_example = scenario_sub.add_parser(
        "example", help="print a ready-to-run example spec"
    )
    example_kind = scenario_example.add_mutually_exclusive_group()
    example_kind.add_argument(
        "--sweep",
        action="store_true",
        help="print a sweep ({base, grid}) instead of a single scenario",
    )
    example_kind.add_argument(
        "--player",
        action="store_true",
        help=(
            "print a player-protocol scenario (advice + adversary on the "
            "batch player engine) instead of the uniform demo"
        ),
    )
    example_kind.add_argument(
        "--cd-grid",
        action="store_true",
        help=(
            "print the dense CD sweep (Willard/decay/code-search under "
            "clean and faulty predictions); its history points stack "
            "through the fused executor (engine label fused-history)"
        ),
    )
    example_kind.add_argument(
        "--adversary",
        action="store_true",
        help=(
            "print the adversary robustness sweep (rounds vs jamming "
            "budget for willard/decay/sorted-probing under clean and "
            "shifted predictions); points group by channel model in the "
            "fused executor"
        ),
    )

    open_parser = scenario_sub.add_parser(
        "open",
        help=(
            "open-system runs: streaming arrivals served round by round, "
            "reporting sojourn-latency percentiles and throughput"
        ),
    )
    open_sub = open_parser.add_subparsers(dest="open_command", required=True)

    open_run = open_sub.add_parser(
        "run", help="execute one OpenScenarioSpec JSON file ('-' reads stdin)"
    )
    open_run.add_argument(
        "spec", help="path to an OpenScenarioSpec JSON file, or '-'"
    )
    open_run.add_argument(
        "--json", action="store_true", help="emit the result as JSON"
    )

    open_sweep = open_sub.add_parser(
        "sweep",
        help=(
            "expand and execute an open sweep JSON file ('-' reads stdin); "
            "sweeping arrivals.params.rate yields the load -> latency curve"
        ),
    )
    open_sweep.add_argument(
        "spec", help="path to an open sweep JSON file ({base, grid}), or '-'"
    )
    open_sweep.add_argument(
        "--resume",
        metavar="JOURNAL",
        default=None,
        help="checkpoint journal path (as for 'scenario sweep --resume')",
    )
    open_sweep.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "content-addressed result store directory; open and closed "
            "specs hash to disjoint keys, so one directory serves both"
        ),
    )
    open_sweep.add_argument(
        "--json", action="store_true", help="emit all point results as JSON"
    )

    open_example = open_sub.add_parser(
        "example", help="print a ready-to-run open-system spec"
    )
    open_kind = open_example.add_mutually_exclusive_group()
    open_kind.add_argument(
        "--sweep",
        action="store_true",
        help="print the 4-point load sweep instead of a single scenario",
    )
    open_kind.add_argument(
        "--retry",
        action="store_true",
        help=(
            "print the graceful-degradation sweep (retry kind x offered "
            "load, with shedding admission and a request timeout)"
        ),
    )
    return parser


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--n", type=int, default=2**16, help="maximum network size (default 2^16)"
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=3000,
        help="Monte Carlo trials per measured point (default 3000)",
    )
    parser.add_argument(
        "--seed", type=int, default=2021, help="root RNG seed (default 2021)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="thin sweeps and trials for a fast smoke run",
    )
    parser.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "run uniform Monte Carlo on the vectorized batch engine "
            "(default); --no-batch forces the scalar reference loop"
        ),
    )


def _config_from(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        n=args.n,
        trials=args.trials,
        seed=args.seed,
        quick=args.quick,
        batch=args.batch,
    )


def _command_list() -> int:
    width = max(len(experiment_id) for experiment_id in EXPERIMENTS)
    for experiment_id, (_, description) in EXPERIMENTS.items():
        print(f"{experiment_id.ljust(width)}  {description}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    requested = (
        experiment_ids()
        if any(name.lower() == "all" for name in args.experiments)
        else args.experiments
    )
    # Validate the whole request before running anything: a typo in the
    # last id must not cost the first ids' (possibly long) runs.
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment id(s): {', '.join(unknown)}; known ids: "
            f"{', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    config = _config_from(args)
    exit_code = 0
    for experiment_id in requested:
        result = run_experiment(experiment_id, config)
        print(result.render())
        if args.csv:
            print(result.to_csv())
        if not result.all_checks_pass():
            exit_code = 1
    return exit_code


def _command_report(args: argparse.Namespace) -> int:
    config = _config_from(args)
    failures: list[str] = []
    print("paper-vs-measured summary")
    print("=" * 72)
    for experiment_id in experiment_ids():
        result = run_experiment(experiment_id, config)
        status = "PASS" if result.all_checks_pass() else "FAIL"
        print(f"[{status}] {experiment_id}: {result.title}")
        print(f"       reproduces {result.reference}")
        for name in result.failed_checks():
            print(f"       failed: {name}")
        if not result.all_checks_pass():
            failures.append(experiment_id)
    print("=" * 72)
    if failures:
        print(f"{len(failures)} experiment(s) failed: {', '.join(failures)}")
        return 1
    print("all experiments reproduce their paper artefacts")
    return 0


#: The example scenario: the paper's headline no-CD prediction protocol
#: against a 2-bit workload, small enough to finish in well under a second.
EXAMPLE_SCENARIO: dict = {
    "name": "sorted-probing-demo",
    "protocol": {"id": "sorted-probing", "params": {"one_shot": False}},
    "prediction": "truth",
    "workload": {
        "kind": "distribution",
        "params": {"family": "range_uniform_subset", "ranges": [2, 4, 6, 8]},
    },
    "channel": "nocd",
    "n": 2**10,
    "trials": 1000,
    "max_rounds": 512,
    "seed": 2021,
}

#: The example sweep: the same scenario across an entropy dial.
EXAMPLE_SWEEP: dict = {
    "base": EXAMPLE_SCENARIO,
    "grid": {
        "workload.params.ranges": [[5], [3, 7], [2, 5, 8], [2, 4, 6, 8]],
    },
    "vary_seed": True,
}

#: The example player scenario: a Section-3.2 tree descent under faulty
#: advice against a clustered adversary, routed to the batch player engine.
EXAMPLE_PLAYER_SCENARIO: dict = {
    "name": "tree-descent-demo",
    "protocol": {"id": "tree-descent", "params": {"advice_bits": 4}},
    "workload": {"kind": "fixed", "params": {"k": 6}},
    "channel": "cd",
    "advice": {
        "function": "min-id-prefix",
        "bits": 4,
        "corruption": {"model": "bit-flip", "probability": 0.1},
    },
    "adversary": "clustered",
    "n": 2**10,
    "trials": 1000,
    "max_rounds": 64,
    "seed": 2021,
}


def _read_spec_text(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    return Path(path).read_text()


def _command_scenario_open(args: argparse.Namespace) -> int:
    if args.open_command == "example":
        if args.retry:
            payload = EXAMPLE_OPEN_RETRY_SWEEP
        elif args.sweep:
            payload = EXAMPLE_OPEN_SWEEP
        else:
            payload = EXAMPLE_OPEN_SCENARIO
        print(json.dumps(payload, indent=2))
        return 0
    try:
        text = _read_spec_text(args.spec)
    except OSError as error:
        print(f"cannot read spec {args.spec!r}: {error}", file=sys.stderr)
        return 2
    try:
        if args.open_command == "run":
            result = run_open_scenario(OpenScenarioSpec.from_json(text))
            print(result.to_json() if args.json else result.render())
            return 0
        if args.open_command == "sweep":
            sweep_result = run_open_sweep(
                OpenSweep.from_json(text),
                resume=args.resume,
                cache=args.cache_dir,
            )
            print(sweep_result.to_json() if args.json else sweep_result.render())
            return 0
    except ScenarioError as error:
        print(f"scenario error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled open command {args.open_command!r}")


def _command_scenario(args: argparse.Namespace) -> int:
    if args.scenario_command == "open":
        return _command_scenario_open(args)
    if args.scenario_command == "example":
        if args.sweep:
            payload = EXAMPLE_SWEEP
        elif args.player:
            payload = EXAMPLE_PLAYER_SCENARIO
        elif args.cd_grid:
            payload = EXAMPLE_CD_SWEEP
        elif args.adversary:
            payload = EXAMPLE_ADVERSARY_SWEEP
        else:
            payload = EXAMPLE_SCENARIO
        print(json.dumps(payload, indent=2))
        return 0
    try:
        text = _read_spec_text(args.spec)
    except OSError as error:
        print(f"cannot read spec {args.spec!r}: {error}", file=sys.stderr)
        return 2
    try:
        if args.scenario_command == "run":
            result = run_scenario(ScenarioSpec.from_json(text))
            print(result.to_json() if args.json else result.render())
            return 0
        if args.scenario_command == "sweep":
            if args.executor == "supervised":
                # Re-register with the user's failure policy; replace=True
                # swaps the library-default registration in place.
                register_executor(
                    "supervised",
                    make_supervised_executor(
                        timeout=args.point_timeout, retries=args.point_retries
                    ),
                    replace=True,
                )
            fault_plan = (
                fault_plan_from_json(args.inject_faults)
                if args.inject_faults
                else None
            )
            try:
                sweep_result = run_sweep(
                    Sweep.from_json(text),
                    executor=args.executor,
                    max_workers=args.workers,
                    resume=args.resume,
                    cache=args.cache_dir,
                    fault_plan=fault_plan,
                )
            except SimulatedCrash as crash:
                print(f"simulated crash: {crash}", file=sys.stderr)
                return 3
            print(sweep_result.to_json() if args.json else sweep_result.render())
            return 1 if sweep_result.failures else 0
    except ScenarioError as error:
        print(f"scenario error: {error}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled scenario command {args.scenario_command!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "report":
        return _command_report(args)
    if args.command == "scenario":
        return _command_scenario(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
