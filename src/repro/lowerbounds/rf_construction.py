"""RF-Construction (Algorithm 1): schedules to range-finding sequences.

The no-CD lower bound (Theorem 2.4) transforms any uniform algorithm
``A = p_1, p_2, ...`` into a range-finding sequence ``S_A`` by
interleaving, for each round ``i``:

1. the *guess* ``ceil(log2(1 / p_i))`` - the range whose representative
   probability is closest below ``p_i``; and
2. one value of a counter cycling through all of ``L(n)``.

The cycling counter guarantees every range appears within the first
``2 * ceil(log2 n)`` slots (Case 2 of Lemma 2.7); the guesses guarantee
that whenever ``A`` succeeds quickly for sizes in range ``i``, a value
within ``O(log log n)`` of ``i`` appears within twice as many slots
(Case 1, via Lemma 2.6).  Lemma 2.7: ``S_A`` solves
``(n, alpha*log log n)``-range finding in expected time ``<= 2 t_X(n)``.

Paper-text note: Algorithm 1 reads "Append 2j" with ``j`` starting at 0
and resetting after ``ceil(log n)``.  The proof of Lemma 2.7 requires the
interleaved values to "correspond to all ranges" within the first
``2 log n`` slots, so the appended value must be the *range index* ``j``
(the range containing size ``2^j``); we cycle ``j`` through
``1..ceil(log2 n)`` accordingly.  See DESIGN.md, "ambiguities resolved".
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..core.uniform import ProbabilitySchedule
from ..infotheory.condense import num_ranges
from .range_finding import SequenceRangeFinder, default_sequence_tolerance

__all__ = ["guess_from_probability", "rf_construction", "rf_range_finder"]


def guess_from_probability(p: float, n: int) -> int:
    """The range guess ``ceil(log2(1/p))`` clamped into ``L(n)``.

    ``p >= 1/2`` (more aggressive than any range's representative
    probability) clamps to range 1; ``p`` below ``2^-L`` (including 0)
    clamps to range ``L``.  Clamping only strengthens the construction:
    out-of-band probabilities cannot solve any range anyway (Lemma 2.6).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability {p!r} outside [0, 1]")
    count = num_ranges(n)
    if p <= 0.0:
        return count
    guess = math.ceil(math.log2(1.0 / p))
    return min(max(guess, 1), count)


def rf_construction(
    schedule: ProbabilitySchedule | Sequence[float], n: int
) -> list[int]:
    """Algorithm 1: interleave probability guesses with a range cycle.

    Returns the sequence ``S_A`` of range indices; its length is twice the
    schedule's.  Accepts either a :class:`ProbabilitySchedule` or a raw
    probability sequence.
    """
    probabilities = (
        schedule.probabilities
        if isinstance(schedule, ProbabilitySchedule)
        else tuple(schedule)
    )
    if not probabilities:
        raise ValueError("schedule must be non-empty")
    count = num_ranges(n)
    sequence: list[int] = []
    cycle_value = 1
    for p in probabilities:
        sequence.append(guess_from_probability(p, n))
        sequence.append(cycle_value)
        cycle_value = cycle_value + 1 if cycle_value < count else 1
    return sequence


def rf_range_finder(
    schedule: ProbabilitySchedule | Sequence[float],
    n: int,
    *,
    alpha: float = 1.0,
) -> SequenceRangeFinder:
    """RF-Construction packaged as a ready-to-evaluate range finder.

    The tolerance is Lemma 2.7's ``alpha * log2 log2 n``.
    """
    return SequenceRangeFinder(
        rf_construction(schedule, n),
        tolerance=default_sequence_tolerance(n, alpha),
    )
