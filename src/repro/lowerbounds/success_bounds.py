"""Success-probability lemmas: the numeric backbone of both reductions.

With ``k`` participants each transmitting with probability ``p``, the
number of transmitters is ``Binomial(k, p)`` and contention resolution
succeeds in the round iff exactly one transmits:

    ``P(success) = k p (1 - p)^(k-1)``.

The paper's lemmas carve this function into windows:

* **Lemma 2.6** (no-CD): for ``p`` outside
  ``[1/(beta k log n), beta log n / k]`` the success probability is below
  ``1/(2 log n)``;
* **Lemma 2.10** (CD): for ``p`` outside
  ``[1/(beta k log log n), beta log log n / k]`` it is below
  ``1/(2 log log n)``;
* **Lemma 2.13** (upper bound): for ``p in (1/(2k), 1/k]`` - the probe
  the sorted-probing algorithm uses inside the correct range - it is at
  least ``1/8``.

These are exact statements about an elementary function, so this module
both *computes* the function robustly (log-space for large ``k``) and
*checks* the lemmas on demand; tests and the ``LEMMA-PROBS`` experiment
sweep them over wide grids.
"""

from __future__ import annotations

import math

__all__ = [
    "single_success_probability",
    "lemma_2_6_window",
    "lemma_2_6_threshold",
    "lemma_2_10_window",
    "lemma_2_10_threshold",
    "lemma_2_13_lower_bound",
    "window_violation",
]

#: The constant ``beta`` for which the lemma proofs go through.  Lemma 2.6
#: derives ``beta >= 6``; Lemma 2.10 needs only ``beta >= 2``.  We default
#: both checkers to 6 (the stronger requirement) unless overridden.
DEFAULT_BETA = 6.0


def single_success_probability(k: int, p: float) -> float:
    """``P(Binomial(k, p) = 1) = k p (1-p)^(k-1)``, computed in log space.

    Stable for ``k`` up to at least ``2^60``; the direct formula would
    underflow ``(1-p)^(k-1)`` long before that.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if p == 0.0:
        return 0.0
    if p == 1.0:
        return 1.0 if k == 1 else 0.0
    log_probability = math.log(k) + math.log(p) + (k - 1) * math.log1p(-p)
    return math.exp(log_probability)


def lemma_2_6_window(k: int, n: int, beta: float = DEFAULT_BETA) -> tuple[float, float]:
    """The no-CD "useful probability" window of Lemma 2.6.

    Probabilities outside ``[1/(beta k log2 n), beta log2 n / k]`` succeed
    with probability below :func:`lemma_2_6_threshold`.  The upper end is
    clamped to 1.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    log_n = math.log2(n)
    low = 1.0 / (beta * k * log_n)
    high = min(1.0, beta * log_n / k)
    return low, high


def lemma_2_6_threshold(n: int) -> float:
    """The failure threshold ``1 / (2 log2 n)`` of Lemma 2.6."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    return 1.0 / (2.0 * math.log2(n))


def lemma_2_10_window(
    k: int, n: int, beta: float = DEFAULT_BETA
) -> tuple[float, float]:
    """The CD window of Lemma 2.10: ``[1/(beta k llog n), beta llog n / k]``."""
    if n < 4:
        raise ValueError(f"n must be >= 4 for log log n >= 1, got {n}")
    loglog_n = math.log2(math.log2(n))
    low = 1.0 / (beta * k * max(loglog_n, 1.0))
    high = min(1.0, beta * max(loglog_n, 1.0) / k)
    return low, high


def lemma_2_10_threshold(n: int) -> float:
    """The failure threshold ``1 / (2 log2 log2 n)`` of Lemma 2.10."""
    if n < 4:
        raise ValueError(f"n must be >= 4, got {n}")
    return 1.0 / (2.0 * max(math.log2(math.log2(n)), 1.0))


def lemma_2_13_lower_bound() -> float:
    """The in-window success floor of Lemma 2.13: ``1/8``."""
    return 1.0 / 8.0


def window_violation(
    k: int,
    n: int,
    p: float,
    *,
    window: tuple[float, float],
    threshold: float,
) -> float | None:
    """Check one (k, p) point against a lemma window.

    Returns ``None`` when the lemma's claim holds at this point (``p`` is
    inside the window, or the success probability is below ``threshold``),
    otherwise the violating success probability.  Shared by the Lemma 2.6
    and 2.10 sweeps.
    """
    del n  # The window/threshold already encode n; kept for call-site clarity.
    low, high = window
    if low <= p <= high:
        return None
    probability = single_success_probability(k, p)
    if probability < threshold:
        return None
    return probability
