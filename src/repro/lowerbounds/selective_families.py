"""Strongly selective families (Definition 3.1, Theorem 3.2).

A family ``F`` of subsets of ``[n]`` is ``(n, k)``-*strongly selective*
when for every ``Z`` with ``|Z| <= k`` and every ``z in Z`` some set
``F in F`` satisfies ``Z ∩ F = {z}``.  The paper leans on the
Clementi-Monti-Silvestri lower bound [5]: for ``k >= sqrt(2n)`` any such
family has at least ``n`` sets - the engine behind Theorem 3.3's
``b(n) >= log n`` advice bound.

This module provides:

* :func:`is_strongly_selective` - exhaustive verifier (small ``n``);
* :func:`random_selectivity_counterexample` - randomized refuter for
  larger instances;
* constructions: :func:`singleton_family` (the trivial optimal for
  ``k = n``), :func:`bit_family` (size ``2 ceil(log2 n)`` for ``k = 2``),
  and :func:`polynomial_family` (the classic ``O((k log n / log k)^2)``
  construction via polynomial evaluation over prime fields);
* :func:`exhaustive_minimum_family_size` - brute-force minimal family
  size for tiny ``n``, used to certify Theorem 3.2's ``>= n`` claim
  exactly where exhaustive search is feasible.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Collection

import numpy as np

__all__ = [
    "is_strongly_selective",
    "find_unselected_pair",
    "random_selectivity_counterexample",
    "singleton_family",
    "bit_family",
    "polynomial_family",
    "exhaustive_minimum_family_size",
    "theorem_3_2_threshold",
]


def theorem_3_2_threshold(n: int) -> float:
    """The ``k >= sqrt(2n)`` threshold above which ``|F| >= n`` (Thm 3.2)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return math.sqrt(2 * n)


def _normalize_family(family: Collection[Collection[int]]) -> list[frozenset[int]]:
    return [frozenset(member) for member in family]


def find_unselected_pair(
    family: Collection[Collection[int]], n: int, k: int
) -> tuple[frozenset[int], int] | None:
    """A witness ``(Z, z)`` with no ``F`` such that ``Z ∩ F = {z}``.

    Exhaustive over all ``Z`` with ``|Z| <= k``; cost ``O(n^k)`` - intended
    for small instances.  Returns ``None`` when the family is
    ``(n, k)``-strongly selective.
    """
    if not 1 <= k <= n:
        raise ValueError(f"k must be in 1..{n}, got {k}")
    sets = _normalize_family(family)
    universe = range(n)
    for size in range(1, k + 1):
        for z_tuple in itertools.combinations(universe, size):
            z = frozenset(z_tuple)
            for element in z_tuple:
                if not any(z & member == {element} for member in sets):
                    return z, element
    return None


def is_strongly_selective(
    family: Collection[Collection[int]], n: int, k: int
) -> bool:
    """Exhaustive check of Definition 3.1 (small ``n`` only)."""
    return find_unselected_pair(family, n, k) is None


def random_selectivity_counterexample(
    family: Collection[Collection[int]],
    n: int,
    k: int,
    rng: np.random.Generator,
    *,
    trials: int = 1000,
) -> tuple[frozenset[int], int] | None:
    """Randomized refuter: sample ``Z``s and elements looking for a witness.

    One-sided: a returned witness definitely violates selectivity; ``None``
    only means no violation was *found*.  Used to spot-check the
    constructions at sizes where exhaustion is infeasible.
    """
    sets = _normalize_family(family)
    for _ in range(trials):
        size = int(rng.integers(1, k + 1))
        z = frozenset(int(x) for x in rng.choice(n, size=size, replace=False))
        element = int(rng.choice(sorted(z)))
        if not any(z & member == {element} for member in sets):
            return z, element
    return None


def singleton_family(n: int) -> list[frozenset[int]]:
    """``{{0}, ..., {n-1}}``: ``(n, n)``-strongly selective with size ``n``.

    Optimal for ``k >= sqrt(2n)`` by Theorem 3.2 - this is the object that
    pins non-interactive advice at ``log n`` bits.
    """
    return [frozenset({element}) for element in range(n)]


def bit_family(n: int) -> list[frozenset[int]]:
    """Bit-mask family: ``(n, 2)``-strongly selective with ``2 ceil(log n)``
    sets.

    For each bit position ``j``, the family holds the set of ids with bit
    ``j`` set and the set with bit ``j`` clear.  Any two distinct ids
    differ in some bit, and the set selecting that bit value of ``z``
    isolates it - the standard small-``k`` separation showing strong
    selectivity is cheap below the Theorem 3.2 threshold.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    width = max(1, math.ceil(math.log2(n)))
    family: list[frozenset[int]] = []
    for bit in range(width):
        ones = frozenset(x for x in range(n) if (x >> bit) & 1)
        zeros = frozenset(x for x in range(n) if not (x >> bit) & 1)
        family.append(ones)
        family.append(zeros)
    return family


def _is_prime(value: int) -> bool:
    if value < 2:
        return False
    if value < 4:
        return True
    if value % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


def _next_prime(value: int) -> int:
    candidate = max(value, 2)
    while not _is_prime(candidate):
        candidate += 1
    return candidate


def polynomial_family(n: int, k: int) -> list[frozenset[int]]:
    """The polynomial-evaluation ``(n, k)``-strongly selective family.

    Identify each id with a polynomial of degree ``< d`` over ``F_q``
    (its base-``q`` digits as coefficients) and take the sets
    ``F_{a,b} = {x : poly_x(a) = b}`` for all ``a, b in F_q``.  Two
    distinct degree-``<d`` polynomials agree on at most ``d - 1`` points,
    so choosing a prime ``q > (k - 1)(d - 1)`` with ``q^d >= n`` leaves,
    for every ``z`` in a set ``Z`` of size ``<= k``, an evaluation point
    where ``z`` disagrees with all others - the set at that point isolates
    ``z``.  Size ``q^2 = O((k log n / log k)^2)``.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if not 1 <= k <= n:
        raise ValueError(f"k must be in 1..{n}, got {k}")
    q = 2
    while True:
        q = _next_prime(q)
        degree = max(1, math.ceil(math.log(n) / math.log(q)))
        if q > (k - 1) * (degree - 1) and q**degree >= n:
            break
        q += 1

    def digits(value: int) -> list[int]:
        output = []
        for _ in range(degree):
            output.append(value % q)
            value //= q
        return output

    coefficients = [digits(x) for x in range(n)]

    def evaluate(poly: list[int], point: int) -> int:
        result = 0
        for coefficient in reversed(poly):
            result = (result * point + coefficient) % q
        return result

    family: list[frozenset[int]] = []
    for a in range(q):
        values = [evaluate(coefficients[x], a) for x in range(n)]
        for b in range(q):
            members = frozenset(x for x in range(n) if values[x] == b)
            if members:
                family.append(members)
    return family


def exhaustive_minimum_family_size(n: int, k: int, *, max_size: int) -> int | None:
    """Smallest ``(n, k)``-strongly-selective family size, by brute force.

    Searches all families of size up to ``max_size`` drawn from the
    non-empty subsets of ``[n]``; returns the minimal size or ``None`` if
    none exists within the cap.  Exponential - callers keep ``n <= 5``;
    with ``k >= sqrt(2n)`` and ``max_size >= n``, Theorem 3.2 predicts
    the result is exactly ``n`` (the singleton family is witness).
    """
    if n > 6:
        raise ValueError(
            f"exhaustive search is infeasible beyond n=6 (got n={n})"
        )
    candidates = [
        frozenset(z)
        for size in range(1, n + 1)
        for z in itertools.combinations(range(n), size)
    ]
    for family_size in range(1, max_size + 1):
        for family in itertools.combinations(candidates, family_size):
            if is_strongly_selective(family, n, k):
                return family_size
    return None
