"""Constructive lower-bound machinery from the paper's proofs.

Everything here is an *executable* version of a proof object: range
finding (the intermediate game), RF-Construction and the CD tree
construction (algorithm -> strategy transforms), target-distance coding
(strategy -> prefix code), the success-probability lemmas, strongly
selective families, non-interactive contention resolution, and the
closed-form bound formulas of Tables 1 and 2.
"""

from .bounds import (
    log2_clamped,
    loglog,
    logloglog,
    loglogloglog,
    table1_cd_lower,
    table1_cd_upper,
    table1_nocd_lower,
    table1_nocd_upper,
    table2_det_cd_lower,
    table2_det_cd_upper,
    table2_det_nocd_lower,
    table2_det_nocd_upper,
    table2_rand_cd,
    table2_rand_nocd,
)
from .parallel_advice import ParallelAdviceProtocol, parallel_advice_protocol
from .noninteractive import (
    NonInteractiveScheme,
    exhaustive_minimum_weak_family_size,
    is_weakly_selective,
    scheme_from_protocol,
    theorem_3_3_bound,
    verify_scheme,
)
from .range_finding import (
    LabeledBinaryTree,
    SequenceRangeFinder,
    default_sequence_tolerance,
    default_tree_tolerance,
)
from .rf_construction import guess_from_probability, rf_construction, rf_range_finder
from .selective_families import (
    bit_family,
    exhaustive_minimum_family_size,
    find_unselected_pair,
    is_strongly_selective,
    polynomial_family,
    random_selectivity_counterexample,
    singleton_family,
    theorem_3_2_threshold,
)
from .success_bounds import (
    lemma_2_6_threshold,
    lemma_2_6_window,
    lemma_2_10_threshold,
    lemma_2_10_window,
    lemma_2_13_lower_bound,
    single_success_probability,
    window_violation,
)
from .target_distance_coding import (
    SequenceTargetDistanceCode,
    TreeTargetDistanceCode,
    elias_gamma_decode,
    elias_gamma_encode,
)
from .tree_construction import (
    build_range_finding_tree,
    canonical_insert_depth,
    canonical_range_tree,
    relabel_with_guesses,
    unfold_probability_tree,
)

__all__ = [
    # range finding
    "SequenceRangeFinder",
    "LabeledBinaryTree",
    "default_sequence_tolerance",
    "default_tree_tolerance",
    # constructions
    "rf_construction",
    "rf_range_finder",
    "guess_from_probability",
    "unfold_probability_tree",
    "relabel_with_guesses",
    "canonical_range_tree",
    "canonical_insert_depth",
    "build_range_finding_tree",
    # coding
    "elias_gamma_encode",
    "elias_gamma_decode",
    "SequenceTargetDistanceCode",
    "TreeTargetDistanceCode",
    # success-probability lemmas
    "single_success_probability",
    "lemma_2_6_window",
    "lemma_2_6_threshold",
    "lemma_2_10_window",
    "lemma_2_10_threshold",
    "lemma_2_13_lower_bound",
    "window_violation",
    # selective families
    "is_strongly_selective",
    "find_unselected_pair",
    "random_selectivity_counterexample",
    "singleton_family",
    "bit_family",
    "polynomial_family",
    "exhaustive_minimum_family_size",
    "theorem_3_2_threshold",
    # parallel-advice reduction (Theorem 3.6)
    "parallel_advice_protocol",
    "ParallelAdviceProtocol",
    # non-interactive CR
    "NonInteractiveScheme",
    "verify_scheme",
    "is_weakly_selective",
    "exhaustive_minimum_weak_family_size",
    "scheme_from_protocol",
    "theorem_3_3_bound",
    # closed-form bounds
    "log2_clamped",
    "loglog",
    "logloglog",
    "loglogloglog",
    "table1_nocd_lower",
    "table1_nocd_upper",
    "table1_cd_lower",
    "table1_cd_upper",
    "table2_det_nocd_lower",
    "table2_det_nocd_upper",
    "table2_det_cd_lower",
    "table2_det_cd_upper",
    "table2_rand_nocd",
    "table2_rand_cd",
]
