"""Target-distance coding: range-finding strategies as channel codes.

This is the bridge the paper's lower bounds walk across: a range-finding
strategy yields a uniquely decodable code for the source ``c(X)``, so
Shannon's Source Coding Theorem lower-bounds the strategy's expected
complexity through the code's expected length.

* **Sequence codes** (Lemma 2.5): to send a target ``x``, transmit the
  pair ``(r, d)`` - the first solving position ``r`` and the signed
  distance ``d = x - S[r]``.  Expected length ``<= E[log Z] + O(log(alpha
  log log n))``; since the source coding theorem forces expected length
  ``>= H``, Jensen's inequality yields
  ``E[Z] >= 2^H / (4 alpha log log n)``.

* **Tree codes** (Lemma 2.9): transmit the root path of the shallowest
  solving node plus the distance, giving
  ``E[Z] >= H - O(log log log log n)``.

Implementation note (documented deviation): the paper's codes transmit a
raw position/path whose *length* the receiver cannot infer, so as written
they are not uniquely decodable when concatenated.  We make them so with
an Elias-gamma length header: positions are gamma-coded directly, and
tree paths are prefixed with a gamma-coded depth.  The header costs
``O(log r)`` / ``O(log h)`` bits - asymptotically *absorbed* by the
``E[log Z]`` term in the sequence case and adding only
``O(log log log n)`` (vs the paper's ``O(log log log log n)``) in the
tree case.  The measured-vs-claimed gap is reported by the ``T1-*-LOW``
experiments.
"""

from __future__ import annotations

import math

from ..infotheory.condense import CondensedDistribution
from .range_finding import LabeledBinaryTree, SequenceRangeFinder

__all__ = [
    "elias_gamma_encode",
    "elias_gamma_decode",
    "SequenceTargetDistanceCode",
    "TreeTargetDistanceCode",
]


def elias_gamma_encode(value: int) -> str:
    """Elias gamma code for a positive integer: prefix-free over ``Z+``.

    ``floor(log2 value)`` zeros followed by the binary expansion; length
    ``2 floor(log2 value) + 1``.
    """
    if value < 1:
        raise ValueError(f"Elias gamma encodes positive integers, got {value}")
    binary = format(value, "b")
    return "0" * (len(binary) - 1) + binary


def elias_gamma_decode(bits: str, start: int = 0) -> tuple[int, int]:
    """Decode one gamma codeword from ``bits`` at offset ``start``.

    Returns ``(value, next_offset)``.  Raises ``ValueError`` on truncated
    input.
    """
    zeros = 0
    position = start
    while position < len(bits) and bits[position] == "0":
        zeros += 1
        position += 1
    end = position + zeros + 1
    if position >= len(bits) or end > len(bits):
        raise ValueError("truncated Elias gamma codeword")
    return int(bits[position:end], 2), end


def _distance_width(tolerance: float) -> int:
    """Bits needed for an absolute distance in ``0..floor(tolerance)``."""
    magnitude = int(math.floor(tolerance))
    return max(1, magnitude.bit_length()) if magnitude > 0 else 1


class SequenceTargetDistanceCode:
    """The Lemma 2.5 code built from a sequence range finder.

    Codeword for target ``x``: ``gamma(r) + sign + |d|`` where ``r`` is the
    first solving position, ``d = x - S[r]``, sign is one bit and ``|d|``
    is fixed-width ``ceil(log2(floor(tolerance)+1))`` bits.
    """

    def __init__(self, finder: SequenceRangeFinder) -> None:
        self.finder = finder
        self._width = _distance_width(finder.tolerance)

    def encode(self, target: int) -> str:
        """Codeword for ``target``; raises if the finder never solves it."""
        position = self.finder.solve_time(target)
        if position is None:
            raise ValueError(f"sequence never solves target {target}")
        distance = target - self.finder.sequence[position - 1]
        sign = "1" if distance < 0 else "0"
        magnitude = abs(distance)
        if magnitude >= 2**self._width:
            raise AssertionError(
                "solving distance exceeds the tolerance width - "
                "solve_time/tolerance are inconsistent"
            )
        return elias_gamma_encode(position) + sign + format(
            magnitude, "b"
        ).zfill(self._width)

    def decode(self, bits: str, start: int = 0) -> tuple[int, int]:
        """Decode one codeword; returns ``(target, next_offset)``."""
        position, offset = elias_gamma_decode(bits, start)
        if offset + 1 + self._width > len(bits):
            raise ValueError("truncated target-distance codeword")
        sign = -1 if bits[offset] == "1" else 1
        magnitude = int(bits[offset + 1 : offset + 1 + self._width], 2)
        target = self.finder.sequence[position - 1] + sign * magnitude
        return target, offset + 1 + self._width

    def code_length(self, target: int) -> int:
        """Length in bits of the codeword for ``target``."""
        return len(self.encode(target))

    def expected_length(self, distribution: CondensedDistribution) -> float:
        """``E[len]`` under ``c(X)``; >= ``H(c(X))`` by Theorem 2.2."""
        total = 0.0
        for target in distribution.support():
            total += distribution.probability(target) * self.code_length(target)
        return total


class TreeTargetDistanceCode:
    """The Lemma 2.9 code built from a tree range finder.

    Codeword for target ``x``: ``gamma(h+1) + path + sign + |d|`` where
    ``path`` is the root path (of length ``h``) to the shallowest solving
    node and ``d = x - label``.  The gamma depth header is our unique-
    decodability fix (see module docstring).
    """

    def __init__(self, tree: LabeledBinaryTree, tolerance: float) -> None:
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        self.tree = tree
        self.tolerance = float(tolerance)
        self._width = _distance_width(tolerance)

    def encode(self, target: int) -> str:
        """Codeword for ``target``; raises if no tree node solves it."""
        path = self.tree.solve_path(target, self.tolerance)
        if path is None:
            raise ValueError(f"tree never solves target {target}")
        distance = target - self.tree.label(path)
        sign = "1" if distance < 0 else "0"
        magnitude = abs(distance)
        if magnitude >= 2**self._width:
            raise AssertionError(
                "solving distance exceeds the tolerance width - "
                "solve_path/tolerance are inconsistent"
            )
        return (
            elias_gamma_encode(len(path) + 1)
            + path
            + sign
            + format(magnitude, "b").zfill(self._width)
        )

    def decode(self, bits: str, start: int = 0) -> tuple[int, int]:
        """Decode one codeword; returns ``(target, next_offset)``."""
        depth_plus_one, offset = elias_gamma_decode(bits, start)
        depth = depth_plus_one - 1
        end_of_path = offset + depth
        if end_of_path + 1 + self._width > len(bits):
            raise ValueError("truncated tree target-distance codeword")
        path = bits[offset:end_of_path]
        if path not in self.tree:
            raise ValueError(f"decoded path {path!r} not present in the tree")
        sign = -1 if bits[end_of_path] == "1" else 1
        magnitude = int(
            bits[end_of_path + 1 : end_of_path + 1 + self._width], 2
        )
        return self.tree.label(path) + sign * magnitude, (
            end_of_path + 1 + self._width
        )

    def code_length(self, target: int) -> int:
        """Length in bits of the codeword for ``target``."""
        return len(self.encode(target))

    def expected_length(self, distribution: CondensedDistribution) -> float:
        """``E[len]`` under ``c(X)``; >= ``H(c(X))`` by Theorem 2.2."""
        total = 0.0
        for target in distribution.support():
            total += distribution.probability(target) * self.code_length(target)
        return total
