"""The Theorem 3.6/3.7 reduction: advice protocols run for every string.

The randomized advice lower bounds reduce to the no-advice worst case by a
simple compiler: "we could use it to solve contention resolution with no
advice in ``2^{b(n)} t(n)`` rounds by simply trying all ``2^{b(n)}``
advice strings in parallel".  This module executes that compiler:

:func:`parallel_advice_protocol` takes a family of uniform protocols
indexed by advice string and interleaves all ``2^b`` of them round-robin
into a single *advice-free* uniform protocol.  Round ``r`` plays round
``ceil(r / 2^b)`` of the protocol for advice string ``(r-1) mod 2^b``.

Because one of the strings is the correct advice, the compiled protocol
solves within ``2^b`` times the advised protocol's round count - so if an
advice protocol beat ``Theta(log n / 2^b)``, the compiled protocol would
beat the no-advice ``Omega(log n)`` bound [18], a contradiction.  The
tests run the compiled protocol and verify the ``2^b``-factor accounting
empirically.
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.advice import id_to_bits
from ..core.feedback import Observation
from ..core.protocol import ScheduleExhausted, UniformProtocol, UniformSession

__all__ = ["parallel_advice_protocol", "ParallelAdviceProtocol"]


class _ParallelSession(UniformSession):
    def __init__(self, inner: list[UniformSession]) -> None:
        self._inner = inner
        self._position = 0
        self._exhausted = [False] * len(inner)

    def next_probability(self) -> float:
        attempts = 0
        while attempts < len(self._inner):
            index = self._position % len(self._inner)
            self._position += 1
            attempts += 1
            if self._exhausted[index]:
                continue
            try:
                probability = self._inner[index].next_probability()
            except ScheduleExhausted:
                self._exhausted[index] = True
                continue
            self._active = index
            return probability
        raise ScheduleExhausted(
            "all advice-indexed sub-protocols exhausted"
        )

    def observe(self, observation: Observation) -> None:
        self._inner[self._active].observe(observation)


class ParallelAdviceProtocol(UniformProtocol):
    """Round-robin interleaving of the ``2^b`` advice-indexed protocols.

    An *advice-free* uniform protocol: it needs no oracle because it
    hedges across every possible advice string.  Exhausted sub-protocols
    (one-shot inner protocols that gave up) are skipped; the session
    raises only when every sub-protocol has exhausted.
    """

    def __init__(
        self,
        advice_bits: int,
        protocol_for_advice: Callable[[str], UniformProtocol],
        *,
        name: str | None = None,
    ) -> None:
        if advice_bits < 0:
            raise ValueError(f"advice bits must be >= 0, got {advice_bits}")
        self.advice_bits = advice_bits
        strings = (
            [""]
            if advice_bits == 0
            else [
                id_to_bits(value, advice_bits)
                for value in range(2**advice_bits)
            ]
        )
        self._protocols = [protocol_for_advice(string) for string in strings]
        self.requires_collision_detection = any(
            protocol.requires_collision_detection
            for protocol in self._protocols
        )
        self.name = name or f"parallel-advice(b={advice_bits})"

    @property
    def fan_out(self) -> int:
        """Number of interleaved sub-protocols, ``2^b``."""
        return len(self._protocols)

    def session(self) -> _ParallelSession:
        return _ParallelSession(
            [protocol.session() for protocol in self._protocols]
        )


def parallel_advice_protocol(
    advice_bits: int,
    protocol_for_advice: Callable[[str], UniformProtocol],
    *,
    name: str | None = None,
) -> ParallelAdviceProtocol:
    """Compile an advice-indexed protocol family into an advice-free one.

    ``protocol_for_advice`` receives each of the ``2^advice_bits`` strings
    and returns the uniform protocol the players would run given that
    advice (e.g. ``TruncatedDecayProtocol`` for the decoded block).
    """
    return ParallelAdviceProtocol(
        advice_bits, protocol_for_advice, name=name
    )
