"""Closed-form calculators for every bound in Tables 1 and 2.

One function per table cell (plus the iterated-log helpers they need), so
experiments, tests and EXPERIMENTS.md all evaluate the paper's formulas
through a single audited implementation.  Lower bounds omit their
unknowable big-Omega constants - they are *shape* references the measured
curves are regressed against, as described in DESIGN.md.
"""

from __future__ import annotations

import math

__all__ = [
    "log2_clamped",
    "loglog",
    "logloglog",
    "loglogloglog",
    "table1_nocd_lower",
    "table1_nocd_upper",
    "table1_cd_lower",
    "table1_cd_upper",
    "table2_det_nocd_lower",
    "table2_det_nocd_upper",
    "table2_det_cd_lower",
    "table2_det_cd_upper",
    "table2_rand_nocd",
    "table2_rand_cd",
]


def log2_clamped(value: float, floor: float = 1.0) -> float:
    """``max(log2(value), floor)`` - guards iterated logs of small inputs."""
    if value <= 0:
        raise ValueError(f"logarithm of non-positive value {value}")
    return max(math.log2(value), floor)


def loglog(n: float) -> float:
    """``log2 log2 n``, clamped to at least 1."""
    return log2_clamped(log2_clamped(n))


def logloglog(n: float) -> float:
    """``log2 log2 log2 n``, clamped to at least 1."""
    return log2_clamped(loglog(n))


def loglogloglog(n: float) -> float:
    """``log2 log2 log2 log2 n``, clamped to at least 1."""
    return log2_clamped(logloglog(n))


# ----------------------------------------------------------------------
# Table 1: contention resolution with network size predictions
# ----------------------------------------------------------------------
def table1_nocd_lower(entropy_bits: float, n: int) -> float:
    """No-CD lower bound shape: ``2^H / log log n`` (Theorem 2.4).

    Expected rounds for any uniform algorithm when the sizes follow a
    distribution of condensed entropy ``entropy_bits``; constant omitted.
    """
    if entropy_bits < 0:
        raise ValueError(f"entropy must be >= 0, got {entropy_bits}")
    return 2.0**entropy_bits / loglog(n)


def table1_nocd_upper(entropy_bits: float, divergence_bits: float = 0.0) -> float:
    """No-CD upper bound budget: ``2^(2H + 2D)`` (Theorem 2.12).

    Rounds within which sorted probing succeeds with probability >= 1/16;
    with ``divergence_bits = 0`` this is Corollary 2.15's ``2^(2H)``.
    """
    if entropy_bits < 0 or divergence_bits < 0:
        raise ValueError("entropy and divergence must be >= 0")
    return 2.0 ** (2.0 * entropy_bits + 2.0 * divergence_bits)


def table1_cd_lower(entropy_bits: float, n: int, *, slack_constant: float = 1.0) -> float:
    """CD lower bound shape: ``H/2 - c * log log log log n`` (Theorem 2.8).

    Clamped at 0: for low entropies the additive slack swallows the bound,
    exactly as in the paper.
    """
    if entropy_bits < 0:
        raise ValueError(f"entropy must be >= 0, got {entropy_bits}")
    return max(0.0, entropy_bits / 2.0 - slack_constant * loglogloglog(n))


def table1_cd_upper(entropy_bits: float, divergence_bits: float = 0.0) -> float:
    """CD upper bound budget: ``(H + D + 1)^2`` (Theorem 2.16).

    With ``divergence_bits = 0`` this is Corollary 2.18's ``O(H^2)``
    (the ``+1`` is Theorem 2.3's coding slack, kept explicit so the
    formula is a usable budget at small ``H``).
    """
    if entropy_bits < 0 or divergence_bits < 0:
        raise ValueError("entropy and divergence must be >= 0")
    base = entropy_bits + divergence_bits + 1.0
    return base * base


# ----------------------------------------------------------------------
# Table 2: contention resolution with perfect advice
# ----------------------------------------------------------------------
def table2_det_nocd_lower(n: int, advice_bits: float) -> float:
    """Deterministic no-CD lower bound: ``n^(1-alpha) / 2`` (Theorem 3.4).

    ``alpha = advice_bits / log2 n``; equivalently ``n / 2^b / 2``.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if advice_bits < 0:
        raise ValueError(f"advice must be >= 0 bits, got {advice_bits}")
    return max(1.0, n / 2.0**advice_bits / 2.0)


def table2_det_nocd_upper(n: int, advice_bits: int) -> float:
    """Deterministic no-CD upper bound: ``2^(ceil(log2 n) - b)`` rounds.

    The candidate-scan protocol's exact worst case (Section 3.2's tight
    construction).
    """
    width = max(1, math.ceil(math.log2(n)))
    return float(2 ** max(0, width - advice_bits))


def table2_det_cd_lower(n: int, advice_bits: float) -> float:
    """Deterministic CD lower bound: ``log2 n - b`` (Theorem 3.5)."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    return max(0.0, math.log2(n) - advice_bits)


def table2_det_cd_upper(n: int, advice_bits: int) -> float:
    """Deterministic CD upper bound: ``ceil(log2 n) - b + 1`` rounds.

    The tree-descent protocol's exact worst case.
    """
    width = max(1, math.ceil(math.log2(n)))
    return float(max(1, width - advice_bits + 1))


def table2_rand_nocd(n: int, advice_bits: float) -> float:
    """Randomized no-CD tight bound shape: ``log2 n / 2^b`` (Theorem 3.6).

    Clamped at 1 (no protocol finishes in under one round).
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    return max(1.0, math.log2(n) / 2.0**advice_bits)


def table2_rand_cd(n: int, advice_bits: float) -> float:
    """Randomized CD tight bound shape: ``log log n - b`` (Theorem 3.7).

    Clamped at 1: for ``b >= log log n`` the paper solves in ``O(1)``.
    """
    if n < 4:
        raise ValueError(f"n must be >= 4, got {n}")
    return max(1.0, loglog(n) - advice_bits)
