"""The range finding problem (Sections 2.3-2.4).

Range finding is the intermediate combinatorial game the paper reduces
contention resolution to: given network size ``n`` and a slack function
``f(n)``, a strategy must produce a value within ``f(n)`` of a hidden
target ``v`` drawn from ``L(n)``.  Two strategy shapes appear:

* a **sequence** ``S`` of values from ``L(n)`` (no-CD reduction,
  Lemma 2.5/2.7): the solve time for target ``v`` is the first position
  ``t`` with ``|S[t] - v| <= f(n)``;
* a labelled **binary tree** (CD reduction, Lemma 2.9/2.11): the solve
  complexity is the depth of the shallowest node whose label is within
  ``f(n)`` of ``v``.

Both carriers support expected-complexity computation against a condensed
distribution, which is the quantity the entropy lower bounds constrain.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from ..infotheory.condense import CondensedDistribution

__all__ = [
    "SequenceRangeFinder",
    "LabeledBinaryTree",
    "default_sequence_tolerance",
    "default_tree_tolerance",
]


def default_sequence_tolerance(n: int, alpha: float = 1.0) -> float:
    """The no-CD reduction's slack ``alpha * log2 log2 n`` (Lemma 2.5).

    Clamped below at 1 so tiny networks (where ``log log n < 1``) keep a
    meaningful tolerance.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    return max(1.0, alpha * math.log2(max(2.0, math.log2(n))))


def default_tree_tolerance(n: int, alpha: float = 1.0) -> float:
    """The CD reduction's slack ``alpha * log2 log2 log2 n`` (Lemma 2.9).

    Clamped below at 1 for small ``n``.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    inner = max(2.0, math.log2(max(2.0, math.log2(n))))
    return max(1.0, alpha * math.log2(inner))


class SequenceRangeFinder:
    """A range-finding strategy in sequence form.

    Parameters
    ----------
    sequence:
        Values from ``L(n)`` (1-based range indices).  Out-of-range values
        are permitted (RF-Construction can emit clamped guesses); they
        simply never solve distant targets.
    tolerance:
        The slack ``f(n)``: position ``t`` solves target ``v`` when
        ``|S[t] - v| <= tolerance``.
    """

    def __init__(self, sequence: Sequence[int], tolerance: float) -> None:
        if not sequence:
            raise ValueError("sequence must be non-empty")
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        self.sequence = list(sequence)
        self.tolerance = float(tolerance)

    def __len__(self) -> int:
        return len(self.sequence)

    def solve_time(self, target: int) -> int | None:
        """1-based first position solving ``target``; ``None`` if unsolved."""
        for position, value in enumerate(self.sequence, start=1):
            if abs(value - target) <= self.tolerance:
                return position
        return None

    def solve_times(self, targets: Sequence[int]) -> dict[int, int | None]:
        """Solve times for several targets (single pass each)."""
        return {target: self.solve_time(target) for target in targets}

    def expected_time(self, distribution: CondensedDistribution) -> float:
        """``E[Z]``: expected solve position when targets follow ``c(X)``.

        Infinite when any positive-probability target is never solved -
        matching the convention that an unsolved target stalls forever.
        """
        total = 0.0
        for target in distribution.support():
            time = self.solve_time(target)
            if time is None:
                return math.inf
            total += distribution.probability(target) * time
        return total

    def solves_all(self, targets: Sequence[int]) -> bool:
        """Whether every listed target is eventually solved."""
        return all(self.solve_time(target) is not None for target in targets)


class LabeledBinaryTree:
    """A binary tree with integer labels, addressed by history bit strings.

    Nodes are identified by root paths: the empty string is the root, and
    appending ``'0'``/``'1'`` descends left/right (exactly the collision-
    history addressing of Section 2.4: bit ``i`` is 1 iff round ``i``
    collided).  Depth counts edges, so the root has depth 0 - round ``r``
    of a CD algorithm corresponds to the node at depth ``r - 1``.
    """

    def __init__(self, labels: Mapping[str, int]) -> None:
        if "" not in labels:
            raise ValueError("tree must label the root (empty path)")
        for path in labels:
            if any(bit not in "01" for bit in path):
                raise ValueError(f"malformed path {path!r}")
            if path and path[:-1] not in labels:
                raise ValueError(
                    f"path {path!r} is disconnected (parent missing)"
                )
        self._labels = dict(labels)

    # ------------------------------------------------------------------
    @classmethod
    def complete(cls, depth: int, values: Sequence[int]) -> "LabeledBinaryTree":
        """A complete tree of the given ``depth`` labelled from ``values``.

        Labels are assigned in BFS order, cycling through ``values`` if the
        tree has more nodes than values - guaranteeing every value appears
        when ``2^(depth+1) - 1 >= len(values)``.  This realises the
        canonical tree ``T*`` of Section 2.4 ("labelled with all the values
        in L(n)").
        """
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        if not values:
            raise ValueError("values must be non-empty")
        labels: dict[str, int] = {}
        queue = [""]
        index = 0
        while queue:
            path = queue.pop(0)
            labels[path] = values[index % len(values)]
            index += 1
            if len(path) < depth:
                queue.append(path + "0")
                queue.append(path + "1")
        return cls(labels)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, path: str) -> bool:
        return path in self._labels

    def label(self, path: str) -> int:
        """Label of the node at ``path``."""
        return self._labels[path]

    def paths(self) -> list[str]:
        """All node paths, shortest (and then lexicographically) first."""
        return sorted(self._labels, key=lambda path: (len(path), path))

    def max_depth(self) -> int:
        """Depth (in edges) of the deepest node."""
        return max(len(path) for path in self._labels)

    def solve_path(self, target: int, tolerance: float) -> str | None:
        """Path of the shallowest node within ``tolerance`` of ``target``.

        Ties at equal depth break lexicographically for determinism.
        Returns ``None`` when no node qualifies.
        """
        best: str | None = None
        for path, value in self._labels.items():
            if abs(value - target) <= tolerance:
                if best is None or (len(path), path) < (len(best), best):
                    best = path
        return best

    def solve_depth(self, target: int, tolerance: float) -> int | None:
        """Depth (edges) of the shallowest solving node, or ``None``."""
        path = self.solve_path(target, tolerance)
        return None if path is None else len(path)

    def expected_depth(
        self, distribution: CondensedDistribution, tolerance: float
    ) -> float:
        """``E[Z]``: expected solve depth when targets follow ``c(X)``.

        Infinite when some positive-probability target has no solving node.
        """
        total = 0.0
        for target in distribution.support():
            depth = self.solve_depth(target, tolerance)
            if depth is None:
                return math.inf
            total += distribution.probability(target) * depth
        return total

    def with_subtree(
        self, at: str, subtree: "LabeledBinaryTree"
    ) -> "LabeledBinaryTree":
        """A new tree with ``subtree`` grafted at path ``at``.

        The subtree's root replaces the node at ``at`` if present (its
        descendants are discarded) - the paper's surgery that inserts the
        canonical tree ``T*`` along the leftmost path of ``T_A``.
        """
        if at and at[:-1] not in self._labels:
            raise ValueError(f"graft point {at!r} has no parent in the tree")
        pruned = {
            path: value
            for path, value in self._labels.items()
            if not path.startswith(at)
        }
        for path, value in subtree._labels.items():
            pruned[at + path] = value
        return LabeledBinaryTree(pruned)
