"""CD algorithm -> labelled range-finding tree (Section 2.4's construction).

A uniform CD algorithm is a function from collision histories to
probabilities; unfolding it to depth ``d`` yields a binary tree ``T1``
whose node at path ``b_1..b_r`` carries the probability the algorithm
would use in round ``r + 1`` after that history.  The construction then:

1. relabels each probability ``l`` with its range guess
   ``ceil(log2(1/l))`` to obtain ``T2``;
2. grafts the canonical complete tree ``T*`` of depth
   ``ceil(log2 log2 n)`` - labelled with *all* of ``L(n)`` - below the
   node at the end of ``T2``'s leftmost path of length
   ``ceil(log2 log2 n)``, giving the final tree ``T_A``.

The graft guarantees every range appears by depth ``2 ceil(log log n)``
(Case 2 of Lemma 2.11); the relabelled prefix guarantees fast-solving
sizes have a nearby guess at small depth (Case 1, via Lemma 2.10).
Lemma 2.11: ``T_A`` solves ``(n, alpha*log log log n)``-range finding in
expected depth ``<= 2 t_X(n)``.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from ..core.protocol import ScheduleExhausted
from ..core.uniform import HistoryPolicy
from ..infotheory.condense import num_ranges
from .range_finding import LabeledBinaryTree
from .rf_construction import guess_from_probability

__all__ = [
    "unfold_probability_tree",
    "relabel_with_guesses",
    "canonical_range_tree",
    "build_range_finding_tree",
    "canonical_insert_depth",
]


def canonical_insert_depth(n: int) -> int:
    """Depth ``ceil(log2 log2 n)`` at which ``T*`` is grafted."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    return max(1, math.ceil(math.log2(max(2.0, math.log2(n)))))


def unfold_probability_tree(
    policy: HistoryPolicy | Callable[[str], float], depth: int
) -> dict[str, float]:
    """``T1``: probabilities at every history up to ``depth`` edges.

    ``policy`` may be a :class:`~repro.core.uniform.HistoryPolicy` or any
    callable from history strings to probabilities.  Histories on which
    the policy is undefined (one-shot protocols that exhausted) are
    omitted, together with their descendants.
    """
    query = policy.probability if isinstance(policy, HistoryPolicy) else policy
    labels: dict[str, float] = {}
    frontier = [""]
    while frontier:
        path = frontier.pop()
        if len(path) > depth:
            continue
        try:
            labels[path] = float(query(path))
        except ScheduleExhausted:
            continue
        if len(path) < depth:
            frontier.append(path + "0")
            frontier.append(path + "1")
    if "" not in labels:
        raise ValueError("policy is undefined even at the empty history")
    return labels


def relabel_with_guesses(
    probability_tree: dict[str, float], n: int
) -> dict[str, int]:
    """``T2``: replace each probability label ``l`` by ``ceil(log2(1/l))``."""
    return {
        path: guess_from_probability(probability, n)
        for path, probability in probability_tree.items()
    }


def canonical_range_tree(n: int) -> LabeledBinaryTree:
    """``T*``: complete tree of depth ``ceil(log log n)`` holding all ranges.

    A complete binary tree of depth ``d = ceil(log2 L)`` has
    ``2^(d+1) - 1 >= L`` nodes, so BFS assignment covers every range.
    """
    count = num_ranges(n)
    depth = max(0, math.ceil(math.log2(count)) if count > 1 else 0)
    return LabeledBinaryTree.complete(depth, list(range(1, count + 1)))


def build_range_finding_tree(
    policy: HistoryPolicy | Callable[[str], float],
    n: int,
    *,
    extra_depth: int = 0,
) -> LabeledBinaryTree:
    """The full construction: ``T_A`` from a uniform CD algorithm.

    Parameters
    ----------
    policy:
        The algorithm in functional form (see
        :func:`repro.protocols.adapters.as_history_policy`).
    n:
        Maximum network size.
    extra_depth:
        Additional unfolding beyond the graft depth; the analysis only
        needs the prefix above the graft, but deeper unfolding gives the
        experiments more of the algorithm's native structure to measure.

    The graft follows the paper: walk ``T2``'s leftmost path (all-silence
    history) to depth ``ceil(log log n)`` and make ``T*``'s root the only
    (left) child of that node.  If the policy exhausts before the graft
    depth on the all-silence path, the graft attaches at the deepest
    defined node of that path instead - only *shortening* solve depths,
    hence conservative for upper-bounding ``E[Z]`` by ``2 t_X(n)``.
    """
    graft_depth = canonical_insert_depth(n)
    unfold_depth = graft_depth + max(0, extra_depth)
    probability_tree = unfold_probability_tree(policy, unfold_depth)
    guesses = relabel_with_guesses(probability_tree, n)
    base = LabeledBinaryTree(guesses)

    leftmost = ""
    while len(leftmost) < graft_depth and (leftmost + "0") in base:
        leftmost += "0"
    graft_at = leftmost + "0"
    return base.with_subtree(graft_at, canonical_range_tree(n))
