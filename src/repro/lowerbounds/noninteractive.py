"""Non-interactive contention resolution (Theorem 3.3 and its reductions).

The deterministic advice lower bounds funnel through a one-round problem:
an algorithm/advice pair solves ``b(n)``-non-interactive contention
resolution when, for *every* participant set ``P``, the ``b(n)``-bit
advice alone causes exactly one member of ``P`` to transmit in round 1.
Theorem 3.3: this forces ``b(n) >= log2 n`` (via the strongly-selective
family bound of Theorem 3.2).

We implement the problem concretely (:class:`NonInteractiveScheme` -
advice function plus per-advice transmitter sets, with an exhaustive
verifier), the *constructive halves* of the paper's reductions
(Theorems 3.4 and 3.5: running a deterministic protocol locally to build
a non-interactive scheme with slightly longer advice), and brute-force
minimal-advice search for tiny ``n``.

A faithfulness note, mirrored in the tests: correctness of a scheme makes
the transmitter-set family a *weakly* selective family ("every ``P`` has
*some* isolated element"), which is what the paper's Theorem 3.3 proof
uses of it; the brute-force search here certifies the resulting
``>= n``-sets / ``>= log n``-bits conclusion exactly for small ``n``.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Callable, Collection, Iterable

import numpy as np

from ..channel.channel import Channel
from ..channel.simulator import run_players
from ..core.advice import AdviceFunction
from ..core.feedback import Feedback, Observation
from ..core.protocol import PlayerProtocol

__all__ = [
    "NonInteractiveScheme",
    "verify_scheme",
    "is_weakly_selective",
    "exhaustive_minimum_weak_family_size",
    "scheme_from_protocol",
    "theorem_3_3_bound",
]


def theorem_3_3_bound(n: int) -> float:
    """Theorem 3.3's advice floor: ``b(n) >= log2 n`` bits."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return math.log2(n)


class NonInteractiveScheme:
    """An advice function plus transmitter sets, one per advice string.

    Parameters
    ----------
    n:
        Number of possible players.
    advice:
        Map from participant sets to advice strings.
    transmitters:
        Map from advice strings to the set ``V(s)`` of players that would
        transmit on receiving ``s``.

    The scheme solves non-interactive contention resolution when
    ``|V(advice(P)) ∩ P| = 1`` for every non-empty ``P``
    (:func:`verify_scheme`).
    """

    def __init__(
        self,
        n: int,
        advice: Callable[[frozenset[int]], str],
        transmitters: Callable[[str], frozenset[int]],
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        self.advice = advice
        self.transmitters = transmitters

    def transmit_set(self, participants: frozenset[int]) -> frozenset[int]:
        """Who transmits in round 1 for participant set ``participants``."""
        return self.transmitters(self.advice(participants)) & participants

    def solves(self, participants: frozenset[int]) -> bool:
        """Whether exactly one participant transmits for this set."""
        return len(self.transmit_set(participants)) == 1


def _all_participant_sets(n: int) -> Iterable[frozenset[int]]:
    for size in range(1, n + 1):
        for combo in itertools.combinations(range(n), size):
            yield frozenset(combo)


def verify_scheme(
    scheme: NonInteractiveScheme,
    *,
    participant_sets: Iterable[frozenset[int]] | None = None,
) -> frozenset[int] | None:
    """First participant set the scheme fails on, or ``None`` if correct.

    Default is exhaustive over all ``2^n - 1`` sets (small ``n``); pass an
    iterable to spot-check larger instances.
    """
    sets = participant_sets or _all_participant_sets(scheme.n)
    for participants in sets:
        if not scheme.solves(participants):
            return participants
    return None


def is_weakly_selective(family: Collection[Collection[int]], n: int) -> bool:
    """Whether every non-empty ``P ⊆ [n]`` has some ``F`` with ``|F∩P| = 1``.

    This is the combinatorial content of a correct non-interactive scheme:
    the advice function may pick, per ``P``, whichever family member
    isolates *some* element.
    """
    sets = [frozenset(member) for member in family]
    for participants in _all_participant_sets(n):
        if not any(len(member & participants) == 1 for member in sets):
            return False
    return True


def exhaustive_minimum_weak_family_size(n: int, *, max_size: int) -> int | None:
    """Minimal family size supporting a correct non-interactive scheme.

    Brute-force over families of subsets of ``[n]``; the minimal size
    equals ``2^b`` for the minimal advice length ``b``, so Theorem 3.3
    predicts a result of at least ``n``.  Exhaustive: keep ``n <= 5``.
    """
    if n > 6:
        raise ValueError(
            f"exhaustive search is infeasible beyond n=6 (got n={n})"
        )
    candidates = [
        frozenset(z)
        for size in range(1, n + 1)
        for z in itertools.combinations(range(n), size)
    ]
    for family_size in range(1, max_size + 1):
        for family in itertools.combinations(candidates, family_size):
            if is_weakly_selective(family, n):
                return family_size
    return None


def scheme_from_protocol(
    protocol: PlayerProtocol,
    advice_function: AdviceFunction,
    n: int,
    channel: Channel,
    *,
    max_rounds: int,
) -> tuple[NonInteractiveScheme, int]:
    """The Theorem 3.4/3.5 reduction, constructively.

    Runs the deterministic ``protocol`` (with its advice function) on a
    noiseless local simulation for each queried participant set, finds the
    solving round ``r``, and packages "replay the execution and fire at
    round ``r``" as a non-interactive scheme.  The returned advice length
    is ``advice_bits + ceil(log2 max_rounds)`` without CD and additionally
    ``+ (r - 1)`` history bits with CD - exactly the paper's accounting.

    Returns ``(scheme, advice_bits_used)`` where ``advice_bits_used`` is
    the worst-case advice length over the sets the scheme has been queried
    on (it is computed lazily and grows as sets are queried; callers
    typically exhaust all sets first via :func:`verify_scheme`).

    Determinism requirement: the protocol must be deterministic - the
    reduction replays executions, which is only meaningful when replays
    agree.  The deterministic advice protocols of Section 3.2 qualify.
    """
    # The rng is irrelevant for deterministic protocols but the engine
    # requires one; a fixed seed documents that nothing depends on it.
    rng = np.random.default_rng(0)
    worst_bits = 0

    cache: dict[frozenset[int], tuple[str, int, str]] = {}

    def analyse(participants: frozenset[int]) -> tuple[str, int, str]:
        """advice, solving round, collision-history bits for ``P``."""
        if participants not in cache:
            base_advice = advice_function.checked_advise(participants, n)
            result = run_players(
                protocol,
                participants,
                n,
                rng,
                channel=channel,
                advice_function=advice_function,
                max_rounds=max_rounds,
                record_trace=True,
            )
            if not result.solved:
                raise ValueError(
                    f"protocol failed to solve within {max_rounds} rounds "
                    f"for participants {sorted(participants)}"
                )
            history = "".join(
                "1" if record.feedback is Feedback.COLLISION else "0"
                for record in result.trace[: result.rounds - 1]
            )
            cache[participants] = (base_advice, result.rounds, history)
        return cache[participants]

    round_bits = max(1, math.ceil(math.log2(max_rounds + 1)))

    def advice(participants: frozenset[int]) -> str:
        nonlocal worst_bits
        base_advice, solving_round, history = analyse(participants)
        encoded_round = format(solving_round, "b").zfill(round_bits)
        if channel.collision_detection:
            # CD needs the collision history to replay (Theorem 3.5); pad
            # to a fixed width so advice strings are self-delimiting.
            padded_history = history.ljust(max_rounds, "0")
            advice_string = base_advice + encoded_round + padded_history
        else:
            # No-CD executions are silent until the solving round
            # (Theorem 3.4), so advice + round index suffice.
            advice_string = base_advice + encoded_round
        worst_bits = max(worst_bits, len(advice_string))
        return advice_string

    def transmitters(advice_string: str) -> frozenset[int]:
        base_bits = advice_function.bits
        base_advice = advice_string[:base_bits]
        solving_round = int(advice_string[base_bits : base_bits + round_bits], 2)
        history = advice_string[base_bits + round_bits :]
        firing: set[int] = set()
        for player_id in range(n):
            session = protocol.session(player_id, n, base_advice, rng=rng)
            transmitted = False
            for round_index in range(1, solving_round + 1):
                transmitted = session.decide()
                if round_index == solving_round:
                    break
                if channel.collision_detection:
                    observation = (
                        Observation.COLLISION
                        if history[round_index - 1] == "1"
                        else Observation.SILENCE
                    )
                else:
                    observation = Observation.QUIET
                session.observe(observation, transmitted=transmitted)
            if transmitted:
                firing.add(player_id)
        return frozenset(firing)

    scheme = NonInteractiveScheme(n, advice, transmitters)
    return scheme, worst_bits
