"""Streaming arrival processes for the open-system driver.

A closed scenario draws one contender count and runs the batch to
completion; the open system instead injects requests *per round* from an
:class:`ArrivalProcess` and lets the live population rise and fall.  The
registry mirrors ``scenarios/workloads.py``:

* ``poisson`` - :class:`PoissonArrivals`, memoryless rate-``rate``
  arrivals per round, the classic offered-load dial.
* ``zipf-hotspot`` - :class:`ZipfHotspotArrivals`, Poisson *events* each
  carrying a heavy-tailed (truncated-Zipf) batch of requests, modelling
  hotspot keys whose fan-in bursts together.
* ``bursty`` / ``trace`` - :class:`ThinnedArrivals` adapters that reuse
  the closed-workload generators (:class:`MarkovBurstArrivals`,
  :class:`TraceArrivals`) as per-round streams, thinned by a Bernoulli
  factor so device-scale counts become per-round request rates.

All processes draw exclusively from the generator handed to
``sample_rounds`` - they hold no RNG of their own - so the driver's
per-trial :class:`numpy.random.SeedSequence` streams fully determine the
traffic and shards stay reproducible.

:class:`ClampedArrivalSizeSource` adapts any arrival process the other
way - into a closed-workload batch-size source - for the satellite
``poisson``/``zipf-hotspot`` workload kinds.
"""

from __future__ import annotations

import copy
import math
from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence

import numpy as np

from ..channel.arrivals import MIN_COUNT, MarkovBurstArrivals, TraceArrivals

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "ZipfHotspotArrivals",
    "ThinnedArrivals",
    "ClampedArrivalSizeSource",
    "ARRIVAL_FAMILIES",
    "arrival_process_from_dict",
]


class ArrivalProcess(ABC):
    """A streaming request source: per-round injection counts.

    Subclasses must be stateless across ``sample_rounds`` calls *or*
    restore their stream position on :meth:`reset`; the driver calls
    :meth:`clone` once per trial so trials never share mutable state.
    """

    name: str

    @abstractmethod
    def sample_rounds(self, rng: np.random.Generator, rounds: int) -> np.ndarray:
        """Draw the next ``rounds`` injection counts (int64 array)."""

    @property
    @abstractmethod
    def offered_load(self) -> float:
        """Mean requests injected per round."""

    def clone(self) -> "ArrivalProcess":
        """An independent copy with freshly-reset stream position."""
        fresh = copy.deepcopy(self)
        fresh.reset()
        return fresh

    def reset(self) -> None:
        """Rewind any internal stream position (default: stateless)."""


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: ``count ~ Poisson(rate)`` each round."""

    def __init__(self, rate: float, *, name: str = "") -> None:
        if not (rate > 0.0) or not math.isfinite(rate):
            raise ValueError(f"rate must be positive and finite, got {rate}")
        self.rate = float(rate)
        self.name = name or f"poisson(rate={self.rate:g})"

    def sample_rounds(self, rng: np.random.Generator, rounds: int) -> np.ndarray:
        return rng.poisson(self.rate, size=rounds).astype(np.int64)

    @property
    def offered_load(self) -> float:
        return self.rate


class ZipfHotspotArrivals(ArrivalProcess):
    """Poisson events carrying truncated-Zipf batch sizes.

    Each round draws ``events ~ Poisson(rate)``; each event injects a
    batch of ``1..max_batch`` requests with ``P(size=i)`` proportional to
    ``i**-alpha`` - the hotspot-key pattern where a popular object's
    requesters collide together.  ``alpha`` large -> mostly singletons;
    ``alpha`` near 0 -> near-uniform batch sizes up to ``max_batch``.
    """

    def __init__(
        self,
        rate: float,
        *,
        alpha: float = 1.5,
        max_batch: int = 32,
        name: str = "",
    ) -> None:
        if not (rate > 0.0) or not math.isfinite(rate):
            raise ValueError(f"rate must be positive and finite, got {rate}")
        if not (alpha >= 0.0) or not math.isfinite(alpha):
            raise ValueError(f"alpha must be >= 0 and finite, got {alpha}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.rate = float(rate)
        self.alpha = float(alpha)
        self.max_batch = int(max_batch)
        weights = np.arange(1, self.max_batch + 1, dtype=np.float64) ** -self.alpha
        self._cdf = np.cumsum(weights / weights.sum())
        self._mean_batch = float(
            (np.arange(1, self.max_batch + 1) * np.diff(self._cdf, prepend=0.0)).sum()
        )
        self.name = name or (
            f"zipf-hotspot(rate={self.rate:g}, alpha={self.alpha:g}, "
            f"max_batch={self.max_batch})"
        )

    def sample_rounds(self, rng: np.random.Generator, rounds: int) -> np.ndarray:
        events = rng.poisson(self.rate, size=rounds)
        total = int(events.sum())
        counts = np.zeros(rounds, dtype=np.int64)
        if total == 0:
            return counts
        # Inverse-CDF draw of every event's batch size in one shot, then
        # scatter the sizes back onto their rounds.
        sizes = np.searchsorted(self._cdf, rng.random(total), side="right") + 1
        np.add.at(counts, np.repeat(np.arange(rounds), events), sizes)
        return counts

    @property
    def offered_load(self) -> float:
        return self.rate * self._mean_batch


def _source_mean(source) -> float:
    """Stationary mean count of a closed-workload stream (pre-thinning).

    An analytic estimate used only for the ``offered_load`` report - the
    Markov chain's clamp into ``[MIN_COUNT, devices]`` is ignored, so the
    value slightly undershoots at very low rates.
    """
    if isinstance(source, TraceArrivals):
        return float(source._trace.mean())
    if isinstance(source, MarkovBurstArrivals):
        switching = source.burst_arrival + source.burst_departure
        if switching > 0.0:
            burst_share = source.burst_arrival / switching
        else:
            burst_share = 1.0 if source.start_in_burst else 0.0
        rate = burst_share * source.burst_rate + (1.0 - burst_share) * source.calm_rate
        return source.devices * rate
    return float("nan")


class ThinnedArrivals(ArrivalProcess):
    """Adapter: a closed-workload device stream thinned to request rate.

    Wraps a ``sample_many``-capable source (:class:`MarkovBurstArrivals`
    or :class:`TraceArrivals`) and keeps each device's request with
    probability ``thin`` - a Bernoulli thinning that turns device-scale
    batch counts into per-round arrival counts while preserving the
    wrapped stream's burst/trace structure.
    """

    def __init__(self, wrapped, *, thin: float, name: str = "") -> None:
        if not hasattr(wrapped, "sample_many"):
            raise TypeError(
                f"wrapped source must support sample_many, got {type(wrapped).__name__}"
            )
        if not (0.0 < thin <= 1.0):
            raise ValueError(f"thin must be in (0, 1], got {thin}")
        self.wrapped = wrapped
        self.thin = float(thin)
        self.name = name or f"thinned({wrapped.name}, thin={self.thin:g})"

    def sample_rounds(self, rng: np.random.Generator, rounds: int) -> np.ndarray:
        base = np.asarray(self.wrapped.sample_many(rng, rounds), dtype=np.int64)
        return rng.binomial(base, self.thin).astype(np.int64)

    @property
    def offered_load(self) -> float:
        return _source_mean(self.wrapped) * self.thin

    def reset(self) -> None:
        reset = getattr(self.wrapped, "reset", None)
        if reset is not None:
            reset()


class ClampedArrivalSizeSource:
    """Closed-workload adapter: arrival counts as contender batch sizes.

    Presents an :class:`ArrivalProcess` through the workload-source
    interface (``sample`` / ``sample_many`` / ``n``) used by
    ``resolve_workload``, clamping draws into ``[MIN_COUNT, n]`` the same
    way the bursty/trace workloads clamp device counts.
    """

    def __init__(self, process: ArrivalProcess, n: int) -> None:
        if n < MIN_COUNT:
            raise ValueError(f"n must be >= {MIN_COUNT}, got {n}")
        self.process = process
        self.n = int(n)
        self.name = f"clamped({process.name}, n={self.n})"

    def sample(self, rng: np.random.Generator) -> int:
        return int(self.sample_many(rng, 1)[0])

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        draws = self.process.sample_rounds(rng, count)
        return np.clip(draws, MIN_COUNT, self.n).astype(np.int64)


def _take(params: dict, key: str, kind: str, *, default=None, required: bool = False):
    if key in params:
        return params.pop(key)
    if required:
        raise ValueError(f"arrival family {kind!r} requires parameter {key!r}")
    return default


def _done(params: dict, kind: str) -> None:
    if params:
        extras = ", ".join(sorted(params))
        raise ValueError(f"unknown parameter(s) for arrival family {kind!r}: {extras}")


def _build_poisson(params: dict) -> ArrivalProcess:
    rate = float(_take(params, "rate", "poisson", required=True))
    _done(params, "poisson")
    return PoissonArrivals(rate)


def _build_zipf_hotspot(params: dict) -> ArrivalProcess:
    rate = float(_take(params, "rate", "zipf-hotspot", required=True))
    alpha = float(_take(params, "alpha", "zipf-hotspot", default=1.5))
    max_batch = int(_take(params, "max_batch", "zipf-hotspot", default=32))
    _done(params, "zipf-hotspot")
    return ZipfHotspotArrivals(rate, alpha=alpha, max_batch=max_batch)


def _build_bursty(params: dict) -> ArrivalProcess:
    devices = int(_take(params, "devices", "bursty", required=True))
    thin = float(_take(params, "thin", "bursty", required=True))
    calm_rate = float(_take(params, "calm_rate", "bursty", default=0.01))
    burst_rate = float(_take(params, "burst_rate", "bursty", default=0.2))
    burst_arrival = float(_take(params, "burst_arrival", "bursty", default=0.05))
    burst_departure = float(_take(params, "burst_departure", "bursty", default=0.25))
    start_in_burst = bool(_take(params, "start_in_burst", "bursty", default=False))
    _done(params, "bursty")
    burst = MarkovBurstArrivals(
        devices,
        calm_rate=calm_rate,
        burst_rate=burst_rate,
        burst_arrival=burst_arrival,
        burst_departure=burst_departure,
        start_in_burst=start_in_burst,
    )
    return ThinnedArrivals(burst, thin=thin)


def _build_trace(params: dict) -> ArrivalProcess:
    counts = _take(params, "counts", "trace", required=True)
    thin = float(_take(params, "thin", "trace", default=1.0))
    _done(params, "trace")
    if not isinstance(counts, Sequence) or isinstance(counts, (str, bytes)):
        raise ValueError("trace counts must be a sequence of integers")
    return ThinnedArrivals(TraceArrivals([int(c) for c in counts]), thin=thin)


ARRIVAL_FAMILIES = {
    "poisson": _build_poisson,
    "zipf-hotspot": _build_zipf_hotspot,
    "bursty": _build_bursty,
    "trace": _build_trace,
}


def arrival_process_from_dict(data: Mapping) -> ArrivalProcess:
    """Build an arrival process from ``{"family": ..., **params}``."""
    if not isinstance(data, Mapping):
        raise ValueError(f"arrival spec must be a mapping, got {type(data).__name__}")
    payload = dict(data)
    family = payload.pop("family", None)
    if family not in ARRIVAL_FAMILIES:
        known = ", ".join(sorted(ARRIVAL_FAMILIES))
        raise ValueError(f"unknown arrival family {family!r} (known: {known})")
    return ARRIVAL_FAMILIES[family](payload)
