"""Request-lifecycle policies: what a failed request does next.

PR 7's driver gave every failed request exactly one fate: vanish (a
capacity overflow became ``dropped``, a sojourn timeout became
``timed_out``).  This module makes that fate a policy decision, split
along the two axes the overload literature separates:

* **Admission policies** decide whether a request presenting itself this
  round (a fresh arrival or an orbit rejoin) is let into the service
  buffer at all.  ``capacity`` is PR 7's behaviour - the hard buffer
  limit is the only gate.  ``token-bucket`` meters admissions to a
  sustained rate with a burst allowance, and ``shed`` drops
  probabilistically as the buffer fills - the classic load-shedding
  lever that keeps the *admitted* population (and hence the contention
  level every epoch faces) bounded below the collapse region.

* **Retry policies** decide what a refused or timed-out request does.
  ``give-up`` is PR 7's behaviour (the request dies, counted).
  ``immediate`` rejoins next round - the retry-storm policy that turns
  transient overload into sustained overload.  ``backoff`` waits in the
  *orbit* (the retry queue) for a capped exponential delay with
  deterministic jitter before rejoining, and a finite ``budget`` of
  retries turns the (budget+1)-th failure into an ``abandoned`` death.

Both policy kinds are engine-neutral: they operate on the request
lifecycle around the channel simulation, so the vectorized
``open-schedule`` / ``open-history`` drivers and the ``open-scalar``
oracle execute them identically (and stay bit-identical per trial).

Determinism contract
--------------------
Policies that consume randomness (``shed``, ``backoff`` with jitter)
draw it from one extra pre-drawn uniform column per round of the
per-trial channel stream - the same absolute-block pre-draw discipline
as the band and winner draws, so stream shapes never depend on the
population.  A single round can fail several requests; the j-th retry
scheduled in a round derives its jitter uniform from the round's single
retry draw by a Weyl rotation (:func:`weyl_uniforms`), which is
deterministic, order-stable, and identical across engines.  Numeric
kernels (:func:`weyl_uniforms`, :meth:`OccupancySheddingPolicy.
shed_probability`, :meth:`RetryPolicy.delays`) are shared by the
vectorized engines and the scalar oracle - the oracle independently
reimplements the *lifecycle*, not the float microcode, so bit-identity
never hinges on libm coincidences.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Mapping

import numpy as np

__all__ = [
    "RetryPolicy",
    "GiveUpPolicy",
    "ImmediateRetryPolicy",
    "ExponentialBackoffPolicy",
    "AdmissionPolicy",
    "AdmissionState",
    "HardCapacityPolicy",
    "TokenBucketPolicy",
    "OccupancySheddingPolicy",
    "RETRY_POLICIES",
    "ADMISSION_POLICIES",
    "retry_policy_from_dict",
    "admission_policy_from_dict",
    "weyl_uniforms",
]

#: Conjugate golden ratio: the Weyl-sequence stride that spreads the
#: per-round retry uniform into per-request jitter uniforms.
_WEYL_STRIDE = 0.6180339887498949


def weyl_uniforms(u: np.ndarray | float, offsets: np.ndarray) -> np.ndarray:
    """Per-request jitter uniforms derived from one per-round draw.

    ``(u + j * phi) mod 1`` for the j-th retry scheduled this round -
    an equidistributed rotation of the single pre-drawn uniform, so
    multiple failures in one round get distinct, deterministic jitter
    without widening the stream.  Exact IEEE add/multiply/remainder on
    positive operands: identical in vectorized and scalar execution.
    """
    return np.remainder(
        np.asarray(u, dtype=np.float64)
        + offsets.astype(np.float64) * _WEYL_STRIDE,
        1.0,
    )


# ----------------------------------------------------------------------
# Retry policies
# ----------------------------------------------------------------------
class RetryPolicy(ABC):
    """What a failed request (refused admission, or timed out) does next.

    ``allows(retries)`` asks whether a request that has already been
    retried ``retries`` times may enter the orbit once more;
    :meth:`delays` maps the (1-based) retry number to the rounds spent
    in orbit before rejoining.  Policies hold no mutable state - the
    orbit itself lives in the driver - so one instance serves every
    trial and engine of a run.
    """

    name: str
    #: Whether the driver must pre-draw one retry uniform per round.
    needs_draws: bool = False
    #: Maximum retries per request (``None`` = unlimited).
    budget: int | None = None

    def allows(self, retries: int | np.ndarray) -> bool | np.ndarray:
        """May a request with ``retries`` prior retries retry again?"""
        if self.budget is None:
            if isinstance(retries, np.ndarray):
                return np.ones(retries.shape, dtype=bool)
            return True
        return retries < self.budget

    @abstractmethod
    def delays(
        self, retries: np.ndarray, jitter_u: np.ndarray | None
    ) -> np.ndarray:
        """Orbit rounds before the ``retries``-th retry rejoins (>= 1).

        ``retries`` is 1-based (the first retry is 1).  ``jitter_u``
        carries the per-request jitter uniforms when ``needs_draws``,
        else ``None``.  Returns int64, elementwise.
        """


class GiveUpPolicy(RetryPolicy):
    """PR 7's behaviour: a failed request dies immediately, counted."""

    budget = 0

    def __init__(self) -> None:
        self.name = "give-up"

    def delays(self, retries, jitter_u):  # pragma: no cover - unreachable
        raise AssertionError("give-up never schedules a retry")


class ImmediateRetryPolicy(RetryPolicy):
    """Rejoin next round - the retry-storm policy.

    With an unlimited budget (the default) a failed request presents
    itself again every round until admitted and served: under sustained
    overload the orbit grows without bound and the offered-plus-retried
    load stays pinned above capacity - the metastable regime the
    graceful-degradation suite demonstrates.
    """

    def __init__(self, *, budget: int | None = None) -> None:
        if budget is not None and budget < 0:
            raise ValueError(f"budget must be >= 0 or None, got {budget}")
        self.budget = budget
        suffix = "" if budget is None else f"(budget={budget})"
        self.name = f"immediate{suffix}"

    def delays(self, retries, jitter_u):
        return np.ones(np.shape(retries), dtype=np.int64)


class ExponentialBackoffPolicy(RetryPolicy):
    """Capped exponential backoff with deterministic jitter.

    The ``retries``-th retry waits ``min(base * 2**(retries-1), cap)``
    rounds plus a jitter of ``floor(u * (jitter + 1))`` in
    ``[0, jitter]`` drawn from the per-trial channel stream.  The
    uncapped doubling is precomputed into an integer table, so both
    engines look delays up exactly - no floating-point powers.
    """

    def __init__(
        self,
        *,
        base: int = 1,
        cap: int = 64,
        jitter: int = 0,
        budget: int | None = None,
    ) -> None:
        if base < 1:
            raise ValueError(f"base must be >= 1, got {base}")
        if cap < base:
            raise ValueError(f"cap must be >= base, got cap={cap} base={base}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        if budget is not None and budget < 0:
            raise ValueError(f"budget must be >= 0 or None, got {budget}")
        self.base = int(base)
        self.cap = int(cap)
        self.jitter = int(jitter)
        self.budget = budget
        self.needs_draws = jitter > 0
        # table[i] = uncapped-then-capped delay of retry i+1; exact ints.
        table = []
        delay = self.base
        while delay < self.cap:
            table.append(delay)
            delay *= 2
        table.append(self.cap)
        self._table = np.asarray(table, dtype=np.int64)
        suffix = "" if budget is None else f", budget={budget}"
        self.name = (
            f"backoff(base={self.base}, cap={self.cap}, "
            f"jitter={self.jitter}{suffix})"
        )

    def delays(self, retries, jitter_u):
        retries = np.asarray(retries, dtype=np.int64)
        if (retries < 1).any():
            raise ValueError("retry numbers are 1-based")
        index = np.minimum(retries - 1, self._table.size - 1)
        delay = self._table[index]
        if self.jitter > 0:
            if jitter_u is None:
                raise ValueError(
                    "backoff with jitter needs per-request jitter uniforms"
                )
            delay = delay + (
                np.asarray(jitter_u, dtype=np.float64) * (self.jitter + 1)
            ).astype(np.int64)
        return delay


# ----------------------------------------------------------------------
# Admission policies
# ----------------------------------------------------------------------
class AdmissionState(ABC):
    """Per-run admission bookkeeping, vectorized across trials.

    The scalar oracle instantiates the same state with ``trials=1`` and
    length-1 arrays, so stateful policies (token buckets) evolve through
    the identical float operations on every engine.
    """

    @abstractmethod
    def quota(
        self,
        occupancy: np.ndarray,
        candidates: np.ndarray,
        capacity: int,
        draws: np.ndarray | None,
    ) -> np.ndarray:
        """Admissions the policy grants this round (int64, per trial).

        ``candidates`` counts this round's presentations (rejoins plus
        fresh arrivals); ``occupancy`` is the buffer fill *before* any
        are admitted.  The driver separately clamps the grant to the
        physical ``capacity - occupancy``.
        """

    def commit(self, admitted: np.ndarray) -> None:
        """Record the admissions actually performed (post-clamp)."""


class _UnlimitedState(AdmissionState):
    def quota(self, occupancy, candidates, capacity, draws):
        return candidates


class AdmissionPolicy(ABC):
    """Whether a presenting request is let into the service buffer."""

    name: str
    #: Whether the driver must pre-draw one admission uniform per round.
    needs_draws: bool = False

    @abstractmethod
    def state(self, trials: int) -> AdmissionState:
        """Fresh per-run state for ``trials`` independent channels."""


class HardCapacityPolicy(AdmissionPolicy):
    """PR 7's behaviour: the buffer limit is the only admission gate."""

    def __init__(self) -> None:
        self.name = "capacity"

    def state(self, trials: int) -> AdmissionState:
        return _UnlimitedState()


class _TokenBucketState(AdmissionState):
    def __init__(self, trials: int, rate: float, burst: float) -> None:
        self._rate = rate
        self._burst = burst
        self._tokens = np.full(trials, burst, dtype=np.float64)

    def quota(self, occupancy, candidates, capacity, draws):
        self._tokens = np.minimum(self._tokens + self._rate, self._burst)
        return np.floor(self._tokens).astype(np.int64)

    def commit(self, admitted):
        self._tokens -= admitted


class TokenBucketPolicy(AdmissionPolicy):
    """Meter admissions to ``rate`` per round with a ``burst`` allowance.

    Tokens refill by ``rate`` per round up to ``burst`` (the bucket
    starts full); each admission spends one token and the round's grant
    is the whole tokens held.  Exact IEEE add/min/floor/subtract, so the
    bucket trajectory is identical on every engine.
    """

    def __init__(self, *, rate: float, burst: float = 1.0) -> None:
        if not (rate > 0.0) or not math.isfinite(rate):
            raise ValueError(f"rate must be positive and finite, got {rate}")
        if not (burst >= 1.0) or not math.isfinite(burst):
            raise ValueError(f"burst must be >= 1 and finite, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.name = f"token-bucket(rate={self.rate:g}, burst={self.burst:g})"

    def state(self, trials: int) -> AdmissionState:
        return _TokenBucketState(trials, self.rate, self.burst)


class _SheddingState(AdmissionState):
    def __init__(self, policy: "OccupancySheddingPolicy") -> None:
        self._policy = policy

    def quota(self, occupancy, candidates, capacity, draws):
        shed_p = self._policy.shed_probability(
            occupancy.astype(np.float64) / capacity
        )
        return np.where(draws < shed_p, 0, candidates)


class OccupancySheddingPolicy(AdmissionPolicy):
    """Probabilistic shedding keyed on buffer occupancy.

    Below ``threshold`` (an occupancy fraction) everything is admitted;
    above it the shed probability ramps as
    ``((frac - threshold) / (1 - threshold)) ** power``, reaching 1 at a
    full buffer.  One pre-drawn uniform per round decides the round's
    whole presentation batch (arrival batches are small at the
    per-round granularity the driver works in), which keeps the stream
    contract population-independent.
    """

    needs_draws = True

    def __init__(self, *, threshold: float = 0.5, power: float = 1.0) -> None:
        if not (0.0 <= threshold < 1.0):
            raise ValueError(
                f"threshold must be in [0, 1), got {threshold}"
            )
        if not (power > 0.0) or not math.isfinite(power):
            raise ValueError(f"power must be positive and finite, got {power}")
        self.threshold = float(threshold)
        self.power = float(power)
        self.name = f"shed(threshold={self.threshold:g}, power={self.power:g})"

    def shed_probability(self, frac: np.ndarray) -> np.ndarray:
        """Shed probability at occupancy fraction ``frac`` (vectorized)."""
        frac = np.asarray(frac, dtype=np.float64)
        over = np.clip(
            (frac - self.threshold) / (1.0 - self.threshold), 0.0, 1.0
        )
        return over**self.power

    def state(self, trials: int) -> AdmissionState:
        return _SheddingState(self)


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------
def _take(params: dict, key: str, kind: str, *, default=None):
    if key in params:
        return params.pop(key)
    return default


def _done(params: dict, label: str, kind: str) -> None:
    if params:
        extras = ", ".join(sorted(params))
        raise ValueError(
            f"unknown parameter(s) for {label} {kind!r}: {extras}"
        )


def _optional_budget(params: dict, kind: str) -> int | None:
    budget = _take(params, "budget", kind)
    return None if budget is None else int(budget)


def _build_give_up(params: dict) -> RetryPolicy:
    _done(params, "retry policy", "give-up")
    return GiveUpPolicy()


def _build_immediate(params: dict) -> RetryPolicy:
    budget = _optional_budget(params, "immediate")
    _done(params, "retry policy", "immediate")
    return ImmediateRetryPolicy(budget=budget)


def _build_backoff(params: dict) -> RetryPolicy:
    base = int(_take(params, "base", "backoff", default=1))
    cap = int(_take(params, "cap", "backoff", default=64))
    jitter = int(_take(params, "jitter", "backoff", default=0))
    budget = _optional_budget(params, "backoff")
    _done(params, "retry policy", "backoff")
    return ExponentialBackoffPolicy(
        base=base, cap=cap, jitter=jitter, budget=budget
    )


def _build_capacity(params: dict) -> AdmissionPolicy:
    _done(params, "admission policy", "capacity")
    return HardCapacityPolicy()


def _build_token_bucket(params: dict) -> AdmissionPolicy:
    if "rate" not in params:
        raise ValueError("admission policy 'token-bucket' requires 'rate'")
    rate = float(params.pop("rate"))
    burst = float(_take(params, "burst", "token-bucket", default=1.0))
    _done(params, "admission policy", "token-bucket")
    return TokenBucketPolicy(rate=rate, burst=burst)


def _build_shed(params: dict) -> AdmissionPolicy:
    threshold = float(_take(params, "threshold", "shed", default=0.5))
    power = float(_take(params, "power", "shed", default=1.0))
    _done(params, "admission policy", "shed")
    return OccupancySheddingPolicy(threshold=threshold, power=power)


RETRY_POLICIES = {
    "give-up": _build_give_up,
    "immediate": _build_immediate,
    "backoff": _build_backoff,
}

ADMISSION_POLICIES = {
    "capacity": _build_capacity,
    "token-bucket": _build_token_bucket,
    "shed": _build_shed,
}


def _policy_from_dict(data: Mapping, registry: dict, label: str):
    if not isinstance(data, Mapping):
        raise ValueError(
            f"{label} spec must be a mapping, got {type(data).__name__}"
        )
    payload = dict(data)
    kind = payload.pop("kind", None)
    if kind not in registry:
        known = ", ".join(sorted(registry))
        raise ValueError(f"unknown {label} {kind!r} (known: {known})")
    return registry[kind](payload)


def retry_policy_from_dict(data: Mapping) -> RetryPolicy:
    """Build a retry policy from ``{"kind": ..., **params}``."""
    return _policy_from_dict(data, RETRY_POLICIES, "retry policy")


def admission_policy_from_dict(data: Mapping) -> AdmissionPolicy:
    """Build an admission policy from ``{"kind": ..., **params}``."""
    return _policy_from_dict(data, ADMISSION_POLICIES, "admission policy")
