"""Open-loop execution: a live contention population over streaming traffic.

The closed engines answer "k players entered - how many rounds until the
first success?".  This driver answers the deployment question instead: a
channel serving *continuous* arrivals, where the contention level is the
emergent backlog, a resolved request departs recording its sojourn time,
and the survivors plus fresh arrivals contend again.  One trial is one
independent channel; a run advances ``trials`` channels for ``rounds``
rounds and accumulates every measured completion into one
:class:`~repro.opensys.latency.LatencyStore`.

Epoch semantics
---------------
The paper's protocols resolve one contention instance; an open system
chains them.  A trial's protocol state lives in *epochs*: the state
advances one step per contended round (exactly as in a closed execution),
resets to the empty history after every delivered success (the remaining
backlog plus newcomers start a fresh instance), resets when the backlog
drains to zero (the channel goes idle), and - mirroring the closed
engines' :class:`~repro.core.protocol.ScheduleExhausted` handling -
restarts from the empty history when a one-shot schedule gives up with
requests still pending.  Newcomers join the epoch in progress:
identity-oblivious uniform protocols cannot tell, and this is precisely
the unslotted-arrival regime the adversarial contention-resolution
literature studies.

Faithfulness and the stream contract
------------------------------------
A contended round with backlog ``k`` and probability ``p`` is simulated
by the same trichotomy-band compare as the closed batch engines (one
uniform against ``(1-p)^k`` / ``kp(1-p)^{k-1}``; see
:mod:`repro.channel.batch`), which is distribution-exact because uniform
protocols never see more than silence / success / collision.  An idle
round (``k = 0``) needs no special case: ``lo = (1-p)^0 = 1``, so the
draw always lands in the silence band.  On a delivered success one extra
pre-drawn uniform picks the departing request uniformly from the backlog
(uniform transmitters are exchangeable).  Fault models
(:mod:`repro.channel.models`) perturb the faithful code after the band
compare, exactly as in the closed engines; a success erased by noise or a
crash keeps the request in the population - the message was lost.

Randomness is drawn per trial from two :class:`numpy.random.SeedSequence`
children (arrival stream, channel stream) spawned at
``spawn_key = (trial_offset + t,)`` - the :func:`~repro.scenarios.sweep.
derive_point_seeds` discipline - and consumed in fixed-width
:data:`_OPEN_BLOCK_ROUNDS`-round blocks with absolute boundaries.  Both
properties together make the engines *bit-identical per trial*: the
vectorized drivers and the scalar oracle consume exactly the same
per-trial streams (unused draws are discarded, which is
distribution-neutral), and a run sharded as ``trial_offset = 0..a`` plus
``a..a+b`` merges to the unsharded run's store exactly.

Engines
-------
``open-schedule``
    Schedule-publishing protocols: the per-epoch probability is an array
    lookup on a per-trial epoch counter; rounds are fully vectorized
    across trials.
``open-history``
    Deterministic feedback-driven (CD) protocols: each trial carries a
    node id into the shared history-trie arena of
    :mod:`repro.channel.batch`, so probabilities are memoized per
    distinct history across trials, rounds and runs.
``open-scalar``
    The correctness oracle: a per-trial Python loop driving real
    protocol sessions through the identical streams.  Also the only
    engine for randomized-session protocols.

Crash models with a non-zero rejoin delay are not expressible here (the
open population *is* the live count; a crashed-but-rejoining requester
would need per-request identity) and are rejected up front on every
engine.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..channel.batch import _arena_for_run, _check_model_batchable, _run_tokens
from ..channel.channel import Channel
from ..channel.models import FB_COLLISION, FB_SILENCE, FB_SUCCESS, ChannelModel
from ..channel.simulator import _check_channel
from ..core.feedback import Observation
from ..core.protocol import (
    OBS_COLLISION,
    OBS_QUIET,
    OBS_SILENCE,
    ProtocolError,
    ScheduleExhausted,
    UniformProtocol,
)
from .arrivals import ArrivalProcess
from .latency import LatencyStore

__all__ = [
    "ENGINE_OPEN_SCHEDULE",
    "ENGINE_OPEN_HISTORY",
    "ENGINE_OPEN_SCALAR",
    "OpenRunResult",
    "select_open_engine",
    "run_open",
]

ENGINE_OPEN_SCHEDULE = "open-schedule"
ENGINE_OPEN_HISTORY = "open-history"
ENGINE_OPEN_SCALAR = "open-scalar"

#: Rounds of arrivals and channel uniforms pre-drawn per trial at each
#: absolute block boundary (rounds 1, 1+B, 1+2B, ...).  Boundaries and
#: shapes depend only on (rounds, trial), never on the population, so
#: every engine consumes identical per-trial streams.
_OPEN_BLOCK_ROUNDS = 32

#: Pre-drawn uniform columns per round: band draw, winner draw, and (for
#: models that consume fault draws) one fault uniform.
_COLS_FAITHFUL = 2
_COLS_FAULT = 3


@dataclass(frozen=True)
class OpenRunResult:
    """One open run: the accumulated latency store plus the engine used."""

    store: LatencyStore
    engine: str


def select_open_engine(
    protocol: UniformProtocol,
    batch: bool | None = None,
    *,
    model: ChannelModel | None = None,
) -> str:
    """The open engine that will execute ``protocol``.

    ``batch=None`` auto-selects (vectorized when the protocol supports
    it), ``False`` forces the scalar oracle, ``True`` insists on a
    vectorized engine and raises where none applies.  Mirrors
    :func:`repro.analysis.montecarlo.select_uniform_engine`, except that
    a non-batchable fault model is an error rather than a scalar
    fallback: the open population cannot express mid-trial rejoins.
    """
    if not isinstance(protocol, UniformProtocol):
        raise ValueError(
            "the open-system driver runs uniform protocols only; "
            f"got {type(protocol).__name__}"
        )
    _check_model_batchable(model)
    if batch is False:
        return ENGINE_OPEN_SCALAR
    if protocol.batch_schedule() is not None:
        return ENGINE_OPEN_SCHEDULE
    if protocol.deterministic_sessions:
        return ENGINE_OPEN_HISTORY
    if batch is True:
        raise ValueError(
            f"protocol {protocol.name!r} has randomized sessions; only the "
            "scalar open engine can execute it (pass batch=None or False)"
        )
    return ENGINE_OPEN_SCALAR


def _trial_streams(
    seed: int, trials: int, trial_offset: int
) -> list[tuple[np.random.Generator, np.random.Generator]]:
    """Per-trial (arrival, channel) generator pairs, prefix-stable.

    Trial ``t`` is keyed by ``SeedSequence(seed, spawn_key=(offset+t,))``
    - the same child :func:`~repro.scenarios.sweep.derive_point_seeds`
    would hand out - so shards ``[0, a)`` and ``[a, a+b)`` reproduce
    exactly the trials of one ``[0, a+b)`` run.
    """
    streams = []
    for t in range(trials):
        root = np.random.SeedSequence(entropy=seed, spawn_key=(trial_offset + t,))
        arrival_seq, channel_seq = root.spawn(2)
        streams.append(
            (
                np.random.default_rng(arrival_seq),
                np.random.default_rng(channel_seq),
            )
        )
    return streams


def _refill_blocks(
    processes: Sequence[ArrivalProcess],
    streams: Sequence[tuple[np.random.Generator, np.random.Generator]],
    round_index: int,
    rounds: int,
    columns: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Pre-draw one block of per-trial arrivals and channel uniforms.

    The shared half of the engines' stream contract (both vectorized
    drivers and the scalar oracle call exactly this, the oracle with
    one-trial slices): per trial, ``width`` arrival counts from its
    arrival generator, then a ``(width, columns)`` uniform block from its
    channel generator.
    """
    width = min(_OPEN_BLOCK_ROUNDS, rounds - round_index + 1)
    trials = len(processes)
    arrival_counts = np.empty((trials, width), dtype=np.int64)
    channel_draws = np.empty((trials, width, columns))
    for t in range(trials):
        arrival_rng, channel_rng = streams[t]
        counts = np.asarray(
            processes[t].sample_rounds(arrival_rng, width), dtype=np.int64
        )
        if counts.shape != (width,):
            raise ValueError(
                f"arrival process {processes[t].name!r} returned shape "
                f"{counts.shape}, expected ({width},)"
            )
        if (counts < 0).any():
            raise ValueError(
                f"arrival process {processes[t].name!r} returned negative counts"
            )
        arrival_counts[t] = counts
        channel_draws[t] = channel_rng.random((width, columns))
    return arrival_counts, channel_draws


def _trichotomy(
    u: np.ndarray, p: np.ndarray, k: np.ndarray
) -> np.ndarray:
    """Delivered-feedback codes of one round, vectorized across trials.

    The closed engines' band compare extended to ``k = 0``: the silence
    band is ``(1-p)^k = 1`` there, so idle channels hear silence without
    a special case (``max(k-1, 0)`` keeps ``0 * 0**-1`` from producing
    NaN when ``p = 1``).
    """
    k_f = k.astype(float)
    miss = 1.0 - p
    lo = miss**k_f
    hi = lo + k_f * p * miss ** np.maximum(k_f - 1.0, 0.0)
    return np.where(
        u < lo, FB_SILENCE, np.where(u < hi, FB_SUCCESS, FB_COLLISION)
    ).astype(np.int64)


def _inject(
    buffer: np.ndarray,
    occupancy: np.ndarray,
    counts: np.ndarray,
    round_index: int,
    capacity: int,
    store: LatencyStore,
) -> None:
    """Admit this round's arrivals (capacity overflow is dropped)."""
    store.arrivals += int(counts.sum())
    admitted = np.minimum(counts, capacity - occupancy)
    store.dropped += int((counts - admitted).sum())
    total = int(admitted.sum())
    if total == 0:
        return
    rows = np.flatnonzero(admitted)
    per_row = admitted[rows]
    # Flat scatter: row t's new requests land at slots occ[t] ... occ[t] +
    # admitted[t] - 1 of its buffer row, all stamped with this round.
    segment_starts = np.cumsum(per_row) - per_row
    within = np.arange(total) - np.repeat(segment_starts, per_row)
    flat = np.repeat(rows * buffer.shape[1] + occupancy[rows], per_row) + within
    buffer.flat[flat] = round_index
    occupancy += admitted


def _expire(
    buffer: np.ndarray,
    occupancy: np.ndarray,
    round_index: int,
    timeout: int,
    store: LatencyStore,
) -> None:
    """Drop requests whose sojourn reached ``timeout`` rounds (stable)."""
    cutoff = round_index - timeout + 1  # arrivals <= cutoff give up now
    width = int(occupancy.max())
    if width == 0:
        return
    live = np.arange(width)[None, :] < occupancy[:, None]
    expired = live & (buffer[:, :width] <= cutoff)
    per_row = expired.sum(axis=1)
    for t in np.flatnonzero(per_row):
        kept = buffer[t, : occupancy[t]]
        kept = kept[kept > cutoff]
        buffer[t, : kept.size] = kept
        occupancy[t] = kept.size
    store.timed_out += int(per_row.sum())


def _complete(
    buffer: np.ndarray,
    occupancy: np.ndarray,
    success_rows: np.ndarray,
    winner_draws: np.ndarray,
    round_index: int,
    warmup: int,
    store: LatencyStore,
) -> None:
    """Depart one uniformly-drawn winner per successful trial (swap-remove)."""
    winner = (winner_draws * occupancy[success_rows]).astype(np.int64)
    arrived = buffer[success_rows, winner]
    buffer[success_rows, winner] = buffer[success_rows, occupancy[success_rows] - 1]
    occupancy[success_rows] -= 1
    measured = arrived > warmup
    if measured.any():
        store.record_many(round_index - arrived[measured] + 1)


def _run_open_schedule(
    protocol: UniformProtocol,
    processes: Sequence[ArrivalProcess],
    streams: Sequence[tuple[np.random.Generator, np.random.Generator]],
    model: ChannelModel | None,
    rounds: int,
    warmup: int,
    capacity: int,
    timeout: int | None,
    store: LatencyStore,
) -> None:
    """Vectorized open loop for schedule-publishing protocols."""
    schedule = protocol.batch_schedule()
    assert schedule is not None
    probabilities = np.asarray(schedule.probabilities, dtype=float)
    length = probabilities.size

    trials = len(processes)
    buffer = np.zeros((trials, capacity), dtype=np.int64)
    occupancy = np.zeros(trials, dtype=np.int64)
    epoch_round = np.zeros(trials, dtype=np.int64)

    fault_state = model.batch_state(trials) if model is not None else None
    columns = (
        _COLS_FAULT
        if model is not None and model.needs_fault_draws
        else _COLS_FAITHFUL
    )

    arrival_counts = channel_draws = None
    for round_index in range(1, rounds + 1):
        column = (round_index - 1) % _OPEN_BLOCK_ROUNDS
        if column == 0:
            arrival_counts, channel_draws = _refill_blocks(
                processes, streams, round_index, rounds, columns
            )
        _inject(
            buffer, occupancy, arrival_counts[:, column], round_index,
            capacity, store,
        )

        # A one-shot schedule that ran out restarts from the top - the
        # scalar oracle's fresh-session-after-ScheduleExhausted path.
        if not schedule.cycle:
            epoch_round[epoch_round >= length] = 0
        p = probabilities[epoch_round % length]
        codes = _trichotomy(channel_draws[:, column, 0], p, occupancy)
        if fault_state is not None:
            fault_draws = (
                channel_draws[:, column, 2] if columns == _COLS_FAULT else None
            )
            codes = fault_state.perturb(round_index, codes, fault_draws)

        success = (codes == FB_SUCCESS) & (occupancy > 0)
        if success.any():
            rows = np.flatnonzero(success)
            _complete(
                buffer, occupancy, rows, channel_draws[rows, column, 1],
                round_index, warmup, store,
            )
            epoch_round[rows] = 0
        # Contended non-success rows step their epoch (success rows just
        # reset; their occupancy decrement cannot re-satisfy the mask).
        epoch_round[~success & (occupancy > 0)] += 1

        if timeout is not None:
            _expire(buffer, occupancy, round_index, timeout, store)
        epoch_round[occupancy == 0] = 0
    store.in_flight += int(occupancy.sum())


def _run_open_history(
    protocol: UniformProtocol,
    processes: Sequence[ArrivalProcess],
    streams: Sequence[tuple[np.random.Generator, np.random.Generator]],
    channel: Channel,
    model: ChannelModel | None,
    rounds: int,
    warmup: int,
    capacity: int,
    timeout: int | None,
    store: LatencyStore,
) -> None:
    """Vectorized open loop for deterministic history-driven protocols."""
    arena = _arena_for_run()
    root = arena.root_for(protocol, ("open", next(_run_tokens)))
    arena.resolve(np.asarray([root]))
    if arena.exhausted[root]:
        raise ProtocolError(
            f"protocol {protocol.name!r} exhausts its schedule before the "
            "first round; it cannot serve an open system"
        )

    trials = len(processes)
    buffer = np.zeros((trials, capacity), dtype=np.int64)
    occupancy = np.zeros(trials, dtype=np.int64)
    node = np.full(trials, root, dtype=np.int64)
    collision_detection = channel.collision_detection

    fault_state = model.batch_state(trials) if model is not None else None
    columns = (
        _COLS_FAULT
        if model is not None and model.needs_fault_draws
        else _COLS_FAITHFUL
    )

    arrival_counts = channel_draws = None
    for round_index in range(1, rounds + 1):
        column = (round_index - 1) % _OPEN_BLOCK_ROUNDS
        if column == 0:
            arrival_counts, channel_draws = _refill_blocks(
                processes, streams, round_index, rounds, columns
            )
        _inject(
            buffer, occupancy, arrival_counts[:, column], round_index,
            capacity, store,
        )

        # Memoized probability per distinct live history; a history whose
        # one-shot schedule exhausted restarts at the empty history (the
        # scalar oracle's fresh-session path - the root is known good).
        arena.resolve(np.unique(node))
        if arena.any_exhausted:
            exhausted = arena.exhausted[node]
            if exhausted.any():
                node[exhausted] = root
        p = arena.probability[node]
        codes = _trichotomy(channel_draws[:, column, 0], p, occupancy)
        if fault_state is not None:
            fault_draws = (
                channel_draws[:, column, 2] if columns == _COLS_FAULT else None
            )
            codes = fault_state.perturb(round_index, codes, fault_draws)

        success = (codes == FB_SUCCESS) & (occupancy > 0)
        if success.any():
            rows = np.flatnonzero(success)
            _complete(
                buffer, occupancy, rows, channel_draws[rows, column, 1],
                round_index, warmup, store,
            )
            node[rows] = root
        advance = ~success & (occupancy > 0)
        if advance.any() and round_index < rounds:
            if not collision_detection:
                observed = np.full(int(advance.sum()), OBS_QUIET, dtype=np.int64)
            else:
                observed = np.where(
                    codes[advance] == FB_COLLISION, OBS_COLLISION, OBS_SILENCE
                )
            node[advance] = arena.descend(node[advance], observed)

        if timeout is not None:
            _expire(buffer, occupancy, round_index, timeout, store)
        node[occupancy == 0] = root
    store.in_flight += int(occupancy.sum())


def _run_open_scalar(
    protocol: UniformProtocol,
    processes: Sequence[ArrivalProcess],
    streams: Sequence[tuple[np.random.Generator, np.random.Generator]],
    channel: Channel,
    model: ChannelModel | None,
    rounds: int,
    warmup: int,
    capacity: int,
    timeout: int | None,
    store: LatencyStore,
) -> None:
    """The per-trial reference loop: real sessions, identical streams.

    Probabilities come from live :class:`~repro.core.protocol.
    UniformSession` objects instead of schedule arrays or the memoized
    trie, but every random draw is consumed through the same
    :func:`_refill_blocks` contract (one-trial slices), so for
    deterministic protocols the resulting store is bit-identical to the
    vectorized engines'.
    """
    collision_detection = channel.collision_detection
    columns = (
        _COLS_FAULT
        if model is not None and model.needs_fault_draws
        else _COLS_FAITHFUL
    )
    in_flight = 0
    for t in range(len(processes)):
        fault_state = model.batch_state(1) if model is not None else None
        pending: list[int] = []
        session = None
        arrival_counts = channel_draws = None
        for round_index in range(1, rounds + 1):
            column = (round_index - 1) % _OPEN_BLOCK_ROUNDS
            if column == 0:
                arrival_counts, channel_draws = _refill_blocks(
                    processes[t : t + 1], streams[t : t + 1], round_index,
                    rounds, columns,
                )
            count = int(arrival_counts[0, column])
            store.arrivals += count
            admitted = min(count, capacity - len(pending))
            store.dropped += count - admitted
            pending.extend([round_index] * admitted)

            k = len(pending)
            if k == 0:
                code = FB_SILENCE
            else:
                if session is None:
                    session = protocol.session()
                try:
                    p = session.next_probability()
                except ScheduleExhausted:
                    session = protocol.session()
                    try:
                        p = session.next_probability()
                    except ScheduleExhausted:
                        raise ProtocolError(
                            f"protocol {protocol.name!r} exhausts its "
                            "schedule before the first round; it cannot "
                            "serve an open system"
                        ) from None
                u = float(channel_draws[0, column, 0])
                lo = (1.0 - p) ** k
                hi = lo + k * p * (1.0 - p) ** max(k - 1, 0)
                code = (
                    FB_SILENCE
                    if u < lo
                    else (FB_SUCCESS if u < hi else FB_COLLISION)
                )
            if fault_state is not None:
                fault_draws = (
                    channel_draws[:, column, 2]
                    if columns == _COLS_FAULT
                    else None
                )
                code = int(
                    fault_state.perturb(
                        round_index,
                        np.asarray([code], dtype=np.int64),
                        fault_draws,
                    )[0]
                )

            if code == FB_SUCCESS and k > 0:
                winner = int(channel_draws[0, column, 1] * len(pending))
                arrived = pending[winner]
                pending[winner] = pending[-1]
                pending.pop()
                if arrived > warmup:
                    store.record(round_index - arrived + 1)
                session = None
            elif k > 0 and round_index < rounds:
                if not collision_detection:
                    session.observe(Observation.QUIET)
                elif code == FB_COLLISION:
                    session.observe(Observation.COLLISION)
                else:
                    session.observe(Observation.SILENCE)

            if timeout is not None:
                cutoff = round_index - timeout + 1
                survivors = [a for a in pending if a > cutoff]
                store.timed_out += len(pending) - len(survivors)
                pending = survivors
            if not pending:
                session = None
        in_flight += len(pending)
    store.in_flight += in_flight


def run_open(
    protocol: UniformProtocol,
    arrivals: ArrivalProcess,
    *,
    channel: Channel,
    trials: int,
    rounds: int,
    warmup: int = 0,
    capacity: int = 256,
    timeout: int | None = None,
    seed: int = 2021,
    trial_offset: int = 0,
    batch: bool | None = None,
) -> OpenRunResult:
    """Serve ``arrivals`` with ``protocol`` on ``trials`` open channels.

    Each trial is one independent channel observed for ``rounds`` rounds:
    requests stream in from a private clone of ``arrivals``, at most
    ``capacity`` wait at once (overflow is dropped), an optional
    ``timeout`` abandons requests after that many rounds in the system,
    and completions whose request arrived after round ``warmup`` are
    recorded in the returned :class:`~repro.opensys.latency.LatencyStore`.

    Two runs with the same ``seed`` and consecutive ``trial_offset``
    windows merge (``store.merge``) to exactly the store of one combined
    run - the sharding contract of the satellite seed-hygiene task.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if not 0 <= warmup < rounds:
        raise ValueError(
            f"warmup must be in [0, rounds), got {warmup} of {rounds}"
        )
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    if timeout is not None and timeout < 1:
        raise ValueError(f"timeout must be >= 1 or None, got {timeout}")
    if trial_offset < 0:
        raise ValueError(f"trial_offset must be >= 0, got {trial_offset}")
    _check_channel(protocol.requires_collision_detection, channel)
    model = channel.active_model
    engine = select_open_engine(protocol, batch, model=model)

    processes = [arrivals.clone() for _ in range(trials)]
    streams = _trial_streams(seed, trials, trial_offset)
    store = LatencyStore()
    if engine == ENGINE_OPEN_SCHEDULE:
        _run_open_schedule(
            protocol, processes, streams, model, rounds, warmup, capacity,
            timeout, store,
        )
    elif engine == ENGINE_OPEN_HISTORY:
        _run_open_history(
            protocol, processes, streams, channel, model, rounds, warmup,
            capacity, timeout, store,
        )
    else:
        _run_open_scalar(
            protocol, processes, streams, channel, model, rounds, warmup,
            capacity, timeout, store,
        )
    store.round_slots += trials * (rounds - warmup)
    return OpenRunResult(store=store, engine=engine)
