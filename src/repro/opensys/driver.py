"""Open-loop execution: a live contention population over streaming traffic.

The closed engines answer "k players entered - how many rounds until the
first success?".  This driver answers the deployment question instead: a
channel serving *continuous* arrivals, where the contention level is the
emergent backlog, a resolved request departs recording its sojourn time,
and the survivors plus fresh arrivals contend again.  One trial is one
independent channel; a run advances ``trials`` channels for ``rounds``
rounds and accumulates every measured completion into one
:class:`~repro.opensys.latency.LatencyStore`.

Request lifecycle
-----------------
Every round, each trial's requests move through a fixed pipeline:

1. **Orbit release** - requests whose backoff expired leave the orbit
   (the retry queue) and present for admission again, oldest first.
2. **Admission** - orbit rejoiners (first) and fresh arrivals (second)
   pass the :class:`~repro.opensys.policies.AdmissionPolicy`; the grant
   is additionally clamped by the physical ``capacity``.  Admitted
   requests join the service buffer and contend from this round on.
3. **Channel round** - the backlog contends exactly as before: one
   trichotomy-band draw, optional fault perturbation, a delivered
   success departs one uniformly-drawn request (recording its
   per-request sojourn, measured from its *first* arrival).
4. **Timeout expiry** - requests whose current stay in the buffer
   reached ``timeout`` rounds are evicted (the timeout clock restarts
   on each re-admission; the sojourn clock never does).
5. **Retry resolution** - every refused or expired request asks the
   :class:`~repro.opensys.policies.RetryPolicy` what to do: enter the
   orbit with a policy-chosen rejoin round, or die (``dropped`` /
   ``timed_out`` on a first failure, ``abandoned`` once it has
   retried).

With the default policies (``give-up`` retry, ``capacity`` admission)
steps 1 and 5 are no-ops and the driver reproduces the PR 7 behaviour
bit for bit.

Epoch semantics
---------------
The paper's protocols resolve one contention instance; an open system
chains them.  A trial's protocol state lives in *epochs*: the state
advances one step per contended round (exactly as in a closed execution),
resets to the empty history after every delivered success (the remaining
backlog plus newcomers start a fresh instance), resets when the backlog
drains to zero (the channel goes idle), and - mirroring the closed
engines' :class:`~repro.core.protocol.ScheduleExhausted` handling -
restarts from the empty history when a one-shot schedule gives up with
requests still pending.  Newcomers join the epoch in progress:
identity-oblivious uniform protocols cannot tell, and this is precisely
the unslotted-arrival regime the adversarial contention-resolution
literature studies.

Faithfulness and the stream contract
------------------------------------
A contended round with backlog ``k`` and probability ``p`` is simulated
by the same trichotomy-band compare as the closed batch engines (one
uniform against ``(1-p)^k`` / ``kp(1-p)^{k-1}``; see
:mod:`repro.channel.batch`), which is distribution-exact because uniform
protocols never see more than silence / success / collision.  An idle
round (``k = 0``) needs no special case: ``lo = (1-p)^0 = 1``, so the
draw always lands in the silence band.  On a delivered success one extra
pre-drawn uniform picks the departing request uniformly from the backlog
(uniform transmitters are exchangeable).  Fault models
(:mod:`repro.channel.models`) perturb the faithful code after the band
compare, exactly as in the closed engines; a success erased by noise or a
crash keeps the request in the population - the message was lost.

Randomness is drawn per trial from two :class:`numpy.random.SeedSequence`
children (arrival stream, channel stream) spawned at
``spawn_key = (trial_offset + t,)`` - the :func:`~repro.scenarios.sweep.
derive_point_seeds` discipline - and consumed in fixed-width
:data:`_OPEN_BLOCK_ROUNDS`-round blocks with absolute boundaries.  The
uniform columns per round are positional - band draw, winner draw, then
one fault column (fault-drawing models), one admission column
(``shed``), and one retry column (``backoff`` with jitter) - so the
block shape depends only on the run's *specification*, never on the
population.  Both properties together make the engines *bit-identical
per trial*: the vectorized drivers and the scalar oracle consume exactly
the same per-trial streams (unused draws are discarded, which is
distribution-neutral), and a run sharded as ``trial_offset = 0..a`` plus
``a..a+b`` merges to the unsharded run's store exactly.

Engines
-------
``open-schedule``
    Schedule-publishing protocols: the per-epoch probability is an array
    lookup on a per-trial epoch counter; rounds are fully vectorized
    across trials.
``open-history``
    Deterministic feedback-driven (CD) protocols: each trial carries a
    node id into the shared history-trie arena of
    :mod:`repro.channel.batch`, so probabilities are memoized per
    distinct history across trials, rounds and runs.
``open-scalar``
    The correctness oracle: a per-trial Python loop driving real
    protocol sessions and a plain-list request lifecycle through the
    identical streams.  Also the only engine for randomized-session
    protocols.

Crash models with a non-zero rejoin delay are not expressible here (the
open population *is* the live count; a crashed-but-rejoining requester
would need per-request identity) and are rejected up front on every
engine via :attr:`~repro.channel.models.ChannelModel.shrinks_population`
- the closed-system uniform engines run them through per-trial active
counts, but an open run has no fixed trial population to shrink.
Adaptive adversaries plug straight in: their per-trial state rides the
same ``batch_state``/``perturb`` contract as every other model, and the
open population never retires mid-run so their budget arrays never even
need filtering.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..channel.batch import _arena_for_run, _check_model_batchable, _run_tokens
from ..channel.channel import Channel
from ..channel.models import FB_COLLISION, FB_SILENCE, FB_SUCCESS, ChannelModel
from ..channel.simulator import _check_channel
from ..core.feedback import Observation
from ..core.protocol import (
    OBS_COLLISION,
    OBS_QUIET,
    OBS_SILENCE,
    ProtocolError,
    ScheduleExhausted,
    UniformProtocol,
)
from .arrivals import ArrivalProcess
from .latency import LatencyStore
from .policies import (
    AdmissionPolicy,
    GiveUpPolicy,
    HardCapacityPolicy,
    RetryPolicy,
    weyl_uniforms,
)

__all__ = [
    "ENGINE_OPEN_SCHEDULE",
    "ENGINE_OPEN_HISTORY",
    "ENGINE_OPEN_SCALAR",
    "OpenRunResult",
    "select_open_engine",
    "run_open",
]

ENGINE_OPEN_SCHEDULE = "open-schedule"
ENGINE_OPEN_HISTORY = "open-history"
ENGINE_OPEN_SCALAR = "open-scalar"

#: Rounds of arrivals and channel uniforms pre-drawn per trial at each
#: absolute block boundary (rounds 1, 1+B, 1+2B, ...).  Boundaries and
#: shapes depend only on (rounds, trial), never on the population, so
#: every engine consumes identical per-trial streams.
_OPEN_BLOCK_ROUNDS = 32

#: Failure kinds handed to the retry policy (they differ only in which
#: counter a first-attempt death lands in).
_FAIL_ADMISSION = 0
_FAIL_TIMEOUT = 1

#: Planes of the packed per-request buffer (tracked lifecycle only).
_F_BORN = 0
_F_ADMITTED = 1
_F_TRIES = 2


@dataclass(frozen=True)
class _Columns:
    """Positional layout of the pre-drawn per-round uniform columns.

    Band and winner draws are always columns 0 and 1 - the PR 7 layout -
    and optional columns append in a fixed order (fault, admission,
    retry), so a zero-policy faithful run consumes exactly the PR 7
    stream.
    """

    fault: int | None
    admission: int | None
    retry: int | None
    total: int


def _column_layout(
    model: ChannelModel | None,
    admission: AdmissionPolicy,
    retry: RetryPolicy,
) -> _Columns:
    index = 2
    fault = admission_col = retry_col = None
    if model is not None and model.needs_fault_draws:
        fault = index
        index += 1
    if admission.needs_draws:
        admission_col = index
        index += 1
    if retry.needs_draws:
        retry_col = index
        index += 1
    return _Columns(
        fault=fault, admission=admission_col, retry=retry_col, total=index
    )


@dataclass(frozen=True)
class OpenRunResult:
    """One open run: the accumulated latency store plus the engine used."""

    store: LatencyStore
    engine: str


def select_open_engine(
    protocol: UniformProtocol,
    batch: bool | None = None,
    *,
    model: ChannelModel | None = None,
) -> str:
    """The open engine that will execute ``protocol``.

    ``batch=None`` auto-selects (vectorized when the protocol supports
    it), ``False`` forces the scalar oracle, ``True`` insists on a
    vectorized engine and raises where none applies.  Mirrors
    :func:`repro.analysis.montecarlo.select_uniform_engine`, except that
    an inexpressible fault model is an error rather than a scalar
    fallback: a population-shrinking model (crash with a non-zero rejoin
    delay) has no meaning when the live count *is* the arrival process.
    Retry/admission policies never affect routing - the lifecycle runs
    identically on every engine.
    """
    if not isinstance(protocol, UniformProtocol):
        raise ValueError(
            "the open-system driver runs uniform protocols only; "
            f"got {type(protocol).__name__}"
        )
    _check_model_batchable(model)
    if model is not None and model.shrinks_population:
        raise ValueError(
            f"channel model {model.name!r} shrinks the live population "
            "(a crash with a non-zero rejoin delay); the open population "
            "is the arrival process itself, so no open engine can "
            "express it"
        )
    if batch is False:
        return ENGINE_OPEN_SCALAR
    if protocol.batch_schedule() is not None:
        return ENGINE_OPEN_SCHEDULE
    if protocol.deterministic_sessions:
        return ENGINE_OPEN_HISTORY
    if batch is True:
        raise ValueError(
            f"protocol {protocol.name!r} has randomized sessions; only the "
            "scalar open engine can execute it (pass batch=None or False)"
        )
    return ENGINE_OPEN_SCALAR


def _trial_streams(
    seed: int, trials: int, trial_offset: int
) -> list[tuple[np.random.Generator, np.random.Generator]]:
    """Per-trial (arrival, channel) generator pairs, prefix-stable.

    Trial ``t`` is keyed by ``SeedSequence(seed, spawn_key=(offset+t,))``
    - the same child :func:`~repro.scenarios.sweep.derive_point_seeds`
    would hand out - so shards ``[0, a)`` and ``[a, a+b)`` reproduce
    exactly the trials of one ``[0, a+b)`` run.
    """
    streams = []
    for t in range(trials):
        root = np.random.SeedSequence(entropy=seed, spawn_key=(trial_offset + t,))
        arrival_seq, channel_seq = root.spawn(2)
        streams.append(
            (
                np.random.default_rng(arrival_seq),
                np.random.default_rng(channel_seq),
            )
        )
    return streams


def _refill_blocks(
    processes: Sequence[ArrivalProcess],
    streams: Sequence[tuple[np.random.Generator, np.random.Generator]],
    round_index: int,
    rounds: int,
    columns: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Pre-draw one block of per-trial arrivals and channel uniforms.

    The shared half of the engines' stream contract (both vectorized
    drivers and the scalar oracle call exactly this, the oracle with
    one-trial slices): per trial, ``width`` arrival counts from its
    arrival generator, then a ``(width, columns)`` uniform block from its
    channel generator.
    """
    width = min(_OPEN_BLOCK_ROUNDS, rounds - round_index + 1)
    trials = len(processes)
    arrival_counts = np.empty((trials, width), dtype=np.int64)
    channel_draws = np.empty((trials, width, columns))
    for t in range(trials):
        arrival_rng, channel_rng = streams[t]
        counts = np.asarray(
            processes[t].sample_rounds(arrival_rng, width), dtype=np.int64
        )
        if counts.shape != (width,):
            raise ValueError(
                f"arrival process {processes[t].name!r} returned shape "
                f"{counts.shape}, expected ({width},)"
            )
        if (counts < 0).any():
            raise ValueError(
                f"arrival process {processes[t].name!r} returned negative counts"
            )
        arrival_counts[t] = counts
        channel_draws[t] = channel_rng.random((width, columns))
    return arrival_counts, channel_draws


def _trichotomy(
    u: np.ndarray, p: np.ndarray, k: np.ndarray
) -> np.ndarray:
    """Delivered-feedback codes of one round, vectorized across trials.

    The closed engines' band compare extended to ``k = 0``: the silence
    band is ``(1-p)^k = 1`` there, so idle channels hear silence without
    a special case (``max(k-1, 0)`` keeps ``0 * 0**-1`` from producing
    NaN when ``p = 1``).
    """
    k_f = k.astype(float)
    miss = 1.0 - p
    lo = miss**k_f
    hi = lo + k_f * p * miss ** np.maximum(k_f - 1.0, 0.0)
    return np.where(
        u < lo, FB_SILENCE, np.where(u < hi, FB_SUCCESS, FB_COLLISION)
    ).astype(np.int64)


def _row_ranks(rows: np.ndarray, trials: int) -> tuple[np.ndarray, np.ndarray]:
    """Within-trial ranks of a row-major flat group, plus per-trial counts.

    ``rows`` must be sorted ascending (the order ``np.nonzero`` emits),
    so entries of one trial are contiguous; the rank is each entry's
    0-based position within its trial's segment.
    """
    counts = np.bincount(rows, minlength=trials)
    segments = np.cumsum(counts) - counts
    return np.arange(rows.size) - segments[rows], counts


class _BatchLifecycle:
    """Vectorized request-lifecycle state shared by the open engines.

    Holds the service buffer (parallel ``(trials, capacity)`` arrays:
    first-arrival round, plus current-admission round and retry count
    when a retry policy can populate them), the orbit (chunks of pending
    rejoiners bucketed by rejoin round, so release is O(due entries)
    with no per-round scan of the waiting mass), and the admission
    state.  All mutations preserve the deterministic orderings the
    scalar oracle mirrors with plain lists: orbit release is stable
    (by trial, then insertion order), timeout expiry is a stable
    compaction, buffer departure is the winner swap-remove, and the
    j-th retry scheduled in a round takes the j-th Weyl rotation of the
    round's retry draw.
    """

    def __init__(
        self,
        trials: int,
        capacity: int,
        timeout: int | None,
        warmup: int,
        admission: AdmissionPolicy,
        retry: RetryPolicy,
        store: LatencyStore,
    ) -> None:
        self.trials = trials
        self.capacity = capacity
        self.timeout = timeout
        self.warmup = warmup
        self.retry = retry
        self.store = store
        self.occupancy = np.zeros(trials, dtype=np.int64)
        # With a zero-retry policy nothing ever re-enters, so the
        # admission round equals the birth round and the retry count is
        # identically zero - a lone ``born`` plane suffices and the
        # default-policy fast path does exactly PR 7's work.  With a
        # live retry policy the three per-request fields are packed into
        # one (trials, capacity, 3) array so every buffer move (append,
        # swap-remove, expiry compaction) is a single gather/scatter.
        self._plain = retry.budget == 0
        self._track = timeout is not None and not self._plain
        if self._track:
            self._buf = np.zeros((trials, capacity, 3), dtype=np.int64)
            self.born = self._buf[:, :, _F_BORN]
            self.admitted_at = self._buf[:, :, _F_ADMITTED]
            self.tries = self._buf[:, :, _F_TRIES]
        else:
            self._buf = None
            self.born = np.zeros((trials, capacity), dtype=np.int64)
        self._adm_state = admission.state(trials)
        # Expiry ring: per-trial counts of live buffer entries keyed by
        # admission round mod timeout.  An entry expires exactly when
        # the eviction cutoff reaches its admission round (end_round
        # runs every round), so one ring column names every victim of a
        # round: expiry-free rounds exit after an O(trials) check and
        # eviction scans only the trials that actually lose requests.
        self._ring = (
            np.zeros((trials, timeout), dtype=np.int64)
            if timeout is not None
            else None
        )
        # Orbit buckets: rejoin round -> list of (rows, born, tries)
        # chunks, appended in failure order.  Delays are >= 1 and rounds
        # are processed consecutively, so a bucket is drained exactly at
        # its key and never goes stale.
        self._orbit: dict[int, list[tuple[np.ndarray, ...]]] = {}
        self.orb_n = np.zeros(trials, dtype=np.int64)
        self._fail_rank = np.zeros(trials, dtype=np.int64)
        self._trial_ids = np.arange(trials, dtype=np.int64)
        self._slot_ids = np.arange(capacity, dtype=np.int64)
        self._round = 0
        self._retry_draws: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Round pipeline
    # ------------------------------------------------------------------
    def begin_round(
        self,
        round_index: int,
        fresh: np.ndarray,
        adm_draws: np.ndarray | None,
        retry_draws: np.ndarray | None,
    ) -> None:
        """Orbit release, admission, and admission-failure resolution."""
        self._round = round_index
        self._retry_draws = retry_draws
        if not self._plain:
            self._fail_rank[:] = 0
        store = self.store
        store.arrivals += int(fresh.sum())

        due_rows, due_born, due_tries, n_due = self._release(round_index)
        candidates = n_due + fresh
        store.attempts += int(candidates.sum())
        quota = self._adm_state.quota(
            self.occupancy, candidates, self.capacity, adm_draws
        )
        admitted = np.minimum(
            np.minimum(candidates, quota), self.capacity - self.occupancy
        )
        self._adm_state.commit(admitted)

        admit_rejoin = np.minimum(n_due, admitted)
        if due_rows.size:
            ranks, _ = _row_ranks(due_rows, self.trials)
            taken = ranks < admit_rejoin[due_rows]
            self._append_buffer(
                due_rows[taken], due_born[taken], due_tries[taken]
            )
        admit_fresh = admitted - admit_rejoin
        if admit_fresh.any():
            rows = np.repeat(self._trial_ids, admit_fresh)
            self._append_buffer(
                rows,
                np.full(rows.size, round_index, dtype=np.int64),
                np.zeros(rows.size, dtype=np.int64),
            )

        # Refusals, in candidate order: surplus rejoiners first, then
        # surplus fresh arrivals.
        parts = []
        if due_rows.size:
            refused = ranks >= admit_rejoin[due_rows]
            if refused.any():
                parts.append(
                    (due_rows[refused], due_born[refused], due_tries[refused])
                )
        refused_fresh = fresh - admit_fresh
        if refused_fresh.any():
            rows = np.repeat(self._trial_ids, refused_fresh)
            parts.append((
                rows,
                np.full(rows.size, round_index, dtype=np.int64),
                np.zeros(rows.size, dtype=np.int64),
            ))
        if len(parts) == 2:
            # One batched failure: a stable sort by trial keeps each
            # trial's surplus rejoiners ahead of its surplus fresh
            # arrivals, i.e. exactly the candidate order.
            rows = np.concatenate((parts[0][0], parts[1][0]))
            order = np.argsort(rows, kind="stable")
            parts = [(
                rows[order],
                np.concatenate((parts[0][1], parts[1][1]))[order],
                np.concatenate((parts[0][2], parts[1][2]))[order],
            )]
        if parts:
            self._fail(*parts[0], _FAIL_ADMISSION)

    def complete(
        self, rows: np.ndarray, winner_draws: np.ndarray, round_index: int
    ) -> None:
        """Depart one uniformly-drawn winner per successful trial."""
        winner = (winner_draws * self.occupancy[rows]).astype(np.int64)
        last = self.occupancy[rows] - 1
        if self._track:
            departed = self._buf[rows, winner]
            born = departed[:, _F_BORN]
            admitted = departed[:, _F_ADMITTED]
            self._buf[rows, winner] = self._buf[rows, last]
        else:
            born = self.born[rows, winner]
            admitted = born
            self.born[rows, winner] = self.born[rows, last]
        if self._ring is not None:
            self._ring[rows, admitted % self.timeout] -= 1
        self.occupancy[rows] -= 1
        measured = born > self.warmup
        if measured.any():
            self.store.record_many(round_index - born[measured] + 1)

    def end_round(self, round_index: int) -> None:
        """Evict requests whose current buffer stay hit the timeout."""
        if self.timeout is None:
            return
        cutoff = round_index - self.timeout + 1
        if cutoff < 0:
            return
        col = cutoff % self.timeout
        affected = np.flatnonzero(self._ring[:, col])
        if affected.size == 0:
            return
        occ = self.occupancy[affected]
        width = int(occ.max())
        stamps = (self.admitted_at if self._track else self.born)[
            affected, :width
        ]
        live = self._slot_ids[None, :width] < occ[:, None]
        expired = live & (stamps == cutoff)
        local_rows, slots = np.nonzero(expired)
        keep_local, keep_slots = np.nonzero(live & ~expired)
        keep_ranks, keep_counts = _row_ranks(keep_local, affected.size)
        rows = affected[local_rows]
        keep_rows = affected[keep_local]
        if self._track:
            victims = self._buf[rows, slots]
            born = victims[:, _F_BORN]
            tries = victims[:, _F_TRIES]
            self._buf[keep_rows, keep_ranks] = self._buf[keep_rows, keep_slots]
        else:
            born = self.born[rows, slots]
            tries = np.zeros(rows.size, dtype=np.int64)
            self.born[keep_rows, keep_ranks] = self.born[keep_rows, keep_slots]
        self.occupancy[affected] = keep_counts
        self._ring[:, col] = 0
        self._fail(rows, born, tries, _FAIL_TIMEOUT)

    def finish(self) -> None:
        self.store.in_flight += int(self.occupancy.sum())
        self.store.in_orbit += int(self.orb_n.sum())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _append_buffer(
        self, rows: np.ndarray, born: np.ndarray, tries: np.ndarray
    ) -> None:
        if rows.size == 0:
            return
        ranks, counts = _row_ranks(rows, self.trials)
        slots = self.occupancy[rows] + ranks
        if self._track:
            entry = np.empty((rows.size, 3), dtype=np.int64)
            entry[:, _F_BORN] = born
            entry[:, _F_ADMITTED] = self._round
            entry[:, _F_TRIES] = tries
            self._buf[rows, slots] = entry
        else:
            self.born[rows, slots] = born
        if self._ring is not None:
            self._ring[:, self._round % self.timeout] += counts
        self.occupancy += counts

    def _release(
        self, round_index: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Due orbit entries, stable: by trial, then insertion order."""
        empty = np.empty(0, dtype=np.int64)
        none = np.zeros(self.trials, dtype=np.int64)
        chunks = self._orbit.pop(round_index, None)
        if chunks is None:
            return empty, empty, empty, none
        if len(chunks) == 1:
            # A lone chunk is already row-major (one _fail batch).
            rows, born, tries = chunks[0]
        else:
            rows = np.concatenate([chunk[0] for chunk in chunks])
            born = np.concatenate([chunk[1] for chunk in chunks])
            tries = np.concatenate([chunk[2] for chunk in chunks])
            # Chunks arrive in insertion order and are each row-major,
            # so a stable sort by trial recovers the release order the
            # scalar oracle's list scan produces.
            order = np.argsort(rows, kind="stable")
            rows = rows[order]
            born = born[order]
            tries = tries[order]
        n_due = np.bincount(rows, minlength=self.trials)
        self.orb_n -= n_due
        return rows, born, tries, n_due

    def _append_orbit(
        self,
        rows: np.ndarray,
        rejoin: np.ndarray,
        born: np.ndarray,
        tries: np.ndarray,
    ) -> None:
        self.orb_n += np.bincount(rows, minlength=self.trials)
        # One stable sort groups the batch by rejoin round while keeping
        # the row-major failure order within each group; the buckets
        # then take contiguous slices instead of per-value masks.
        order = np.argsort(rejoin, kind="stable")
        rejoin = rejoin[order]
        rows = rows[order]
        born = born[order]
        tries = tries[order]
        bounds = np.flatnonzero(rejoin[1:] != rejoin[:-1]) + 1
        starts = (0, *bounds.tolist(), rejoin.size)
        for lo, hi in zip(starts, starts[1:]):
            self._orbit.setdefault(int(rejoin[lo]), []).append(
                (rows[lo:hi], born[lo:hi], tries[lo:hi])
            )

    def _fail(
        self,
        rows: np.ndarray,
        born: np.ndarray,
        tries: np.ndarray,
        kind: int,
    ) -> None:
        """Resolve failure events (row-major order) through the policy."""
        store = self.store
        allowed = self.retry.allows(tries)
        if allowed is True:
            allowed = np.ones(rows.size, dtype=bool)
        deaths = ~allowed
        if deaths.any():
            first = int((tries[deaths] == 0).sum())
            if kind == _FAIL_ADMISSION:
                store.dropped += first
            else:
                store.timed_out += first
            store.abandoned += int(deaths.sum()) - first
        if not allowed.any():
            return
        retry_rows = rows[allowed]
        retry_tries = tries[allowed]
        store.retried += retry_rows.size
        jitter_u = None
        if self.retry.needs_draws:
            ranks, counts = _row_ranks(retry_rows, self.trials)
            offsets = self._fail_rank[retry_rows] + ranks
            self._fail_rank += counts
            jitter_u = weyl_uniforms(self._retry_draws[retry_rows], offsets)
        delays = self.retry.delays(retry_tries + 1, jitter_u)
        self._append_orbit(
            retry_rows, self._round + delays, born[allowed], retry_tries + 1
        )


class _ScalarLifecycle:
    """The oracle's request lifecycle: one trial, plain Python lists.

    An independent reimplementation of the contract `_BatchLifecycle`
    vectorizes - stable orbit/buffer orderings, rejoiners-before-fresh
    admission, swap-remove departures - sharing only the numeric policy
    kernels (quota, delays, Weyl jitter) so bit-identity rests on the
    lifecycle logic, not on floating-point coincidences.
    """

    def __init__(
        self,
        capacity: int,
        timeout: int | None,
        warmup: int,
        admission: AdmissionPolicy,
        retry: RetryPolicy,
        store: LatencyStore,
    ) -> None:
        self.capacity = capacity
        self.timeout = timeout
        self.warmup = warmup
        self.retry = retry
        self.store = store
        self.pending: list[tuple[int, int, int]] = []  # (born, admitted, tries)
        self.orbit: list[tuple[int, int, int]] = []  # (rejoin, born, tries)
        self._adm_state = admission.state(1)
        self._round = 0
        self._retry_draw = 0.0
        self._fail_rank = 0

    def begin_round(
        self,
        round_index: int,
        fresh: int,
        adm_draw: float | None,
        retry_draw: float | None,
    ) -> None:
        self._round = round_index
        self._retry_draw = retry_draw
        self._fail_rank = 0
        store = self.store
        store.arrivals += fresh

        due = [entry for entry in self.orbit if entry[0] <= round_index]
        self.orbit = [entry for entry in self.orbit if entry[0] > round_index]
        candidates = len(due) + fresh
        store.attempts += candidates
        quota = int(
            self._adm_state.quota(
                np.asarray([len(self.pending)], dtype=np.int64),
                np.asarray([candidates], dtype=np.int64),
                self.capacity,
                None if adm_draw is None else np.asarray([adm_draw]),
            )[0]
        )
        admitted = min(candidates, quota, self.capacity - len(self.pending))
        self._adm_state.commit(np.asarray([admitted], dtype=np.int64))

        admit_rejoin = min(len(due), admitted)
        for _, born, tries in due[:admit_rejoin]:
            self.pending.append((born, round_index, tries))
        admit_fresh = admitted - admit_rejoin
        for _ in range(admit_fresh):
            self.pending.append((round_index, round_index, 0))
        for _, born, tries in due[admit_rejoin:]:
            self._fail(born, tries, _FAIL_ADMISSION)
        for _ in range(fresh - admit_fresh):
            self._fail(round_index, 0, _FAIL_ADMISSION)

    def complete(self, winner_draw: float, round_index: int) -> None:
        winner = int(winner_draw * len(self.pending))
        born, _, _ = self.pending[winner]
        self.pending[winner] = self.pending[-1]
        self.pending.pop()
        if born > self.warmup:
            self.store.record(round_index - born + 1)

    def end_round(self, round_index: int) -> None:
        if self.timeout is None:
            return
        cutoff = round_index - self.timeout + 1
        expired = [entry for entry in self.pending if entry[1] <= cutoff]
        if not expired:
            return
        self.pending = [entry for entry in self.pending if entry[1] > cutoff]
        for born, _, tries in expired:
            self._fail(born, tries, _FAIL_TIMEOUT)

    def finish(self) -> None:
        self.store.in_flight += len(self.pending)
        self.store.in_orbit += len(self.orbit)

    def _fail(self, born: int, tries: int, kind: int) -> None:
        store = self.store
        if not self.retry.allows(tries):
            if tries > 0:
                store.abandoned += 1
            elif kind == _FAIL_ADMISSION:
                store.dropped += 1
            else:
                store.timed_out += 1
            return
        store.retried += 1
        jitter_u = None
        if self.retry.needs_draws:
            jitter_u = weyl_uniforms(
                self._retry_draw, np.asarray([self._fail_rank], dtype=np.int64)
            )
        self._fail_rank += 1
        delay = int(
            self.retry.delays(np.asarray([tries + 1], dtype=np.int64), jitter_u)[0]
        )
        self.orbit.append((self._round + delay, born, tries + 1))


def _round_draws(
    channel_draws: np.ndarray, column: int, layout: _Columns
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    """(fault, admission, retry) draw vectors of one round (or None)."""
    fault = (
        channel_draws[:, column, layout.fault]
        if layout.fault is not None
        else None
    )
    admission = (
        channel_draws[:, column, layout.admission]
        if layout.admission is not None
        else None
    )
    retry = (
        channel_draws[:, column, layout.retry]
        if layout.retry is not None
        else None
    )
    return fault, admission, retry


def _run_open_schedule(
    protocol: UniformProtocol,
    processes: Sequence[ArrivalProcess],
    streams: Sequence[tuple[np.random.Generator, np.random.Generator]],
    model: ChannelModel | None,
    rounds: int,
    warmup: int,
    capacity: int,
    timeout: int | None,
    admission: AdmissionPolicy,
    retry: RetryPolicy,
    store: LatencyStore,
) -> None:
    """Vectorized open loop for schedule-publishing protocols."""
    schedule = protocol.batch_schedule()
    assert schedule is not None
    probabilities = np.asarray(schedule.probabilities, dtype=float)
    length = probabilities.size

    trials = len(processes)
    lifecycle = _BatchLifecycle(
        trials, capacity, timeout, warmup, admission, retry, store
    )
    epoch_round = np.zeros(trials, dtype=np.int64)

    fault_state = model.batch_state(trials) if model is not None else None
    layout = _column_layout(model, admission, retry)

    arrival_counts = channel_draws = None
    for round_index in range(1, rounds + 1):
        column = (round_index - 1) % _OPEN_BLOCK_ROUNDS
        if column == 0:
            arrival_counts, channel_draws = _refill_blocks(
                processes, streams, round_index, rounds, layout.total
            )
        fault_draws, adm_draws, retry_draws = _round_draws(
            channel_draws, column, layout
        )
        lifecycle.begin_round(
            round_index, arrival_counts[:, column], adm_draws, retry_draws
        )
        occupancy = lifecycle.occupancy

        # A one-shot schedule that ran out restarts from the top - the
        # scalar oracle's fresh-session-after-ScheduleExhausted path.
        if not schedule.cycle:
            epoch_round[epoch_round >= length] = 0
        p = probabilities[epoch_round % length]
        codes = _trichotomy(channel_draws[:, column, 0], p, occupancy)
        if fault_state is not None:
            codes = fault_state.perturb(round_index, codes, fault_draws)

        success = (codes == FB_SUCCESS) & (occupancy > 0)
        if success.any():
            rows = np.flatnonzero(success)
            lifecycle.complete(rows, channel_draws[rows, column, 1], round_index)
            epoch_round[rows] = 0
        # Contended non-success rows step their epoch (success rows just
        # reset; their occupancy decrement cannot re-satisfy the mask).
        epoch_round[~success & (occupancy > 0)] += 1

        lifecycle.end_round(round_index)
        epoch_round[lifecycle.occupancy == 0] = 0
    lifecycle.finish()


def _run_open_history(
    protocol: UniformProtocol,
    processes: Sequence[ArrivalProcess],
    streams: Sequence[tuple[np.random.Generator, np.random.Generator]],
    channel: Channel,
    model: ChannelModel | None,
    rounds: int,
    warmup: int,
    capacity: int,
    timeout: int | None,
    admission: AdmissionPolicy,
    retry: RetryPolicy,
    store: LatencyStore,
) -> None:
    """Vectorized open loop for deterministic history-driven protocols."""
    arena = _arena_for_run()
    root = arena.root_for(protocol, ("open", next(_run_tokens)))
    arena.resolve(np.asarray([root]))
    if arena.exhausted[root]:
        raise ProtocolError(
            f"protocol {protocol.name!r} exhausts its schedule before the "
            "first round; it cannot serve an open system"
        )

    trials = len(processes)
    lifecycle = _BatchLifecycle(
        trials, capacity, timeout, warmup, admission, retry, store
    )
    node = np.full(trials, root, dtype=np.int64)
    collision_detection = channel.collision_detection

    fault_state = model.batch_state(trials) if model is not None else None
    layout = _column_layout(model, admission, retry)

    arrival_counts = channel_draws = None
    for round_index in range(1, rounds + 1):
        column = (round_index - 1) % _OPEN_BLOCK_ROUNDS
        if column == 0:
            arrival_counts, channel_draws = _refill_blocks(
                processes, streams, round_index, rounds, layout.total
            )
        fault_draws, adm_draws, retry_draws = _round_draws(
            channel_draws, column, layout
        )
        lifecycle.begin_round(
            round_index, arrival_counts[:, column], adm_draws, retry_draws
        )
        occupancy = lifecycle.occupancy

        # Memoized probability per distinct live history; a history whose
        # one-shot schedule exhausted restarts at the empty history (the
        # scalar oracle's fresh-session path - the root is known good).
        arena.resolve(np.unique(node))
        if arena.any_exhausted:
            exhausted = arena.exhausted[node]
            if exhausted.any():
                node[exhausted] = root
        p = arena.probability[node]
        codes = _trichotomy(channel_draws[:, column, 0], p, occupancy)
        if fault_state is not None:
            codes = fault_state.perturb(round_index, codes, fault_draws)

        success = (codes == FB_SUCCESS) & (occupancy > 0)
        if success.any():
            rows = np.flatnonzero(success)
            lifecycle.complete(rows, channel_draws[rows, column, 1], round_index)
            node[rows] = root
        advance = ~success & (occupancy > 0)
        if advance.any() and round_index < rounds:
            if not collision_detection:
                observed = np.full(int(advance.sum()), OBS_QUIET, dtype=np.int64)
            else:
                observed = np.where(
                    codes[advance] == FB_COLLISION, OBS_COLLISION, OBS_SILENCE
                )
            node[advance] = arena.descend(node[advance], observed)

        lifecycle.end_round(round_index)
        node[lifecycle.occupancy == 0] = root
    lifecycle.finish()


def _run_open_scalar(
    protocol: UniformProtocol,
    processes: Sequence[ArrivalProcess],
    streams: Sequence[tuple[np.random.Generator, np.random.Generator]],
    channel: Channel,
    model: ChannelModel | None,
    rounds: int,
    warmup: int,
    capacity: int,
    timeout: int | None,
    admission: AdmissionPolicy,
    retry: RetryPolicy,
    store: LatencyStore,
) -> None:
    """The per-trial reference loop: real sessions, identical streams.

    Probabilities come from live :class:`~repro.core.protocol.
    UniformSession` objects instead of schedule arrays or the memoized
    trie, and the request lifecycle runs on plain Python lists
    (:class:`_ScalarLifecycle`), but every random draw is consumed
    through the same :func:`_refill_blocks` contract (one-trial slices),
    so for deterministic protocols the resulting store is bit-identical
    to the vectorized engines'.
    """
    collision_detection = channel.collision_detection
    layout = _column_layout(model, admission, retry)
    for t in range(len(processes)):
        fault_state = model.batch_state(1) if model is not None else None
        lifecycle = _ScalarLifecycle(
            capacity, timeout, warmup, admission, retry, store
        )
        session = None
        arrival_counts = channel_draws = None
        for round_index in range(1, rounds + 1):
            column = (round_index - 1) % _OPEN_BLOCK_ROUNDS
            if column == 0:
                arrival_counts, channel_draws = _refill_blocks(
                    processes[t : t + 1], streams[t : t + 1], round_index,
                    rounds, layout.total,
                )
            fault_draws, adm_draws, retry_draws = _round_draws(
                channel_draws, column, layout
            )
            lifecycle.begin_round(
                round_index,
                int(arrival_counts[0, column]),
                None if adm_draws is None else float(adm_draws[0]),
                None if retry_draws is None else float(retry_draws[0]),
            )

            k = len(lifecycle.pending)
            if k == 0:
                code = FB_SILENCE
            else:
                if session is None:
                    session = protocol.session()
                try:
                    p = session.next_probability()
                except ScheduleExhausted:
                    session = protocol.session()
                    try:
                        p = session.next_probability()
                    except ScheduleExhausted:
                        raise ProtocolError(
                            f"protocol {protocol.name!r} exhausts its "
                            "schedule before the first round; it cannot "
                            "serve an open system"
                        ) from None
                u = float(channel_draws[0, column, 0])
                lo = (1.0 - p) ** k
                hi = lo + k * p * (1.0 - p) ** max(k - 1, 0)
                code = (
                    FB_SILENCE
                    if u < lo
                    else (FB_SUCCESS if u < hi else FB_COLLISION)
                )
            if fault_state is not None:
                code = int(
                    fault_state.perturb(
                        round_index,
                        np.asarray([code], dtype=np.int64),
                        fault_draws,
                    )[0]
                )

            if code == FB_SUCCESS and k > 0:
                lifecycle.complete(
                    float(channel_draws[0, column, 1]), round_index
                )
                session = None
            elif k > 0 and round_index < rounds:
                if not collision_detection:
                    session.observe(Observation.QUIET)
                elif code == FB_COLLISION:
                    session.observe(Observation.COLLISION)
                else:
                    session.observe(Observation.SILENCE)

            lifecycle.end_round(round_index)
            if not lifecycle.pending:
                session = None
        lifecycle.finish()


def run_open(
    protocol: UniformProtocol,
    arrivals: ArrivalProcess,
    *,
    channel: Channel,
    trials: int,
    rounds: int,
    warmup: int = 0,
    capacity: int = 256,
    timeout: int | None = None,
    retry: RetryPolicy | None = None,
    admission: AdmissionPolicy | None = None,
    seed: int = 2021,
    trial_offset: int = 0,
    batch: bool | None = None,
) -> OpenRunResult:
    """Serve ``arrivals`` with ``protocol`` on ``trials`` open channels.

    Each trial is one independent channel observed for ``rounds`` rounds:
    requests stream in from a private clone of ``arrivals``, the
    ``admission`` policy (default: the hard ``capacity`` cap only)
    gates entry to the service buffer, an optional ``timeout`` evicts
    requests after that many rounds in the buffer, and the ``retry``
    policy (default: give up, exactly PR 7's drop) decides whether
    refused or evicted requests back off in the orbit and rejoin.
    Completions whose request first arrived after round ``warmup`` are
    recorded in the returned :class:`~repro.opensys.latency.
    LatencyStore` with their full per-request sojourn.

    Two runs with the same ``seed`` and consecutive ``trial_offset``
    windows merge (``store.merge``) to exactly the store of one combined
    run - the sharding contract of the satellite seed-hygiene task.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if not 0 <= warmup < rounds:
        raise ValueError(
            f"warmup must be in [0, rounds), got {warmup} of {rounds}"
        )
    if capacity < 1:
        raise ValueError(
            f"capacity must be >= 1, got {capacity} (a zero-capacity "
            "buffer would silently drop every request)"
        )
    if timeout is not None and timeout < 1:
        raise ValueError(f"timeout must be >= 1 or None, got {timeout}")
    if trial_offset < 0:
        raise ValueError(f"trial_offset must be >= 0, got {trial_offset}")
    retry = retry if retry is not None else GiveUpPolicy()
    admission = admission if admission is not None else HardCapacityPolicy()
    if not isinstance(retry, RetryPolicy):
        raise ValueError(
            f"retry must be a RetryPolicy, got {type(retry).__name__}"
        )
    if not isinstance(admission, AdmissionPolicy):
        raise ValueError(
            f"admission must be an AdmissionPolicy, got "
            f"{type(admission).__name__}"
        )
    _check_channel(protocol.requires_collision_detection, channel)
    model = channel.active_model
    engine = select_open_engine(protocol, batch, model=model)

    processes = [arrivals.clone() for _ in range(trials)]
    streams = _trial_streams(seed, trials, trial_offset)
    store = LatencyStore()
    if engine == ENGINE_OPEN_SCHEDULE:
        _run_open_schedule(
            protocol, processes, streams, model, rounds, warmup, capacity,
            timeout, admission, retry, store,
        )
    elif engine == ENGINE_OPEN_HISTORY:
        _run_open_history(
            protocol, processes, streams, channel, model, rounds, warmup,
            capacity, timeout, admission, retry, store,
        )
    else:
        _run_open_scalar(
            protocol, processes, streams, channel, model, rounds, warmup,
            capacity, timeout, admission, retry, store,
        )
    store.round_slots += trials * (rounds - warmup)
    return OpenRunResult(store=store, engine=engine)
