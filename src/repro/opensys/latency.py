"""Per-request latency capture for open-system runs.

An open-system simulation measures *sojourn times* - rounds from a
request's arrival to its delivered success - rather than the closed
batches' rounds-to-success.  Two pieces:

* :class:`LatencyStore` - the accumulator the drivers write into.  Sojourn
  times are positive integers bounded by the run length, so the store
  keeps an **exact integer histogram** instead of a lossy reservoir:
  percentiles are exact, memory is bounded by the longest observed
  sojourn, and :meth:`LatencyStore.merge` (bin-wise addition of
  histograms and counters) is exactly associative and commutative - the
  property that lets trial shards, sweep re-runs and serialized results
  combine without approximation error, mirroring how the closed engines'
  per-point results concatenate.

* :class:`LatencySummary` - the derived, human-facing statistics
  (p50/p90/p99, mean, max, throughput, drop/timeout counts).  Like
  :meth:`~repro.analysis.metrics.Summary.empty`, a store that measured no
  completions summarises to an explicit zero-sample state (NaN
  statistics) instead of fabricating data.

Percentiles use the nearest-rank definition - the smallest observed
sojourn whose cumulative count reaches ``ceil(q * completed)`` - which is
exact on the histogram and monotone in ``q`` by construction.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyStore", "LatencySummary"]


def _nan_to_none(value: float) -> float | None:
    return None if isinstance(value, float) and math.isnan(value) else value


def _none_to_nan(value) -> float:
    return float("nan") if value is None else float(value)


@dataclass(frozen=True)
class LatencySummary:
    """Derived statistics of one open-system run (or merged shards).

    Attributes
    ----------
    completed:
        Measured completions - requests that arrived after the warmup and
        departed with a delivered success.  All latency statistics rest on
        exactly these samples.
    mean / p50 / p90 / p99 / maximum:
        Sojourn-time statistics in rounds (NaN when ``completed == 0``).
    throughput:
        Measured completions per trial-round: ``completed / round_slots``
        (NaN when no rounds were measured).  Per *trial*-round so merged
        shards report the same per-channel rate as their parts.  Because
        ``completed`` counts only delivered successes, this is the run's
        *goodput* - retries that never complete contribute nothing.
    arrivals / dropped / timed_out / in_flight:
        Whole-run load counters: fresh requests generated, requests that
        died at a refused first admission, requests that died at their
        first sojourn timeout, and requests still pending in the service
        buffer when the run ended.
    attempts / retried / abandoned / in_orbit:
        Lifecycle counters (all zero under the default give-up/capacity
        policies): admission presentations (fresh arrivals plus orbit
        rejoins - equals ``arrivals`` when nothing retries), orbit
        entries (retry events), requests that died after exhausting
        their retry budget, and requests still waiting in the orbit
        when the run ended.  At ``warmup = 0`` requests are conserved:
        ``arrivals == completed + dropped + timed_out + abandoned +
        in_flight + in_orbit``.
    round_slots:
        Measured trial-rounds (trials x post-warmup rounds).
    """

    completed: int
    mean: float
    p50: float
    p90: float
    p99: float
    maximum: float
    throughput: float
    arrivals: int
    dropped: int
    timed_out: int
    in_flight: int
    round_slots: int
    attempts: int = 0
    retried: int = 0
    abandoned: int = 0
    in_orbit: int = 0

    def to_dict(self) -> dict:
        """JSON-native dict (NaN statistics encode as ``null``)."""
        return {
            "completed": self.completed,
            "mean": _nan_to_none(self.mean),
            "p50": _nan_to_none(self.p50),
            "p90": _nan_to_none(self.p90),
            "p99": _nan_to_none(self.p99),
            "maximum": _nan_to_none(self.maximum),
            "throughput": _nan_to_none(self.throughput),
            "arrivals": self.arrivals,
            "dropped": self.dropped,
            "timed_out": self.timed_out,
            "in_flight": self.in_flight,
            "round_slots": self.round_slots,
            "attempts": self.attempts,
            "retried": self.retried,
            "abandoned": self.abandoned,
            "in_orbit": self.in_orbit,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "LatencySummary":
        return cls(
            completed=int(data["completed"]),
            mean=_none_to_nan(data["mean"]),
            p50=_none_to_nan(data["p50"]),
            p90=_none_to_nan(data["p90"]),
            p99=_none_to_nan(data["p99"]),
            maximum=_none_to_nan(data["maximum"]),
            throughput=_none_to_nan(data["throughput"]),
            arrivals=int(data["arrivals"]),
            dropped=int(data["dropped"]),
            timed_out=int(data["timed_out"]),
            in_flight=int(data["in_flight"]),
            round_slots=int(data["round_slots"]),
            attempts=int(data.get("attempts", 0)),
            retried=int(data.get("retried", 0)),
            abandoned=int(data.get("abandoned", 0)),
            in_orbit=int(data.get("in_orbit", 0)),
        )

    def render(self) -> str:
        """One-line human-readable latency report."""
        if self.completed == 0:
            stats = "latency n/a (no measured completion)"
        else:
            stats = (
                f"p50 {self.p50:.0f}  p90 {self.p90:.0f}  p99 {self.p99:.0f}  "
                f"max {self.maximum:.0f}  mean {self.mean:.2f}"
            )
        throughput = (
            "n/a" if math.isnan(self.throughput) else f"{self.throughput:.4f}"
        )
        lifecycle = ""
        if self.retried or self.abandoned or self.in_orbit:
            lifecycle = (
                f"  retried {self.retried}  abandoned {self.abandoned}  "
                f"in-orbit {self.in_orbit}"
            )
        return (
            f"{stats}  throughput {throughput}/round  "
            f"completed {self.completed}  dropped {self.dropped}  "
            f"timed-out {self.timed_out}  in-flight {self.in_flight}"
            f"{lifecycle}"
        )


class LatencyStore:
    """Exact, mergeable sojourn-time accumulator.

    ``hist[s]`` counts measured completions with sojourn ``s`` rounds
    (``s >= 1``; bin 0 is unused and always zero).  Counters track the
    whole run's load bookkeeping; see :class:`LatencySummary` for their
    meaning.  All mutators are integer-exact, so merging shards in any
    grouping yields bit-identical state.
    """

    #: Counter attributes merged, serialized and compared alongside the
    #: histogram; single source of truth for :meth:`merge` / dict I/O.
    COUNTERS = (
        "arrivals",
        "dropped",
        "timed_out",
        "in_flight",
        "round_slots",
        "attempts",
        "retried",
        "abandoned",
        "in_orbit",
    )

    def __init__(self) -> None:
        self._hist = np.zeros(0, dtype=np.int64)
        for counter in self.COUNTERS:
            setattr(self, counter, 0)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _ensure(self, size: int) -> None:
        if size > self._hist.size:
            grown = np.zeros(size, dtype=np.int64)
            grown[: self._hist.size] = self._hist
            self._hist = grown

    def record(self, sojourn: int) -> None:
        """Record one measured completion of ``sojourn`` rounds."""
        if sojourn < 1:
            raise ValueError(f"sojourn must be >= 1, got {sojourn}")
        self._ensure(sojourn + 1)
        self._hist[sojourn] += 1

    def record_many(self, sojourns: np.ndarray | Sequence[int]) -> None:
        """Record a batch of measured completions (one bincount)."""
        data = np.asarray(sojourns, dtype=np.int64)
        if data.size == 0:
            return
        if (data < 1).any():
            raise ValueError("sojourns must all be >= 1")
        counts = np.bincount(data)
        self._ensure(counts.size)
        self._hist[: counts.size] += counts

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return int(self._hist.sum())

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the measured sojourns.

        The smallest sojourn whose cumulative count reaches
        ``ceil(q * completed)``; monotone (non-decreasing) in ``q``.  NaN
        when nothing was measured.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile level must be in [0, 1], got {q}")
        total = self.completed
        if total == 0:
            return float("nan")
        rank = max(1, math.ceil(q * total))
        cumulative = np.cumsum(self._hist)
        return float(np.searchsorted(cumulative, rank))

    def summary(self) -> LatencySummary:
        """The derived :class:`LatencySummary` of the current state."""
        total = self.completed
        if total == 0:
            nan = float("nan")
            mean = p50 = p90 = p99 = maximum = nan
        else:
            values = np.arange(self._hist.size)
            mean = float((values * self._hist).sum() / total)
            maximum = float(np.flatnonzero(self._hist)[-1])
            p50 = self.percentile(0.50)
            p90 = self.percentile(0.90)
            p99 = self.percentile(0.99)
        throughput = (
            total / self.round_slots if self.round_slots > 0 else float("nan")
        )
        return LatencySummary(
            completed=total,
            mean=mean,
            p50=p50,
            p90=p90,
            p99=p99,
            maximum=maximum,
            throughput=throughput,
            arrivals=self.arrivals,
            dropped=self.dropped,
            timed_out=self.timed_out,
            in_flight=self.in_flight,
            round_slots=self.round_slots,
            attempts=self.attempts,
            retried=self.retried,
            abandoned=self.abandoned,
            in_orbit=self.in_orbit,
        )

    # ------------------------------------------------------------------
    # Merge / serialization
    # ------------------------------------------------------------------
    def merge(self, other: "LatencyStore") -> "LatencyStore":
        """A new store combining two shards (exactly associative)."""
        merged = LatencyStore()
        size = max(self._hist.size, other._hist.size)
        merged._ensure(size)
        merged._hist[: self._hist.size] += self._hist
        merged._hist[: other._hist.size] += other._hist
        for counter in self.COUNTERS:
            setattr(
                merged, counter, getattr(self, counter) + getattr(other, counter)
            )
        return merged

    def to_dict(self) -> dict:
        """JSON-native state; :meth:`from_dict` inverts it exactly.

        The histogram serializes trimmed to the last non-zero bin, so
        equal-content stores serialize identically whatever growth
        history produced them.
        """
        nonzero = np.flatnonzero(self._hist)
        top = int(nonzero[-1]) + 1 if nonzero.size else 0
        data = {"hist": self._hist[:top].tolist()}
        for counter in self.COUNTERS:
            data[counter] = getattr(self, counter)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "LatencyStore":
        store = cls()
        hist = np.asarray(list(data.get("hist", [])), dtype=np.int64)
        if (hist < 0).any():
            raise ValueError("latency histogram counts must be >= 0")
        if hist.size and hist[0] != 0:
            raise ValueError("latency histogram bin 0 must be zero")
        store._hist = hist
        for counter in cls.COUNTERS:
            setattr(store, counter, int(data.get(counter, 0)))
        return store

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyStore):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"<LatencyStore completed={self.completed} "
            f"arrivals={self.arrivals} dropped={self.dropped}>"
        )
