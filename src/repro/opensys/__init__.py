"""Open-system traffic: streaming arrivals, live backlog, sojourn latency.

The closed layers (:mod:`repro.channel`, :mod:`repro.analysis`) measure
rounds-to-success of one k-player contention instance; this package
layers the deployment view on top - continuous request streams served by
the same protocols, epoch after epoch, reporting per-request latency
percentiles and throughput as a function of offered load.

* :mod:`repro.opensys.arrivals` - streaming arrival processes (Poisson,
  Zipf hotspot batches, thinned adapters over the closed bursty/trace
  workloads).
* :mod:`repro.opensys.driver` - the open-loop engines: vectorized
  schedule/history drivers plus the scalar session-driven oracle, all
  consuming identical per-trial seed streams.
* :mod:`repro.opensys.latency` - the exact, mergeable sojourn-time
  histogram behind p50/p90/p99/throughput reporting.
* :mod:`repro.opensys.policies` - request-lifecycle policies: retry
  (give-up / immediate / capped backoff with jitter and budgets) and
  admission (hard capacity / token bucket / occupancy shedding).

Scenario/CLI integration lives in :mod:`repro.scenarios.open`.
"""

from .arrivals import (
    ARRIVAL_FAMILIES,
    ArrivalProcess,
    ClampedArrivalSizeSource,
    PoissonArrivals,
    ThinnedArrivals,
    ZipfHotspotArrivals,
    arrival_process_from_dict,
)
from .driver import (
    ENGINE_OPEN_HISTORY,
    ENGINE_OPEN_SCALAR,
    ENGINE_OPEN_SCHEDULE,
    OpenRunResult,
    run_open,
    select_open_engine,
)
from .latency import LatencyStore, LatencySummary
from .policies import (
    ADMISSION_POLICIES,
    RETRY_POLICIES,
    AdmissionPolicy,
    ExponentialBackoffPolicy,
    GiveUpPolicy,
    HardCapacityPolicy,
    ImmediateRetryPolicy,
    OccupancySheddingPolicy,
    RetryPolicy,
    TokenBucketPolicy,
    admission_policy_from_dict,
    retry_policy_from_dict,
)

__all__ = [
    "ARRIVAL_FAMILIES",
    "ArrivalProcess",
    "ClampedArrivalSizeSource",
    "PoissonArrivals",
    "ThinnedArrivals",
    "ZipfHotspotArrivals",
    "arrival_process_from_dict",
    "ENGINE_OPEN_HISTORY",
    "ENGINE_OPEN_SCALAR",
    "ENGINE_OPEN_SCHEDULE",
    "OpenRunResult",
    "run_open",
    "select_open_engine",
    "LatencyStore",
    "LatencySummary",
    "ADMISSION_POLICIES",
    "RETRY_POLICIES",
    "AdmissionPolicy",
    "ExponentialBackoffPolicy",
    "GiveUpPolicy",
    "HardCapacityPolicy",
    "ImmediateRetryPolicy",
    "OccupancySheddingPolicy",
    "RetryPolicy",
    "TokenBucketPolicy",
    "admission_policy_from_dict",
    "retry_policy_from_dict",
]
