"""Legacy setuptools shim.

The offline reproduction environment lacks the ``wheel`` package, so PEP
517/660 builds are unavailable; this shim lets ``pip install -e .`` take the
legacy ``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
