"""Legacy setuptools shim.

Metadata lives in ``setup.cfg``; pytest configuration in ``pytest.ini``.
There is deliberately no ``pyproject.toml``: its presence forces pip onto
the PEP 517/660 build path, which requires the ``wheel`` package the
offline reproduction environment does not ship.  (Recent pip versions
attempt PEP 660 editable builds even without one, so the supported ways
to use the package offline are ``PYTHONPATH=src`` - what the tier-1
command does - or ``pip install -e . --no-build-isolation`` on an
environment that has ``wheel``.)
"""

from setuptools import setup

setup()
